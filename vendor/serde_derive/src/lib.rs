//! Offline stand-in for the real `serde_derive` proc-macro crate.
//!
//! The evaluation environment has no crates.io access, so the workspace
//! vendors this no-op implementation: `#[derive(Serialize, Deserialize)]`
//! parses and expands to nothing. Trait bounds still hold because the
//! companion `serde` stub blanket-implements both traits for every type.
//! Replace both vendor crates with the real dependency when networked.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
