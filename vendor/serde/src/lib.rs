//! Offline stand-in for the real `serde` crate.
//!
//! The evaluation environment has no crates.io access, so this vendored stub
//! keeps the workspace's `use serde::{Serialize, Deserialize}` imports and
//! `#[derive(...)]` attributes compiling without pulling in the real
//! dependency. Both traits are blanket-implemented for every type, so
//! downstream `T: Serialize` bounds are always satisfied; no actual
//! serialization machinery exists. Swap this and `vendor/serde_derive` for
//! `serde = { version = "1", features = ["derive"] }` when networked.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`'s import path.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`'s import path.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
