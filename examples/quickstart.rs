//! Quickstart: compile and run one model with FlashMem on the simulated
//! OnePlus 12, and compare it against the SmartMem baseline.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use flashmem::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a model from the paper's evaluation zoo and a target device.
    let model = ModelZoo::vit();
    let device = DeviceSpec::oneplus_12();
    println!("Model : {model}");
    println!("Device: {device}\n");

    // 2. Build the FlashMem runtime with the paper's memory-priority
    //    configuration (M_peak = 500 MB, λ ≈ 0.9).
    let runtime = FlashMem::new(device.clone()).with_config(FlashMemConfig::memory_priority());

    // 3. Compile: fusion → adaptive fusion → load-capacity profiling →
    //    LC-OPG overlap planning.
    let compiled = runtime.compile(model.graph());
    println!(
        "Overlap plan: {:.1}% of weight bytes streamed, {} weights preloaded, planner status {}",
        compiled.streamed_fraction() * 100.0,
        compiled.plan.preload_count(),
        compiled.planner_report.status
    );
    if let Some(fusion_report) = &compiled.fusion_report {
        println!(
            "Adaptive fusion: {} fused kernels split (+{:.0}% schedulable capacity)",
            fusion_report.splits,
            fusion_report.capacity_gain() * 100.0
        );
    }

    // 4. Execute on the simulated GPU.
    let ours = runtime.run_compiled(model.graph(), &compiled)?;
    println!("\nFlashMem : {ours}");

    // 5. Compare with SmartMem, the preloading research prototype.
    let smartmem = SmartMem::new().run(&model, &device)?;
    println!("SmartMem : {smartmem}");
    println!(
        "\nSpeedup {:.1}x, memory reduction {:.1}x",
        ours.speedup_over(&smartmem),
        ours.memory_reduction_over(&smartmem)
    );
    Ok(())
}
