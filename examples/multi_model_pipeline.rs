//! Multi-model FIFO pipeline: the camera-AR scenario from the paper's
//! introduction — several distinct models execute back to back under a 1.5 GB
//! memory cap, and FlashMem streams each one instead of re-paying a full
//! preload per invocation.
//!
//! ```bash
//! cargo run --release --example multi_model_pipeline
//! ```

use flashmem::prelude::*;
use flashmem_graph::ModelSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = DeviceSpec::oneplus_12();
    // A detector-ish backbone, a depth model and a speech model in FIFO order.
    let queue: Vec<ModelSpec> = vec![
        ModelZoo::vit(),
        ModelZoo::depth_anything_small(),
        ModelZoo::whisper_medium(),
    ];
    println!("FIFO queue:");
    for m in &queue {
        println!("  - {m}");
    }

    let cap_bytes = 1_536u64 * 1024 * 1024;
    let runner = MultiModelRunner::new(device, FlashMemConfig::memory_priority())
        .with_memory_cap_bytes(cap_bytes);
    let report = runner.run_fifo(&queue, 2)?;

    println!(
        "\nExecuted {} invocations in {:.0} ms under a {:.0} MB cap",
        report.len(),
        report.total_latency_ms,
        cap_bytes as f64 / (1024.0 * 1024.0)
    );
    println!(
        "Peak memory {:.0} MB, average memory {:.0} MB",
        report.peak_memory_mb, report.average_memory_mb
    );
    println!("\nPer-invocation latencies:");
    for inv in &report.invocations {
        println!(
            "  #{:<2} {:<10} {:>8.0} ms (peak {:.0} MB)",
            inv.sequence, inv.model, inv.latency_ms, inv.peak_memory_mb
        );
    }

    // A Figure 6-style memory-over-time curve, resampled to 40 points.
    println!("\nMemory over time (MB):");
    for sample in report.memory_trace.resample(40) {
        let mb = sample.bytes as f64 / (1024.0 * 1024.0);
        let bar = "#".repeat((mb / 25.0) as usize);
        println!("  {:>8.0} ms | {:>6.0} {}", sample.time_ms, mb, bar);
    }
    Ok(())
}
