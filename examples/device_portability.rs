//! Portability across devices (Figure 10): run the same models on the four
//! evaluated phones plus the expanded fleet (Mali mid-ranger, tablet,
//! laptop iGPU). On the memory-constrained Xiaomi Mi 6 and Pixel 8 the
//! preloading SmartMem baseline runs out of memory for GPT-Neo-1.3B, while
//! FlashMem's streaming plan still fits.
//!
//! ```bash
//! cargo run --release --example device_portability
//! ```

use flashmem::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let models = [ModelZoo::vit(), ModelZoo::gptneo_1_3b()];
    let smartmem = SmartMem::new();

    for device in DeviceSpec::all_evaluated() {
        println!("== {device} ==");
        for model in &models {
            let runtime =
                FlashMem::new(device.clone()).with_config(FlashMemConfig::memory_priority());
            let ours = runtime.run(model);
            let theirs = if smartmem.supports(model) {
                smartmem.run(model, &device)
            } else {
                Err(flashmem::gpu_sim::SimError::InvalidParameter {
                    message: "unsupported".into(),
                })
            };
            match (ours, theirs) {
                (Ok(o), Ok(t)) => println!(
                    "  {:<10} FlashMem {:>7.0} ms / {:>6.0} MB   SmartMem {:>7.0} ms / {:>6.0} MB   ({:.1}x faster, {:.1}x leaner)",
                    model.abbr,
                    o.integrated_latency_ms,
                    o.average_memory_mb,
                    t.integrated_latency_ms,
                    t.average_memory_mb,
                    o.speedup_over(&t),
                    o.memory_reduction_over(&t),
                ),
                (Ok(o), Err(_)) => println!(
                    "  {:<10} FlashMem {:>7.0} ms / {:>6.0} MB   SmartMem: OUT OF MEMORY",
                    model.abbr, o.integrated_latency_ms, o.average_memory_mb
                ),
                (Err(e), _) => println!("  {:<10} FlashMem failed: {e}", model.abbr),
            }
        }
        println!();
    }
    Ok(())
}
