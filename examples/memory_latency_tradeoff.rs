//! Sweep the memory/latency trade-off (Figure 8): by varying `M_peak`, `λ`
//! and `μ`, FlashMem moves between "stream almost everything" (minimum
//! memory) and "preload almost everything" (minimum execution latency).
//!
//! ```bash
//! cargo run --release --example memory_latency_tradeoff
//! ```

use flashmem::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = DeviceSpec::oneplus_12();
    let model = ModelZoo::gptneo_small();
    println!("Trade-off sweep for {model}\n");

    let configurations = [
        (
            "aggressive streaming",
            FlashMemConfig::memory_priority().with_m_peak_mib(256),
        ),
        ("memory priority", FlashMemConfig::memory_priority()),
        ("balanced", FlashMemConfig::balanced()),
        ("latency priority", FlashMemConfig::latency_priority()),
        (
            "full preload",
            FlashMemConfig::latency_priority().with_opg(false),
        ),
    ];

    println!(
        "{:<22} {:>10} {:>12} {:>12} {:>12}",
        "configuration", "preload %", "avg mem MB", "integr. ms", "exec ms"
    );
    for (label, config) in configurations {
        let runtime = FlashMem::new(device.clone()).with_config(config);
        let report = runtime.run(&model)?;
        println!(
            "{:<22} {:>9.0}% {:>12.0} {:>12.0} {:>12.0}",
            label,
            (1.0 - report.streamed_weight_fraction) * 100.0,
            report.average_memory_mb,
            report.integrated_latency_ms,
            report.exec_latency_ms
        );
    }

    println!(
        "\nReading: streaming keeps average memory near the activation working set, \
         while preloading buys execution-phase latency at the cost of a long \
         initialization and a weight-sized resident footprint."
    );
    Ok(())
}
