//! Multi-tenant serving: bursty traffic from several apps lands on a small
//! fleet of simulated devices; the deadline-aware scheduler admits work by
//! *laxity* (`deadline − now − estimated_remaining_service`), suspends a
//! slack inference when an arrival's laxity would go negative waiting for
//! it, and reports SLO attainment with every miss attributed to a cause
//! (queueing, execution, preemption or failure). The plan cache skips
//! repeated LC-OPG solves.
//!
//! ```bash
//! cargo run --release --example serving
//! ```

use flashmem::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two devices, shared by three tenants; the camera app is latency
    // critical (tight deadline), the indexer runs best-effort under a
    // memory cap and a loose deadline. Urgency comes from the deadlines —
    // the deadline-preemptive policy ignores static priority entirely.
    let fleet = vec![DeviceSpec::oneplus_12(), DeviceSpec::pixel_8()];
    let engine = ServeEngine::new(fleet, FlashMemConfig::memory_priority())
        .with_policy(Box::new(
            DeadlinePreemptivePolicy::new().with_cost(PreemptionCost::reload()),
        ))
        .with_tenant_cap("tenant-2", 1_536 * 1024 * 1024)
        .with_tenant_slo("tenant-0", 800.0)
        .with_tenant_slo("tenant-1", 2_500.0)
        .with_tenant_slo("tenant-2", 6_000.0);

    let workload = WorkloadSpec {
        pattern: ArrivalPattern::Bursty {
            burst_size: 3,
            gap_ms: 400.0,
        },
        requests: 9,
        tenants: 3,
        priority_levels: 3,
        seed: 42,
    };
    let requests = workload.generate(&[ModelZoo::gptneo_small(), ModelZoo::vit()]);

    let report = engine.run(&requests)?;
    println!("{report}\n");
    println!(
        "SLO attainment: {:.0}% ({}/{} deadlines met, {} preemptions, \
         mean admission laxity {:.0} ms)\n",
        100.0 * report.slo.attainment(),
        report.slo.met,
        report.slo.tracked,
        report.preemptions,
        report.mean_admission_laxity_ms(),
    );

    println!("per-request outcomes:");
    for o in &report.outcomes {
        let slo = match o.miss_cause() {
            None if o.deadline_ms.is_some() => " [SLO met]".to_string(),
            None => String::new(),
            Some(cause) => format!(" [SLO missed: {cause:?}]"),
        };
        let laxity = o
            .admission_laxity_ms
            .map(|l| format!(", laxity {l:>6.0} ms"))
            .unwrap_or_default();
        println!(
            "  #{:<2} {:<8} on {:<12} wait {:>6.0} ms, latency {:>7.0} ms{}, \
             preempted {}x{}{}",
            o.seq,
            o.model,
            o.device,
            o.queue_wait_ms,
            o.latency_ms,
            laxity,
            o.preemptions,
            if o.cache_hit { " (plan cache hit)" } else { "" },
            slo,
        );
    }

    // Flight-recorder view: every outcome carries a PhaseBreakdown whose
    // phases sum to its end-to-end latency exactly. Show where the slowest
    // request's time went.
    if let Some(slowest) = report
        .outcomes
        .iter()
        .max_by(|a, b| a.latency_ms.total_cmp(&b.latency_ms))
    {
        let p = &slowest.phases;
        println!(
            "\nslowest request: #{} {} — {:.0} ms end to end",
            slowest.seq, slowest.model, slowest.latency_ms
        );
        println!("  queue wait {:>7.1} ms", p.queue_ms);
        println!("  compile    {:>7.1} ms", p.compile_ms);
        println!(
            "  transfer   {:>7.1} ms  (exposed; overlap is credited to compute)",
            p.transfer_ms
        );
        println!("  compute    {:>7.1} ms", p.compute_ms);
        println!(
            "  suspended  {:>7.1} ms  (incl. resume penalties)",
            p.suspended_ms
        );
        println!(
            "  stall      {:>7.1} ms  (queue-clock gaps between commands)",
            p.stall_ms
        );
    }

    // Chaos drill: replay the same workload with a seeded fault plan — one
    // device dies at 600 ms of simulated time and another fires transient
    // kernel faults — and the recovery kit armed (bounded retries with
    // backoff, failover onto survivors, quarantine with probe
    // reinstatement). Fault firing is keyed by (device, seq, command), so
    // the same faults hit on every run and every pool width. A same-spec
    // sibling rides along so in-flight suspensions can resume on the
    // survivor instead of restarting from scratch.
    let fleet = vec![
        DeviceSpec::oneplus_12(),
        DeviceSpec::oneplus_12(),
        DeviceSpec::pixel_8(),
    ];
    let chaos_report = ServeEngine::new(fleet, FlashMemConfig::memory_priority())
        .with_tenant_slo("tenant-0", 800.0)
        .with_tenant_slo("tenant-1", 2_500.0)
        .with_tenant_slo("tenant-2", 6_000.0)
        .with_fault_plan(
            FaultPlan::seeded(7)
                .with_device_loss(0, 600.0)
                .with_flaky_device(2, 0.10),
        )
        .with_recovery_control(
            RecoveryControl::disabled()
                .with_retry_budget(2)
                .with_backoff_ms(25.0)
                .with_failover()
                .with_quarantine(3, 500.0),
        )
        .run(&requests)?;
    println!(
        "\nchaos drill (device 0 lost at 600 ms, device 2 flaky): \
         {}/{} completed — {} retries, {} failovers, {} quarantines, {} probes",
        chaos_report.completed(),
        requests.len(),
        chaos_report.recovery.retries,
        chaos_report.recovery.failovers,
        chaos_report.recovery.quarantines,
        chaos_report.recovery.probes,
    );
    for o in chaos_report
        .outcomes
        .iter()
        .filter(|o| o.retries > 0 || o.failed_over)
    {
        println!(
            "  #{:<2} {:<8} survived on {:<12} after {} retr{}{}",
            o.seq,
            o.model,
            o.device,
            o.retries,
            if o.retries == 1 { "y" } else { "ies" },
            if o.failed_over { " + failover" } else { "" },
        );
    }
    Ok(())
}
