//! Multi-tenant serving: bursty traffic from several apps lands on a small
//! fleet of simulated devices; the preemptive scheduler time-shares each
//! device's dual command queues, suspends long low-priority inferences when
//! latency-critical work arrives, and reports SLO attainment against
//! per-tenant deadlines. The plan cache skips repeated LC-OPG solves.
//!
//! ```bash
//! cargo run --release --example serving
//! ```

use flashmem::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two devices, shared by three tenants; the camera app is latency
    // critical (priority 2, tight deadline), the indexer runs best-effort
    // under a memory cap and a loose deadline.
    let fleet = vec![DeviceSpec::oneplus_12(), DeviceSpec::pixel_8()];
    let engine = ServeEngine::new(fleet, FlashMemConfig::memory_priority())
        .with_policy(Box::new(
            PreemptivePriorityPolicy::new().with_cost(PreemptionCost::reload()),
        ))
        .with_tenant_cap("tenant-2", 1_536 * 1024 * 1024)
        .with_tenant_slo("tenant-0", 800.0)
        .with_tenant_slo("tenant-1", 2_500.0)
        .with_tenant_slo("tenant-2", 6_000.0);

    let workload = WorkloadSpec {
        pattern: ArrivalPattern::Bursty {
            burst_size: 3,
            gap_ms: 400.0,
        },
        requests: 9,
        tenants: 3,
        priority_levels: 3,
        seed: 42,
    };
    let requests = workload.generate(&[ModelZoo::gptneo_small(), ModelZoo::vit()]);

    let report = engine.run(&requests)?;
    println!("{report}\n");
    println!(
        "SLO attainment: {:.0}% ({}/{} deadlines met, {} preemptions)\n",
        100.0 * report.slo.attainment(),
        report.slo.met,
        report.slo.tracked,
        report.preemptions,
    );

    println!("per-request outcomes:");
    for o in &report.outcomes {
        let slo = match o.slo_met() {
            Some(true) => " [SLO met]",
            Some(false) => " [SLO missed]",
            None => "",
        };
        println!(
            "  #{:<2} {:<8} prio {} on {:<12} wait {:>6.0} ms, latency {:>7.0} ms, \
             preempted {}x{}{}",
            o.seq,
            o.model,
            o.priority,
            o.device,
            o.queue_wait_ms,
            o.latency_ms,
            o.preemptions,
            if o.cache_hit { " (plan cache hit)" } else { "" },
            slo,
        );
    }
    Ok(())
}
