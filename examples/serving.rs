//! Multi-tenant serving: bursty traffic from several apps lands on a small
//! fleet of simulated devices; the scheduler time-shares each device's dual
//! command queues across in-flight inferences, priority requests jump the
//! queue, and the plan cache skips repeated LC-OPG solves.
//!
//! ```bash
//! cargo run --release --example serving
//! ```

use flashmem::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two devices, shared by three tenants; the camera app is latency
    // critical and gets priority 2.
    let fleet = vec![DeviceSpec::oneplus_12(), DeviceSpec::pixel_8()];
    let engine = ServeEngine::new(fleet, FlashMemConfig::memory_priority())
        .with_policy(Box::new(PriorityPolicy::with_max_in_flight(2)))
        .with_tenant_cap("background-indexer", 1_536 * 1024 * 1024);

    let workload = WorkloadSpec {
        pattern: ArrivalPattern::Bursty {
            burst_size: 3,
            gap_ms: 1_500.0,
        },
        requests: 9,
        tenants: 3,
        priority_levels: 3,
        seed: 42,
    };
    let requests = workload.generate(&[ModelZoo::gptneo_small(), ModelZoo::vit()]);

    let report = engine.run(&requests)?;
    println!("{report}\n");

    println!("per-request outcomes:");
    for o in &report.outcomes {
        println!(
            "  #{:<2} {:<8} prio {} on {:<12} wait {:>6.0} ms, latency {:>7.0} ms{}",
            o.seq,
            o.model,
            o.priority,
            o.device,
            o.queue_wait_ms,
            o.latency_ms,
            if o.cache_hit { " (plan cache hit)" } else { "" },
        );
    }
    Ok(())
}
