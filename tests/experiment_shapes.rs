//! Integration tests over the experiment harness: the *shapes* of the paper's
//! headline results must hold on the quick model subset — who wins, in which
//! direction the trade-offs move, and where out-of-memory cases appear.

use flashmem_bench::experiments::{fig10, fig2, fig7, fig9, table1, table7, table8};

#[test]
fn motivation_table_shows_preloading_overheads() {
    let table = table1::run(true);
    for row in &table.rows {
        // Initialization (load + transform) dominates inference latency and
        // peak memory is far above the average — Table 1's message.
        assert!(row.load_ms + row.transform_ms > 2.0 * row.infer_ms);
        assert!(row.peak_memory_mb >= row.average_memory_mb);
    }
}

#[test]
fn operator_sensitivity_ordering_matches_figure_2() {
    let fig = fig2::run(true);
    let crossing = |name: &str| {
        fig.curves
            .iter()
            .find(|c| c.operator == name)
            .unwrap()
            .threshold_crossing(0.2)
            .unwrap_or(f64::MAX)
    };
    // Hierarchical operators hit the 20% latency-overhead threshold at a much
    // smaller extra-data ratio than reusable operators.
    assert!(crossing("LayerNorm") < crossing("Matmul"));
    assert!(crossing("SoftMax") < crossing("Matmul"));
}

#[test]
fn flashmem_wins_table_7_and_table_8_on_the_quick_subset() {
    let latency = table7::run(true);
    for row in &latency.rows {
        for cell in &row.baselines {
            if let Some(integrated) = cell.integrated_ms() {
                assert!(
                    integrated > row.flashmem_ms,
                    "{} on {}",
                    cell.framework,
                    row.model
                );
            }
        }
    }
    // Geo-mean speedups over every framework exceed the paper's lower bound
    // of 1.7x.
    for (name, speedup) in &latency.geo_mean_speedups {
        assert!(*speedup > 1.5, "{name}: {speedup}");
    }

    let memory = table8::run(true);
    for (name, reduction) in &memory.geo_mean_reductions {
        assert!(*reduction > 1.3, "{name}: {reduction}");
    }
}

#[test]
fn ablation_and_naive_overlap_shapes_hold() {
    let breakdown = fig7::run(true);
    let stages = &breakdown.models[0].stages;
    // OPG alone is already a >1x improvement over SmartMem; the full stack is
    // at least as good as OPG alone on both axes.
    assert!(stages[0].speedup > 1.0);
    assert!(stages[2].speedup >= stages[0].speedup * 0.99);
    assert!(stages[2].memory_reduction >= stages[0].memory_reduction * 0.95);

    let naive = fig9::run(true);
    for row in &naive.rows {
        assert!(row.speedup_vs_always_next >= 1.0);
        assert!(row.speedup_vs_same_op >= 1.0);
    }
}

#[test]
fn portability_reproduces_the_oom_cells_of_figure_10() {
    let fig = fig10::run(true);
    // On the Xiaomi Mi 6 the 1.3B model is out of reach for SmartMem but not
    // for FlashMem; ViT runs on both with FlashMem ahead.
    let oom_cell = fig
        .cells
        .iter()
        .find(|c| c.model == "GPTN-1.3B")
        .expect("1.3B cell exists");
    assert!(oom_cell.smartmem_oom);
    assert!(oom_cell.flashmem_ms.is_some());
    let vit_cell = fig.cells.iter().find(|c| c.model == "ViT").unwrap();
    assert!(vit_cell.latency_speedup.unwrap_or(0.0) > 1.0);
}
