//! Property-style tests over randomly generated models: the planner must
//! produce constraint-satisfying overlap plans, the fusion passes must
//! preserve the partition invariant, and the executor's memory accounting
//! must respect the plan, for *any* well-formed graph — not just the zoo.
//!
//! The random instances come from a seeded [`SplitMix64`] sweep instead of
//! proptest (unavailable offline), so every run exercises the same corpus.

use flashmem::prelude::*;
use flashmem_core::lc_opg::{node_to_kernel_map, PlannerMode};
use flashmem_core::{LcOpgSolver, StreamingExecutor};
use flashmem_gpu_sim::rng::SplitMix64;
use flashmem_graph::{FusionPlan, Graph, GraphBuilder, WeightInventory};
use flashmem_profiler::LoweringOptions;

/// A randomly shaped (but structurally valid) transformer-ish model.
#[derive(Debug, Clone)]
struct RandomModel {
    hidden: u64,
    blocks: usize,
    seq: u64,
    with_conv_stem: bool,
}

/// The deterministic corpus the three properties below are checked against.
fn random_models(cases: usize) -> Vec<RandomModel> {
    let mut rng = SplitMix64::seed_from_u64(0x9e3_7f4a);
    let hiddens = [256u64, 384, 512, 768];
    let seqs = [32u64, 64, 128];
    (0..cases)
        .map(|_| RandomModel {
            hidden: hiddens[rng.gen_range_inclusive(0, 3) as usize],
            blocks: rng.gen_range_inclusive(1, 5) as usize,
            seq: seqs[rng.gen_range_inclusive(0, 2) as usize],
            with_conv_stem: rng.gen_range_inclusive(0, 1) == 1,
        })
        .collect()
}

fn build(model: &RandomModel) -> Graph {
    let mut b = GraphBuilder::new("random");
    let mut x = if model.with_conv_stem {
        let img = b.input("image", &[3, 64, 64]);
        let stem = b.conv2d("stem", img, model.hidden, 4, 4);
        b.reshape("tokens", stem, &[model.seq, model.hidden])
    } else {
        b.input("tokens", &[model.seq, model.hidden])
    };
    for block in 0..model.blocks {
        let cfg = flashmem_graph::models::TransformerBlockConfig {
            hidden: model.hidden,
            heads: (model.hidden / 64).max(1),
            ffn: model.hidden * 4,
            seq: model.seq,
            rotary: false,
        };
        x = flashmem_graph::models::transformer_encoder_block(
            &mut b,
            x,
            &cfg,
            &format!("b{block}"),
        );
    }
    b.norm("ln_f", flashmem_graph::OpKind::LayerNorm, x);
    b.build()
}

#[test]
fn random_models_validate_and_plan_correctly() {
    for model in random_models(12) {
        let graph = build(&model);
        assert!(graph.validate().is_ok(), "{model:?}");

        let config = FlashMemConfig::memory_priority();
        let solver = LcOpgSolver::new(DeviceSpec::oneplus_12(), config.clone());
        let (plan, report) = solver.plan(&graph);

        // C0/C1 hold and the M_peak ceiling is respected (one chunk of slack
        // for the final short chunk of a weight).
        let inventory = WeightInventory::with_chunk_size(&graph, config.chunk_bytes);
        assert!(
            plan.validate(&inventory, Some(config.m_peak_bytes + config.chunk_bytes))
                .is_ok(),
            "{model:?}"
        );
        assert_eq!(
            report.preloaded_weights + report.streamed_weights,
            inventory.len(),
            "{model:?}"
        );
        assert_eq!(
            plan.total_weight_bytes(),
            inventory.total_bytes(),
            "{model:?}"
        );
    }
}

#[test]
fn fusion_passes_preserve_partitions_on_random_models() {
    for model in random_models(12) {
        let graph = build(&model);
        let base = FusionPlan::default_fusion(&graph);
        assert!(base.is_valid_partition(&graph), "{model:?}");

        let pass = flashmem_core::AdaptiveFusion::new(
            DeviceSpec::oneplus_12(),
            FlashMemConfig::memory_priority(),
        );
        let (refined, fusion_report) = pass.refine(&graph, &base);
        assert!(refined.is_valid_partition(&graph), "{model:?}");
        assert!(
            fusion_report.capacity_after >= fusion_report.capacity_before,
            "{model:?}"
        );

        // Every node is covered exactly once, and group aggregates match.
        let map = node_to_kernel_map(&refined);
        assert_eq!(map.len(), graph.len(), "{model:?}");
        let total_macs: u64 = refined.groups().iter().map(|g| g.macs(&graph)).sum();
        assert_eq!(total_macs, graph.total_macs(), "{model:?}");
    }
}

#[test]
fn executor_streams_are_valid_and_streaming_never_uses_more_memory() {
    for model in random_models(12) {
        let graph = build(&model);
        let config = FlashMemConfig::memory_priority();
        let fusion = FusionPlan::default_fusion(&graph);
        let capacities = flashmem_profiler::CapacityProfiler::new(DeviceSpec::oneplus_12())
            .with_options(LoweringOptions::flashmem())
            .capacities(&graph, &fusion);

        let device = DeviceSpec::oneplus_12();
        let hybrid = LcOpgSolver::new(device.clone(), config.clone());
        let (streaming_plan, _) = hybrid.plan_with(&graph, &fusion, &capacities);
        let preload = LcOpgSolver::new(device.clone(), config).with_mode(PlannerMode::FullPreload);
        let (preload_plan, _) = preload.plan_with(&graph, &fusion, &capacities);

        let executor = StreamingExecutor::new(device, LoweringOptions::flashmem());
        let streamed_stream = executor.compile(&graph, &fusion, &streaming_plan);
        assert!(streamed_stream.validate().is_ok(), "{model:?}");

        let streamed = executor.execute(&graph, &fusion, &streaming_plan).unwrap();
        let preloaded = executor.execute(&graph, &fusion, &preload_plan).unwrap();
        // For models smaller than the rolling window the two strategies hold
        // almost the same working set, so allow a small slack on the peak;
        // the time-weighted average must never be worse, and latency must not
        // regress materially.
        let slack = (8 * 1024 * 1024 + graph.total_weight_bytes() / 10) as f64;
        assert!(
            streamed.peak_memory_bytes as f64 <= preloaded.peak_memory_bytes as f64 + slack,
            "{model:?}: peak {} vs {}",
            streamed.peak_memory_bytes,
            preloaded.peak_memory_bytes
        );
        assert!(
            streamed.average_memory_bytes <= preloaded.average_memory_bytes + slack,
            "{model:?}: avg {} vs {}",
            streamed.average_memory_bytes,
            preloaded.average_memory_bytes
        );
        assert!(
            streamed.total_time_ms <= preloaded.total_time_ms * 1.05,
            "{model:?}"
        );
    }
}
