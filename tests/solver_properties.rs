//! Property-style tests for the CP solver: solutions must satisfy the model,
//! optimal objective values must match brute force on small instances, and
//! propagation must never prune feasible assignments.
//!
//! The random instances come from a seeded [`SplitMix64`] sweep instead of
//! proptest (unavailable offline), so every run exercises the same corpus.

use flashmem::solver::{propagate, CpModel, CpSolver, LinearExpr, PropagationResult, SolveStatus};
use flashmem_gpu_sim::rng::SplitMix64;

/// A small random model over `n` variables with random linear constraints.
#[derive(Debug, Clone)]
struct SmallModel {
    domains: Vec<(i64, i64)>,
    les: Vec<(Vec<i64>, i64)>,
    ges: Vec<(Vec<i64>, i64)>,
    objective: Vec<i64>,
}

const N: usize = 3;

fn gen_i64(rng: &mut SplitMix64, lo: i64, hi: i64) -> i64 {
    lo + rng.gen_range_inclusive(0, (hi - lo) as u64) as i64
}

/// The deterministic corpus the properties below are checked against.
fn small_models(cases: usize) -> Vec<SmallModel> {
    let mut rng = SplitMix64::seed_from_u64(0x50_1e4);
    (0..cases)
        .map(|_| {
            let domains = (0..N)
                .map(|_| {
                    let lo = gen_i64(&mut rng, 0, 2);
                    let span = gen_i64(&mut rng, 3, 6);
                    (lo, lo + span)
                })
                .collect();
            let les = (0..rng.gen_range_inclusive(0, 2))
                .map(|_| {
                    let coeffs = (0..N).map(|_| gen_i64(&mut rng, -2, 2)).collect();
                    (coeffs, gen_i64(&mut rng, 0, 14))
                })
                .collect();
            let ges = (0..rng.gen_range_inclusive(0, 1))
                .map(|_| {
                    let coeffs = (0..N).map(|_| gen_i64(&mut rng, -1, 2)).collect();
                    (coeffs, gen_i64(&mut rng, 0, 7))
                })
                .collect();
            let objective = (0..N).map(|_| gen_i64(&mut rng, -3, 3)).collect();
            SmallModel {
                domains,
                les,
                ges,
                objective,
            }
        })
        .collect()
}

fn build(model: &SmallModel) -> (CpModel, Vec<flashmem::solver::VarId>) {
    let mut cp = CpModel::new();
    let vars: Vec<_> = model
        .domains
        .iter()
        .enumerate()
        .map(|(i, (lo, hi))| cp.new_int_var(*lo, *hi, &format!("v{i}")))
        .collect();
    for (coeffs, bound) in &model.les {
        let mut expr = LinearExpr::new();
        for (v, c) in vars.iter().zip(coeffs) {
            expr = expr.plus(*v, *c);
        }
        cp.add_le(expr, *bound);
    }
    for (coeffs, bound) in &model.ges {
        let mut expr = LinearExpr::new();
        for (v, c) in vars.iter().zip(coeffs) {
            expr = expr.plus(*v, *c);
        }
        cp.add_ge(expr, *bound);
    }
    let mut obj = LinearExpr::new();
    for (v, c) in vars.iter().zip(&model.objective) {
        obj = obj.plus(*v, *c);
    }
    cp.minimize(obj);
    (cp, vars)
}

/// Brute-force the optimum over the (tiny) cartesian product of domains.
fn brute_force(model: &SmallModel, cp: &CpModel) -> Option<i64> {
    let mut best: Option<i64> = None;
    let d = &model.domains;
    for a in d[0].0..=d[0].1 {
        for b in d[1].0..=d[1].1 {
            for c in d[2].0..=d[2].1 {
                let assignment = [a, b, c];
                if cp.is_feasible(&assignment) {
                    let obj: i64 = assignment
                        .iter()
                        .zip(&model.objective)
                        .map(|(v, c)| v * c)
                        .sum();
                    best = Some(best.map_or(obj, |b: i64| b.min(obj)));
                }
            }
        }
    }
    best
}

#[test]
fn solver_matches_brute_force_on_small_models() {
    for model in small_models(64) {
        let (cp, _) = build(&model);
        let expected = brute_force(&model, &cp);
        let outcome = CpSolver::new().solve(&cp);
        match expected {
            Some(best) => {
                assert_eq!(outcome.status, SolveStatus::Optimal, "{model:?}");
                assert_eq!(outcome.objective, Some(best), "{model:?}");
                let solution = outcome.solution.unwrap();
                assert!(cp.is_feasible(solution.values()), "{model:?}");
            }
            None => {
                assert_eq!(outcome.status, SolveStatus::Infeasible, "{model:?}");
                assert!(outcome.solution.is_none(), "{model:?}");
            }
        }
    }
}

#[test]
fn propagation_is_sound_on_small_models() {
    for model in small_models(64) {
        let (cp, _) = build(&model);
        let mut domains = cp.domains().to_vec();
        let result = propagate(&cp, &mut domains);
        let d = &model.domains;
        let mut any_feasible = false;
        for a in d[0].0..=d[0].1 {
            for b in d[1].0..=d[1].1 {
                for c in d[2].0..=d[2].1 {
                    let assignment = [a, b, c];
                    if cp.is_feasible(&assignment) {
                        any_feasible = true;
                        // No feasible point may be pruned.
                        for (value, dom) in assignment.iter().zip(&domains) {
                            assert!(
                                *value >= dom.lo && *value <= dom.hi,
                                "feasible value {value} pruned from [{}, {}] in {model:?}",
                                dom.lo,
                                dom.hi
                            );
                        }
                    }
                }
            }
        }
        if result == PropagationResult::Conflict {
            assert!(
                !any_feasible,
                "propagation reported a conflict on a feasible model {model:?}"
            );
        }
    }
}
