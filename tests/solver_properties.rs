//! Property-based tests for the CP solver: solutions must satisfy the model,
//! optimal objective values must match brute force on small instances, and
//! propagation must never prune feasible assignments.

use proptest::prelude::*;

use flashmem::solver::{propagate, CpModel, CpSolver, LinearExpr, PropagationResult, SolveStatus};

/// A small random model over `n` variables with random linear constraints.
#[derive(Debug, Clone)]
struct SmallModel {
    domains: Vec<(i64, i64)>,
    les: Vec<(Vec<i64>, i64)>,
    ges: Vec<(Vec<i64>, i64)>,
    objective: Vec<i64>,
}

fn small_model_strategy() -> impl Strategy<Value = SmallModel> {
    let n = 3usize;
    (
        proptest::collection::vec((0i64..3, 3i64..7), n),
        proptest::collection::vec((proptest::collection::vec(-2i64..3, n), 0i64..15), 0..3),
        proptest::collection::vec((proptest::collection::vec(-1i64..3, n), 0i64..8), 0..2),
        proptest::collection::vec(-3i64..4, n),
    )
        .prop_map(|(domains, les, ges, objective)| SmallModel {
            domains: domains.into_iter().map(|(lo, span)| (lo, lo + span)).collect(),
            les,
            ges,
            objective,
        })
}

fn build(model: &SmallModel) -> (CpModel, Vec<flashmem::solver::VarId>) {
    let mut cp = CpModel::new();
    let vars: Vec<_> = model
        .domains
        .iter()
        .enumerate()
        .map(|(i, (lo, hi))| cp.new_int_var(*lo, *hi, &format!("v{i}")))
        .collect();
    for (coeffs, bound) in &model.les {
        let mut expr = LinearExpr::new();
        for (v, c) in vars.iter().zip(coeffs) {
            expr = expr.plus(*v, *c);
        }
        cp.add_le(expr, *bound);
    }
    for (coeffs, bound) in &model.ges {
        let mut expr = LinearExpr::new();
        for (v, c) in vars.iter().zip(coeffs) {
            expr = expr.plus(*v, *c);
        }
        cp.add_ge(expr, *bound);
    }
    let mut obj = LinearExpr::new();
    for (v, c) in vars.iter().zip(&model.objective) {
        obj = obj.plus(*v, *c);
    }
    cp.minimize(obj);
    (cp, vars)
}

/// Brute-force the optimum over the (tiny) cartesian product of domains.
fn brute_force(model: &SmallModel, cp: &CpModel) -> Option<i64> {
    let mut best: Option<i64> = None;
    let d = &model.domains;
    for a in d[0].0..=d[0].1 {
        for b in d[1].0..=d[1].1 {
            for c in d[2].0..=d[2].1 {
                let assignment = [a, b, c];
                if cp.is_feasible(&assignment) {
                    let obj: i64 = assignment
                        .iter()
                        .zip(&model.objective)
                        .map(|(v, c)| v * c)
                        .sum();
                    best = Some(best.map_or(obj, |b: i64| b.min(obj)));
                }
            }
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        .. ProptestConfig::default()
    })]

    #[test]
    fn solver_matches_brute_force_on_small_models(model in small_model_strategy()) {
        let (cp, _) = build(&model);
        let expected = brute_force(&model, &cp);
        let outcome = CpSolver::new().solve(&cp);
        match expected {
            Some(best) => {
                prop_assert_eq!(outcome.status, SolveStatus::Optimal);
                prop_assert_eq!(outcome.objective, Some(best));
                let solution = outcome.solution.unwrap();
                prop_assert!(cp.is_feasible(solution.values()));
            }
            None => {
                prop_assert_eq!(outcome.status, SolveStatus::Infeasible);
                prop_assert!(outcome.solution.is_none());
            }
        }
    }

    #[test]
    fn propagation_is_sound_on_small_models(model in small_model_strategy()) {
        let (cp, _) = build(&model);
        let mut domains = cp.domains().to_vec();
        let result = propagate(&cp, &mut domains);
        let d = &model.domains;
        let mut any_feasible = false;
        for a in d[0].0..=d[0].1 {
            for b in d[1].0..=d[1].1 {
                for c in d[2].0..=d[2].1 {
                    let assignment = [a, b, c];
                    if cp.is_feasible(&assignment) {
                        any_feasible = true;
                        // No feasible point may be pruned.
                        for (value, dom) in assignment.iter().zip(&domains) {
                            prop_assert!(*value >= dom.lo && *value <= dom.hi,
                                "feasible value {value} pruned from [{}, {}]", dom.lo, dom.hi);
                        }
                    }
                }
            }
        }
        if result == PropagationResult::Conflict {
            prop_assert!(!any_feasible, "propagation reported a conflict on a feasible model");
        }
    }
}
