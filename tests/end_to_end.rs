//! Cross-crate integration tests: the full FlashMem pipeline against the
//! simulated baselines, end to end, on real model-zoo graphs.

use flashmem::prelude::*;
use flashmem_baselines::{FrameworkProfile, PreloadFramework};
use flashmem_graph::WeightInventory;

fn flashmem(device: &DeviceSpec) -> FlashMem {
    FlashMem::new(device.clone()).with_config(FlashMemConfig::memory_priority())
}

#[test]
fn flashmem_beats_every_supporting_baseline_on_gptneo_small() {
    let device = DeviceSpec::oneplus_12();
    let model = ModelZoo::gptneo_small();
    let ours = flashmem(&device)
        .run(&model)
        .expect("FlashMem runs GPT-Neo-S");

    let mut compared = 0;
    for framework in PreloadFramework::all_baselines() {
        if !framework.supports(&model) {
            continue;
        }
        let theirs = framework.run(&model, &device).expect("baseline runs");
        assert!(
            ours.integrated_latency_ms < theirs.integrated_latency_ms,
            "{} integrated {} vs FlashMem {}",
            framework.name(),
            theirs.integrated_latency_ms,
            ours.integrated_latency_ms
        );
        assert!(
            ours.average_memory_mb < theirs.average_memory_mb,
            "{} memory {} vs FlashMem {}",
            framework.name(),
            theirs.average_memory_mb,
            ours.average_memory_mb
        );
        compared += 1;
    }
    assert!(
        compared >= 3,
        "expected several baselines to support GPT-Neo-S"
    );
}

#[test]
fn gptneo_2_7b_runs_only_with_flashmem_on_the_flagship_texture_budget() {
    // The paper's headline capability claim: no baseline framework can run
    // GPT-Neo-2.7B; FlashMem can.
    let device = DeviceSpec::oneplus_12();
    let model = ModelZoo::gptneo_2_7b();
    for framework in PreloadFramework::all_baselines() {
        assert!(
            !framework.supports(&model),
            "{} should not support GPT-Neo-2.7B",
            framework.name()
        );
    }
    let ours = flashmem(&device).run(&model).expect("FlashMem runs 2.7B");
    assert!(ours.integrated_latency_ms > 0.0);
    assert!(ours.streamed_weight_fraction > 0.5);
}

#[test]
fn compiled_plans_satisfy_the_paper_constraints_for_every_evaluated_model() {
    // C0 completeness, C1 precedence and the M_peak ceiling hold for the
    // overlap plan of every Table 6 model.
    let device = DeviceSpec::oneplus_12();
    let config = FlashMemConfig::memory_priority();
    for model in ModelZoo::all_evaluated() {
        let runtime = FlashMem::new(device.clone()).with_config(config.clone());
        let compiled = runtime.compile(model.graph());
        let inventory = WeightInventory::with_chunk_size(model.graph(), config.chunk_bytes);
        compiled
            .plan
            .validate(&inventory, Some(config.m_peak_bytes + config.chunk_bytes))
            .unwrap_or_else(|e| panic!("{}: {e}", model.abbr));
        assert!(
            compiled.fusion.is_valid_partition(model.graph()),
            "{}: fusion plan is not a partition",
            model.abbr
        );
    }
}

#[test]
fn smartmem_oom_on_constrained_devices_is_cured_by_streaming() {
    let mi6 = DeviceSpec::xiaomi_mi_6();
    let model = ModelZoo::gptneo_1_3b();
    let smartmem = SmartMem::new();
    assert!(smartmem.supports(&model));
    assert!(
        smartmem.run(&model, &mi6).is_err(),
        "SmartMem should exhaust the Mi 6's memory during initialization"
    );
    let ours = flashmem(&mi6).run(&model).expect("FlashMem fits the Mi 6");
    assert!(ours.peak_memory_mb < mi6.app_budget_mib());
}

#[test]
fn multi_model_fifo_is_cheaper_than_the_sum_of_cold_starts() {
    let device = DeviceSpec::oneplus_12();
    let queue = vec![ModelZoo::vit(), ModelZoo::gptneo_small()];
    let runner = MultiModelRunner::new(device.clone(), FlashMemConfig::memory_priority());
    let fifo = runner.run_fifo(&queue, 1).expect("fifo runs");

    // Cold-starting each model on MNN and summing is far slower.
    let mnn = PreloadFramework::new(FrameworkProfile::mnn());
    let mut mnn_total = 0.0;
    for model in &queue {
        mnn_total += mnn
            .run(model, &device)
            .expect("MNN supports both models")
            .integrated_latency_ms;
    }
    assert!(
        fifo.total_latency_ms < mnn_total,
        "FIFO {} vs MNN cold starts {}",
        fifo.total_latency_ms,
        mnn_total
    );
}

#[test]
fn kernel_rewriting_templates_match_the_executor_configuration() {
    let device = DeviceSpec::oneplus_12();
    let on = FlashMem::new(device.clone())
        .with_config(FlashMemConfig::memory_priority().with_kernel_rewriting(true));
    let off = FlashMem::new(device)
        .with_config(FlashMemConfig::memory_priority().with_kernel_rewriting(false));
    let rendered_on = on.rewriter().render("matmul", 2);
    let rendered_off = off.rewriter().render("matmul", 0);
    assert!(rendered_on.contains("pipeline_load"));
    assert!(!rendered_off.contains("pipeline_load"));

    let model = ModelZoo::vit();
    let with = on.run(&model).unwrap();
    let without = off.run(&model).unwrap();
    assert!(
        with.integrated_latency_ms <= without.integrated_latency_ms,
        "rewriting should not slow execution down"
    );
}
