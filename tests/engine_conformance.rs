//! Trait-conformance tests: every engine in the standard registry must
//! uphold the `InferenceEngine` contract and the `ExecutionReport`
//! invariants on the same model, so the benchmark harness can treat them
//! interchangeably.

use flashmem::prelude::*;

/// Run one engine on ViT and check every report invariant. Returns `false`
/// when the engine (correctly) declares the model unsupported.
fn check_engine(engine: &dyn InferenceEngine, model: &flashmem_graph::ModelSpec) -> bool {
    let device = DeviceSpec::oneplus_12();
    if !engine.supports(model) {
        // Unsupported models must fail cleanly, not panic or OOM.
        assert!(
            engine.run(model, &device).is_err(),
            "{}: run() on an unsupported model must error",
            engine.name()
        );
        return false;
    }

    let artifact = engine
        .compile(model, &device)
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", engine.name()));
    let streamed = artifact.streamed_fraction();
    assert!(
        (0.0..=1.0).contains(&streamed),
        "{}: artifact streamed fraction {streamed} outside [0, 1]",
        engine.name()
    );

    let report = engine
        .execute(model, &artifact, &device)
        .unwrap_or_else(|e| panic!("{}: execute failed: {e}", engine.name()));

    assert_eq!(report.framework, engine.name(), "report names its engine");
    assert_eq!(report.model, model.abbr, "report names its model");
    assert!(
        report.integrated_latency_ms > 0.0,
        "{}: integrated latency must be positive",
        engine.name()
    );
    assert!(
        report.peak_memory_mb > 0.0,
        "{}: peak memory must be positive",
        engine.name()
    );
    assert!(
        report.average_memory_mb <= report.peak_memory_mb + 1e-9,
        "{}: average memory above peak",
        engine.name()
    );
    assert!(
        (0.0..=1.0).contains(&report.streamed_weight_fraction),
        "{}: streamed fraction {} outside [0, 1]",
        engine.name(),
        report.streamed_weight_fraction
    );
    assert!(
        (report.integrated_latency_ms - report.init_latency_ms - report.exec_latency_ms).abs()
            < 1e-3,
        "{}: init + exec must equal integrated latency",
        engine.name()
    );
    assert!(
        report.energy_j > 0.0,
        "{}: energy must be positive",
        engine.name()
    );

    // Streaming engines stream; preloading engines do not.
    if engine.kind().is_streaming() {
        assert!(
            report.streamed_weight_fraction > 0.0,
            "{}: a streaming engine must stream some weights",
            engine.name()
        );
    } else {
        assert_eq!(
            report.streamed_weight_fraction,
            0.0,
            "{}: a preloading engine must not report streamed weights",
            engine.name()
        );
    }
    true
}

#[test]
fn every_registered_engine_upholds_the_report_invariants_on_vit() {
    let registry = standard_registry();
    let model = ModelZoo::vit();
    let mut conforming = 0;
    for engine in registry.iter() {
        if check_engine(engine, &model) {
            conforming += 1;
        }
    }
    // Everything except NCNN (no GPU LayerNorm) runs ViT.
    assert_eq!(conforming, registry.len() - 1);
}

#[test]
fn registry_kinds_resolve_to_engines_of_that_kind() {
    let registry = standard_registry();
    for kind in FrameworkKind::all() {
        let engine = registry
            .get(kind)
            .unwrap_or_else(|| panic!("{kind} missing from the standard registry"));
        assert_eq!(engine.kind(), kind);
    }
}

#[test]
fn run_composes_compile_and_execute() {
    let registry = standard_registry();
    let device = DeviceSpec::oneplus_12();
    let model = ModelZoo::resnet50();
    for engine in registry.iter() {
        let composed = engine.run(&model, &device).expect("ResNet runs everywhere");
        let artifact = engine.compile(&model, &device).unwrap();
        let staged = engine.execute(&model, &artifact, &device).unwrap();
        assert_eq!(
            composed.integrated_latency_ms,
            staged.integrated_latency_ms,
            "{}: run() must equal compile() + execute()",
            engine.name()
        );
    }
}
