#!/usr/bin/env bash
# Validate a Chrome trace-event JSON file exported by the bench binaries'
# `--trace-out` flag (crates/trace's chrome_trace writer):
#
#   1. the file parses as JSON and uses the trace-event object format
#      (a `traceEvents` array plus the generator's `otherData` header);
#   2. every duration span is begin/end balanced per (pid, tid) lane —
#      B and E events pair up like brackets, never crossing lanes;
#   3. every device "process" named by process_name metadata records at
#      least one actual event (a fleet device that traces nothing means
#      a wiring regression in the serve engine);
#   4. chaos/recovery events — instants whose name starts with one of the
#      five recovery verbs (`fault`, `retry`, `failover`, `quarantine`,
#      `probe`) — are instants (never spans) and carry the `serve`
#      category, and the per-verb counts are reported so CI can grep them.
#
# Usage: scripts/check-trace.sh TRACE_JSON
set -euo pipefail

if [ "$#" -ne 1 ]; then
    echo "usage: $0 TRACE_JSON" >&2
    exit 2
fi

python3 - "$1" <<'PY'
import json
import sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)

if not isinstance(doc, dict) or "traceEvents" not in doc:
    sys.exit(f"{path}: not a Chrome trace-event object (no traceEvents)")
events = doc["traceEvents"]
other = doc.get("otherData", {})

processes = {}   # pid -> process name (from metadata)
counted = {}     # pid -> non-metadata event count
stacks = {}      # (pid, tid) -> open-B depth
RECOVERY_VERBS = ("fault", "retry", "failover", "quarantine", "probe")
recovery = dict.fromkeys(RECOVERY_VERBS, 0)

for e in events:
    ph, pid, tid = e.get("ph"), e.get("pid"), e.get("tid")
    if ph == "M":
        if e.get("name") == "process_name":
            processes[pid] = e.get("args", {}).get("name", f"pid {pid}")
        continue
    if ph in ("B", "i"):
        # One recorded event per span-begin or instant (E only closes).
        counted[pid] = counted.get(pid, 0) + 1
    verb = next(
        (v for v in RECOVERY_VERBS if e.get("name", "").startswith(v + " ")), None
    )
    if verb is not None:
        if ph != "i":
            sys.exit(f"{path}: recovery event {e.get('name')!r} is not an instant")
        if e.get("cat") != "serve":
            sys.exit(f"{path}: recovery event {e.get('name')!r} not in cat 'serve'")
        recovery[verb] += 1
    if ph == "B":
        stacks[(pid, tid)] = stacks.get((pid, tid), 0) + 1
    elif ph == "E":
        depth = stacks.get((pid, tid), 0) - 1
        if depth < 0:
            sys.exit(f"{path}: E without matching B on pid {pid} tid {tid}")
        stacks[(pid, tid)] = depth
    elif ph != "i":
        sys.exit(f"{path}: unexpected phase {ph!r}")
    if "ts" not in e or e["ts"] < 0:
        sys.exit(f"{path}: event without a non-negative ts: {e}")

open_lanes = [lane for lane, depth in stacks.items() if depth != 0]
if open_lanes:
    sys.exit(f"{path}: unbalanced B/E spans on lanes {open_lanes}")

if not processes:
    sys.exit(f"{path}: no process_name metadata — no devices traced")
silent = [name for pid, name in sorted(processes.items()) if counted.get(pid, 0) == 0]
if silent:
    sys.exit(f"{path}: devices recorded no events: {silent}")

total = sum(counted.values())
declared = other.get("events")
if declared is not None and int(declared) != total:
    sys.exit(f"{path}: header declares {declared} events, found {total}")

dropped = other.get("dropped_events", "0")
recovery_note = ", ".join(f"{v}={n}" for v, n in recovery.items() if n)
print(
    f"check-trace: {path} OK — {total} events across "
    f"{len(processes)} devices, {dropped} dropped, all spans balanced"
    + (f", recovery instants: {recovery_note}" if recovery_note else "")
)
PY
