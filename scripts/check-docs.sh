#!/usr/bin/env bash
# Fail CI when docs/ARCHITECTURE.md references a workspace path that no
# longer exists (crates get renamed, files move), or when the README stops
# linking the architecture doc. Run from the repository root.
set -euo pipefail

doc="docs/ARCHITECTURE.md"
fail=0

if [ ! -f "$doc" ]; then
    echo "missing $doc"
    exit 1
fi

# Every backtick-quoted repository path mentioned in the doc must exist.
paths=$(grep -oE '`(crates|src|vendor|examples|tests|docs)(/[A-Za-z0-9_.-]+)*`' "$doc" \
    | tr -d '`' | sort -u)
for path in $paths; do
    if [ ! -e "$path" ]; then
        echo "dangling path reference in $doc: $path"
        fail=1
    fi
done

if ! grep -q 'docs/ARCHITECTURE.md' README.md; then
    echo "README.md does not link docs/ARCHITECTURE.md"
    fail=1
fi

if [ "$fail" -eq 0 ]; then
    count=$(printf '%s\n' "$paths" | sed '/^$/d' | wc -l)
    echo "check-docs: $count path references in $doc all resolve"
fi
exit "$fail"
