#!/usr/bin/env bash
# Compare two bench-JSON trees (e.g. a `--threads 1` serial run vs a
# pool-parallel run of `bin/all` or `bin/fleet_scale`) and fail unless they
# are byte-identical after stripping the schedule-dependent wall-clock
# telemetry fields: `elapsed_ms` / `threads` (every emitter) plus the
# fleet_scale bench's `serial_ms` / `parallel_ms` / `speedup` /
# `per_device_step_ms` timing cells.
#
# Exported Chrome traces (`--trace-out` files placed in the compared
# directories, e.g. `fleet_scale.trace.json`) carry no wall-clock fields at
# all, so they flow through the strip untouched and must be byte-identical
# outright — the trace determinism oracle rides the same diff.
#
# Usage: scripts/diff-bench-json.sh SERIAL_DIR PARALLEL_DIR
set -euo pipefail

if [ "$#" -ne 2 ]; then
    echo "usage: $0 SERIAL_DIR PARALLEL_DIR" >&2
    exit 2
fi

a="$1"
b="$2"
fail=0
count=0

strip_timing() {
    grep -v \
        -e '"elapsed_ms":' -e '"threads":' \
        -e '"serial_ms":' -e '"parallel_ms":' \
        -e '"speedup":' -e '"per_device_step_ms":' \
        "$1"
}

for fa in "$a"/*.json; do
    name=$(basename "$fa")
    fb="$b/$name"
    if [ ! -f "$fb" ]; then
        echo "missing from $b: $name"
        fail=1
        continue
    fi
    if ! diff <(strip_timing "$fa") <(strip_timing "$fb") >/dev/null; then
        echo "JSON mismatch (beyond elapsed_ms/threads): $name"
        diff <(strip_timing "$fa") <(strip_timing "$fb") | head -20 || true
        fail=1
    fi
    count=$((count + 1))
done

# The parallel tree must not contain files the serial tree lacks either.
for fb in "$b"/*.json; do
    name=$(basename "$fb")
    if [ ! -f "$a/$name" ]; then
        echo "missing from $a: $name"
        fail=1
    fi
done

if [ "$fail" -eq 0 ]; then
    echo "diff-bench-json: $count JSON documents byte-identical (modulo elapsed_ms/threads)"
fi
exit "$fail"
