//! Chrome trace-event JSON export for a merged [`FleetTrace`].
//!
//! The output is the classic `chrome://tracing` / Perfetto "JSON object
//! format": a `traceEvents` array of metadata (`ph:"M"`), duration begin/
//! end pairs (`ph:"B"`/`"E"`), and instant (`ph:"i"`) records, plus an
//! `otherData` header carrying the fleet-wide `dropped_events` counter.
//! Devices map to trace *processes* (`pid` = device index) and lanes —
//! hardware queues, host work, individual requests — map to *threads*.
//!
//! Emission is fully deterministic: records are sorted by timestamp with
//! `E` before `B` before `i` at ties (so back-to-back spans on one lane
//! close before the next opens), then by device index and recorder
//! sequence number. Rendering uses only `f64` `Display`, which is
//! deterministic in Rust.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::{FleetTrace, TraceEvent, TraceLane};

/// Sortable intermediate record: one line of the `traceEvents` array.
struct Record {
    ts_us: f64,
    /// 0 = end, 1 = begin, 2 = instant — the tie order at equal `ts_us`.
    class: u8,
    /// Secondary tie key, larger first: for `E` the span's start (inner
    /// spans close first), for `B` the span's end (outer spans open
    /// first). Unused (0) for instants.
    nest_key: f64,
    pid: usize,
    seq: u64,
    body: String,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn args_fragment(event: &TraceEvent) -> String {
    if event.bytes > 0 {
        format!(",\"args\":{{\"bytes\":{}}}", event.bytes)
    } else {
        String::new()
    }
}

fn event_records(pid: usize, event: &TraceEvent, out: &mut Vec<Record>) {
    let ts = event.start_ms * 1000.0;
    let cat = event.kind.category();
    let name = escape(&event.name);
    let tid = event.lane.tid();
    let args = args_fragment(event);
    if event.dur_ms > 0.0 {
        let end = (event.start_ms + event.dur_ms) * 1000.0;
        out.push(Record {
            ts_us: ts,
            class: 1,
            nest_key: end,
            pid,
            seq: event.seq,
            body: format!(
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"B\",\"ts\":{ts},\"pid\":{pid},\"tid\":{tid}{args}}}"
            ),
        });
        out.push(Record {
            ts_us: end,
            class: 0,
            nest_key: ts,
            pid,
            seq: event.seq,
            body: format!(
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"E\",\"ts\":{end},\"pid\":{pid},\"tid\":{tid}}}"
            ),
        });
    } else {
        out.push(Record {
            ts_us: ts,
            class: 2,
            nest_key: 0.0,
            pid,
            seq: event.seq,
            body: format!(
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"ts\":{ts},\"s\":\"t\",\"pid\":{pid},\"tid\":{tid}{args}}}"
            ),
        });
    }
}

/// Render a merged fleet trace as a Chrome trace-event JSON string.
///
/// The header's `otherData` carries the total event and
/// `dropped_events` counts; each device's `process_name` metadata
/// additionally carries that device's own dropped count in `args`.
pub fn chrome_trace(trace: &FleetTrace) -> String {
    let mut lines: Vec<String> = Vec::new();

    // Metadata first, in fleet order: process names, then each lane
    // observed on that device (sorted by tid) as a thread name.
    for (pid, process) in trace.processes.iter().enumerate() {
        lines.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"{}\",\"dropped_events\":{}}}}}",
            escape(&process.name),
            process.dropped
        ));
        let mut lanes: BTreeMap<u64, TraceLane> = BTreeMap::new();
        for event in &process.events {
            lanes.entry(event.lane.tid()).or_insert(event.lane);
        }
        for (tid, lane) in lanes {
            lines.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
                escape(&lane.label())
            ));
        }
    }

    // Then the events, globally ordered.
    let mut records: Vec<Record> = Vec::with_capacity(trace.total_events() * 2);
    for (pid, process) in trace.processes.iter().enumerate() {
        for event in &process.events {
            event_records(pid, event, &mut records);
        }
    }
    records.sort_by(|a, b| {
        a.ts_us
            .total_cmp(&b.ts_us)
            .then_with(|| a.class.cmp(&b.class))
            .then_with(|| b.nest_key.total_cmp(&a.nest_key))
            .then_with(|| a.pid.cmp(&b.pid))
            .then_with(|| a.seq.cmp(&b.seq))
    });
    lines.extend(records.into_iter().map(|r| r.body));

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"displayTimeUnit\": \"ms\",\n");
    out.push_str("  \"otherData\": {\n");
    out.push_str("    \"generator\": \"flashmem-trace\",\n");
    let _ = writeln!(out, "    \"processes\": \"{}\",", trace.processes.len());
    let _ = writeln!(out, "    \"events\": \"{}\",", trace.total_events());
    let _ = writeln!(
        out,
        "    \"dropped_events\": \"{}\"",
        trace.dropped_events()
    );
    out.push_str("  },\n");
    out.push_str("  \"traceEvents\": [\n");
    for (i, line) in lines.iter().enumerate() {
        let comma = if i + 1 == lines.len() { "" } else { "," };
        let _ = writeln!(out, "    {line}{comma}");
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceConfig, TraceKind, TraceRecorder};

    fn sample_fleet() -> FleetTrace {
        let mut a = TraceRecorder::new(TraceConfig::enabled());
        a.span_bytes(
            TraceKind::Command,
            TraceLane::TransferQueue,
            "load w0",
            0.0,
            4.0,
            1024,
        );
        a.span(
            TraceKind::Command,
            TraceLane::ComputeQueue,
            "gemm",
            4.0,
            9.0,
        );
        a.instant(TraceKind::Complete, TraceLane::Request(0), "done", 9.0);
        let mut b = TraceRecorder::new(TraceConfig::enabled());
        b.span(TraceKind::Running, TraceLane::Request(1), "run", 1.0, 3.0);
        FleetTrace {
            processes: vec![a.into_process_trace("dev0"), b.into_process_trace("dev1")],
        }
    }

    #[test]
    fn export_is_balanced_and_carries_metadata() {
        let json = chrome_trace(&sample_fleet());
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 3);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 3);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 1);
        assert_eq!(json.matches("process_name").count(), 2);
        assert!(json.contains("\"displayTimeUnit\": \"ms\""));
        assert!(json.contains("\"dropped_events\": \"0\""));
        assert!(json.contains("\"args\":{\"bytes\":1024}"));
        assert!(json.contains("\"name\":\"transfer queue\""));
        assert!(json.contains("\"name\":\"req 1\""));
        // ts is microseconds: the 4ms span boundary lands at 4000.
        assert!(json.contains("\"ts\":4000"));
    }

    #[test]
    fn back_to_back_spans_close_before_opening() {
        let json = chrome_trace(&sample_fleet());
        // The transfer span ends at ts=4000 and the compute span begins
        // at ts=4000; the E record must come first.
        let end = json.find("\"ph\":\"E\",\"ts\":4000").expect("end record");
        let begin = json.find("\"ph\":\"B\",\"ts\":4000").expect("begin record");
        assert!(end < begin, "E must sort before B at equal ts");
    }

    #[test]
    fn export_is_deterministic() {
        let fleet = sample_fleet();
        assert_eq!(chrome_trace(&fleet), chrome_trace(&fleet));
    }

    #[test]
    fn dropped_counter_reaches_the_header() {
        let mut rec = TraceRecorder::new(TraceConfig::enabled().with_events_per_device(1));
        rec.instant(TraceKind::Admit, TraceLane::Request(0), "a", 0.0);
        rec.instant(TraceKind::Admit, TraceLane::Request(1), "b", 1.0);
        let fleet = FleetTrace {
            processes: vec![rec.into_process_trace("dev")],
        };
        let json = chrome_trace(&fleet);
        assert!(json.contains("\"dropped_events\": \"1\""));
        assert!(json.contains("\"dropped_events\":1"));
    }

    #[test]
    fn escapes_control_and_quote_characters() {
        let mut rec = TraceRecorder::new(TraceConfig::enabled());
        rec.instant(TraceKind::Fail, TraceLane::Host, "a\"b\\c\nd", 0.0);
        let fleet = FleetTrace {
            processes: vec![rec.into_process_trace("dev")],
        };
        let json = chrome_trace(&fleet);
        assert!(json.contains("a\\\"b\\\\c\\nd"));
    }
}
