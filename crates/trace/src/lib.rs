//! Deterministic, sim-clock-stamped event tracing for the FlashMem stack.
//!
//! Every layer of the simulator — plan compilation in `core`, per-command
//! queue stepping in `gpu-sim`, request lifecycles in `serve` — records
//! spans and instants into a [`TraceRecorder`]. The design follows the
//! repo's determinism discipline:
//!
//! - **Sim-clock timestamps.** Events are stamped with simulated
//!   milliseconds, never wall clocks, so a trace is a pure function of the
//!   workload and fleet.
//! - **Per-device buffers, ordered merge.** Each `DeviceJob` fills its own
//!   recorder single-threaded inside `run_device`; the engine merges the
//!   buffers at the same commit point that merges `RequestOutcome`s. A
//!   `--threads 4` trace is therefore byte-identical to `--threads 1` by
//!   construction.
//! - **One branch when disabled.** Recording is off by default behind
//!   [`TraceConfig`]; every record call checks `enabled` before touching
//!   or allocating anything.
//! - **Bounded memory.** Each recorder is a ring buffer (default 64k
//!   events); overflow drops the *oldest* events and counts them in
//!   [`TraceRecorder::dropped`], surfaced in the export header so
//!   1024-device ramps cannot OOM the tracer.
//!
//! Two consumers sit on top: [`chrome_trace`] renders a merged
//! [`FleetTrace`] as Chrome trace-event JSON (viewable in Perfetto /
//! `chrome://tracing`, devices as processes, queues and requests as
//! threads), and [`PhaseBreakdown`] attributes one request's end-to-end
//! latency to queue / compile / transfer / compute / suspended phases.

#![warn(missing_docs)]

use std::collections::VecDeque;

mod trace_export;

pub use trace_export::chrome_trace;

/// Default ring-buffer capacity per device recorder.
pub const DEFAULT_EVENTS_PER_DEVICE: usize = 65_536;

/// Tracing configuration carried by the engine. Off by default so hot
/// paths pay exactly one branch per record call when disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Whether recording is on. When `false`, every record call is a
    /// single branch and no event storage is ever allocated.
    pub enabled: bool,
    /// Ring-buffer capacity per device recorder; the oldest events are
    /// dropped (and counted) past this bound.
    pub events_per_device: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

impl TraceConfig {
    /// The default: recording off.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            events_per_device: DEFAULT_EVENTS_PER_DEVICE,
        }
    }

    /// Recording on with the default per-device ring capacity.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::disabled()
        }
    }

    /// Override the per-device ring capacity (clamped to at least 1).
    pub fn with_events_per_device(mut self, cap: usize) -> Self {
        self.events_per_device = cap.max(1);
        self
    }
}

/// What an event describes. The kind maps to the `cat` field of the
/// Chrome trace export and lets consumers filter one layer's events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// One simulated device command occupying a hardware queue (gpu-sim).
    Command,
    /// A request waiting between arrival and admission (serve).
    QueueWait,
    /// A request actively executing on its device (serve).
    Running,
    /// A plan compile / LC-OPG solve (core).
    Compile,
    /// Artifact-cache hit at admission (core).
    CacheHit,
    /// Artifact-cache miss at admission (core).
    CacheMiss,
    /// Request admitted to a device slot, tagged with its laxity (serve).
    Admit,
    /// Request preempted: suspended and evicted by the policy (serve).
    Preempt,
    /// A request sitting suspended off-device (serve).
    Suspended,
    /// Resume penalty: reloading evicted state before restart (gpu-sim).
    Resume,
    /// Request completed (serve).
    Complete,
    /// Request completed past its deadline, tagged with the miss cause.
    SloMiss,
    /// Request failed admission or execution (serve).
    Fail,
    /// Request shed by overload control (admission reject or queue-full),
    /// tagged with the typed cause (serve).
    Reject,
    /// Queued request re-placed from a backed-up shard onto this device by
    /// the steal planner (serve).
    Steal,
    /// Full-graph prefill pass for a generative request (serve).
    Prefill,
    /// One batched decode step emitting one token per in-flight request
    /// (serve).
    DecodeStep,
    /// A request joining the continuous batch at a step boundary (serve).
    BatchJoin,
    /// A request leaving the continuous batch at a step boundary (serve).
    BatchLeave,
    /// An injected fault fired on this device (device loss, transient
    /// kernel fault or spurious OOM spike), tagged with its kind (serve).
    Fault,
    /// A faulted request re-enqueued on the same device with simulated-time
    /// backoff, consuming one unit of its retry budget (serve).
    Retry,
    /// A request re-placed from a failed or quarantined device onto this
    /// surviving device by the recovery planner (serve).
    Failover,
    /// This device quarantined by health tracking after crossing the fault
    /// threshold — it receives no placements until probed (serve).
    Quarantine,
    /// A probe placement sent to a quarantined device to test reinstatement
    /// (serve).
    Probe,
}

impl TraceKind {
    /// Category label used for the Chrome trace `cat` field.
    pub fn category(self) -> &'static str {
        match self {
            TraceKind::Command => "gpu",
            TraceKind::Compile | TraceKind::CacheHit | TraceKind::CacheMiss => "compile",
            TraceKind::QueueWait
            | TraceKind::Running
            | TraceKind::Admit
            | TraceKind::Preempt
            | TraceKind::Suspended
            | TraceKind::Resume
            | TraceKind::Complete
            | TraceKind::SloMiss
            | TraceKind::Fail
            | TraceKind::Reject
            | TraceKind::Steal
            | TraceKind::Prefill
            | TraceKind::DecodeStep
            | TraceKind::BatchJoin
            | TraceKind::BatchLeave
            | TraceKind::Fault
            | TraceKind::Retry
            | TraceKind::Failover
            | TraceKind::Quarantine
            | TraceKind::Probe => "serve",
        }
    }
}

/// Which "thread" lane of a device "process" an event lands on in the
/// Chrome trace export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceLane {
    /// The device's DMA/transfer hardware queue.
    TransferQueue,
    /// The device's compute hardware queue.
    ComputeQueue,
    /// Host-side work (compiles, cache probes) on this device's driver.
    Host,
    /// One request's lifecycle lane, keyed by its global sequence number.
    Request(usize),
}

impl TraceLane {
    /// Stable Chrome-trace thread id for this lane. Queue and host lanes
    /// take small fixed ids; request lanes start at 16.
    pub fn tid(self) -> u64 {
        match self {
            TraceLane::TransferQueue => 0,
            TraceLane::ComputeQueue => 1,
            TraceLane::Host => 2,
            TraceLane::Request(seq) => 16 + seq as u64,
        }
    }

    /// Human-readable lane name for the Chrome trace `thread_name`.
    pub fn label(self) -> String {
        match self {
            TraceLane::TransferQueue => "transfer queue".to_string(),
            TraceLane::ComputeQueue => "compute queue".to_string(),
            TraceLane::Host => "host".to_string(),
            TraceLane::Request(seq) => format!("req {seq}"),
        }
    }
}

/// One recorded span or instant. `dur_ms == 0` renders as an instant
/// event; anything longer renders as a begin/end pair.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Per-recorder monotonic sequence number. Survives ring-buffer
    /// drops, so merge order stays stable even after overflow.
    pub seq: u64,
    /// Simulated start time in milliseconds (global fleet clock).
    pub start_ms: f64,
    /// Simulated duration in milliseconds; 0 for instants.
    pub dur_ms: f64,
    /// What the event describes.
    pub kind: TraceKind,
    /// Which lane it lands on.
    pub lane: TraceLane,
    /// Display label (model abbr, command label, miss cause, ...).
    pub name: String,
    /// Bytes moved/resident where meaningful, else 0.
    pub bytes: u64,
}

/// A bounded, per-device event recorder. Filled single-threaded inside
/// one `DeviceJob`; never shared across threads while recording.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    config: TraceConfig,
    events: VecDeque<TraceEvent>,
    next_seq: u64,
    dropped: u64,
}

impl TraceRecorder {
    /// A recorder honouring `config`. Allocates nothing when disabled.
    pub fn new(config: TraceConfig) -> Self {
        Self {
            config,
            events: VecDeque::new(),
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Whether this recorder stores anything. Callers building expensive
    /// labels should branch on this first.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    fn push(&mut self, event: TraceEvent) {
        if self.events.len() >= self.config.events_per_device {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Record a span `[start_ms, end_ms]`. A no-op when disabled; the
    /// `name` string is only materialised on the enabled path.
    #[inline]
    pub fn span(
        &mut self,
        kind: TraceKind,
        lane: TraceLane,
        name: &str,
        start_ms: f64,
        end_ms: f64,
    ) {
        self.span_bytes(kind, lane, name, start_ms, end_ms, 0);
    }

    /// [`TraceRecorder::span`] carrying a byte count (traffic or
    /// resident bytes, depending on `kind`).
    #[inline]
    pub fn span_bytes(
        &mut self,
        kind: TraceKind,
        lane: TraceLane,
        name: &str,
        start_ms: f64,
        end_ms: f64,
        bytes: u64,
    ) {
        if !self.config.enabled {
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push(TraceEvent {
            seq,
            start_ms,
            dur_ms: (end_ms - start_ms).max(0.0),
            kind,
            lane,
            name: name.to_string(),
            bytes,
        });
    }

    /// Record a zero-duration instant at `time_ms`.
    #[inline]
    pub fn instant(&mut self, kind: TraceKind, lane: TraceLane, name: &str, time_ms: f64) {
        self.span_bytes(kind, lane, name, time_ms, time_ms, 0);
    }

    /// [`TraceRecorder::instant`] carrying a byte count.
    #[inline]
    pub fn instant_bytes(
        &mut self,
        kind: TraceKind,
        lane: TraceLane,
        name: &str,
        time_ms: f64,
        bytes: u64,
    ) {
        self.span_bytes(kind, lane, name, time_ms, time_ms, bytes);
    }

    /// Events currently buffered (after any ring drops).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped by the ring buffer so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Append every event of `other` to this recorder, renumbering the
    /// absorbed events so recorder sequence numbers stay strictly
    /// increasing in merge order. This is how a device's master recorder
    /// accumulates the per-round buffers of a multi-round recovery run:
    /// round *k+1*'s events sort after round *k*'s at equal timestamps,
    /// exactly like a single recorder that had recorded both rounds.
    /// Absorbed drop counts carry over; the ring bound still applies.
    pub fn absorb(&mut self, other: TraceRecorder) {
        if !self.config.enabled {
            return;
        }
        self.dropped += other.dropped;
        for mut event in other.events {
            event.seq = self.next_seq;
            self.next_seq += 1;
            self.push(event);
        }
    }

    /// Seal the recorder into one device's share of a [`FleetTrace`].
    pub fn into_process_trace(self, name: &str) -> ProcessTrace {
        ProcessTrace {
            name: name.to_string(),
            events: self.events.into(),
            dropped: self.dropped,
        }
    }
}

/// One device's sealed event buffer — a "process" in the Chrome export.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessTrace {
    /// Display name (device name + index).
    pub name: String,
    /// Events in record order (recorder `seq` ascending).
    pub events: Vec<TraceEvent>,
    /// Events the ring buffer dropped while recording.
    pub dropped: u64,
}

/// The merged, deterministic trace of one fleet run: one
/// [`ProcessTrace`] per device, in fleet order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetTrace {
    /// Per-device traces, indexed by device position in the fleet.
    pub processes: Vec<ProcessTrace>,
}

impl FleetTrace {
    /// Total events buffered across the fleet.
    pub fn total_events(&self) -> usize {
        self.processes.iter().map(|p| p.events.len()).sum()
    }

    /// Total events dropped by ring buffers across the fleet.
    pub fn dropped_events(&self) -> u64 {
        self.processes.iter().map(|p| p.dropped).sum()
    }

    /// All events merged into one deterministic stream, sorted by
    /// `(start_ms, device index, recorder seq)` — the trace analogue of
    /// the engine's ordered-merge commit point. Returns
    /// `(device_index, event)` pairs.
    pub fn merged(&self) -> Vec<(usize, &TraceEvent)> {
        let mut all: Vec<(usize, &TraceEvent)> = self
            .processes
            .iter()
            .enumerate()
            .flat_map(|(idx, p)| p.events.iter().map(move |e| (idx, e)))
            .collect();
        all.sort_by(|(pa, ea), (pb, eb)| {
            ea.start_ms
                .total_cmp(&eb.start_ms)
                .then_with(|| pa.cmp(pb))
                .then_with(|| ea.seq.cmp(&eb.seq))
        });
        all
    }
}

/// Where one request's end-to-end latency went, in simulated
/// milliseconds. The phases plus [`PhaseBreakdown::stall_ms`] sum to the
/// request's latency *exactly* (stall is defined as the residual).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// Arrival → admission wait.
    pub queue_ms: f64,
    /// Plan compile / LC-OPG solve time on the admission path.
    pub compile_ms: f64,
    /// Time with a transfer-queue command in flight and no concurrent
    /// compute (exposed, non-overlapped transfer).
    pub transfer_ms: f64,
    /// Time with a compute-queue command in flight.
    pub compute_ms: f64,
    /// Time suspended off-device plus resume/reload penalties.
    pub suspended_ms: f64,
    /// Residual: latency minus all attributed phases. Captures
    /// queue-clock stalls between commands; may be slightly negative
    /// when a command issues before the nominal admission instant.
    pub stall_ms: f64,
}

impl PhaseBreakdown {
    /// Sum of all phases — equals the request's end-to-end latency by
    /// construction.
    pub fn total_ms(&self) -> f64 {
        self.queue_ms
            + self.compile_ms
            + self.transfer_ms
            + self.compute_ms
            + self.suspended_ms
            + self.stall_ms
    }

    /// Attribute `latency_ms` across phases. `transfer` and `compute`
    /// are the request's own command intervals (each list non-overlapping
    /// within itself, as produced by one hardware queue); transfer time
    /// hidden under concurrent compute is credited to compute.
    pub fn attribute(
        latency_ms: f64,
        queue_ms: f64,
        compile_ms: f64,
        suspended_ms: f64,
        transfer: &[(f64, f64)],
        compute: &[(f64, f64)],
    ) -> Self {
        let compute_ms = interval_union_ms(compute);
        let transfer_ms = interval_union_ms(transfer) - interval_overlap_ms(transfer, compute);
        let stall_ms = latency_ms - queue_ms - compile_ms - suspended_ms - transfer_ms - compute_ms;
        Self {
            queue_ms,
            compile_ms,
            transfer_ms,
            compute_ms,
            suspended_ms,
            stall_ms,
        }
    }
}

/// Total length covered by a set of intervals, merging overlaps.
pub fn interval_union_ms(intervals: &[(f64, f64)]) -> f64 {
    let mut sorted: Vec<(f64, f64)> = intervals.iter().copied().filter(|(s, e)| e > s).collect();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut total = 0.0;
    let mut cursor = f64::NEG_INFINITY;
    for (s, e) in sorted {
        let s = s.max(cursor);
        if e > s {
            total += e - s;
            cursor = e;
        }
    }
    total
}

/// Total length where intervals from `a` and `b` overlap each other.
pub fn interval_overlap_ms(a: &[(f64, f64)], b: &[(f64, f64)]) -> f64 {
    // union(a) + union(b) - union(a ∪ b) == overlap, since each list is
    // merged internally first.
    let mut both: Vec<(f64, f64)> = Vec::with_capacity(a.len() + b.len());
    both.extend_from_slice(a);
    both.extend_from_slice(b);
    interval_union_ms(a) + interval_union_ms(b) - interval_union_ms(&both)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_stores_nothing() {
        let mut rec = TraceRecorder::new(TraceConfig::disabled());
        rec.span(TraceKind::Command, TraceLane::ComputeQueue, "k", 0.0, 5.0);
        rec.instant(TraceKind::Complete, TraceLane::Request(0), "done", 5.0);
        assert!(!rec.enabled());
        assert!(rec.is_empty());
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn ring_buffer_drops_oldest_and_counts() {
        let mut rec = TraceRecorder::new(TraceConfig::enabled().with_events_per_device(3));
        for i in 0..5 {
            rec.instant(
                TraceKind::Command,
                TraceLane::ComputeQueue,
                &format!("k{i}"),
                i as f64,
            );
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 2);
        let proc = rec.into_process_trace("dev");
        assert_eq!(proc.dropped, 2);
        // Oldest were dropped: survivors are k2, k3, k4 with their
        // original sequence numbers intact.
        let names: Vec<&str> = proc.events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["k2", "k3", "k4"]);
        assert_eq!(proc.events[0].seq, 2);
    }

    #[test]
    fn merged_stream_orders_by_time_then_device_then_seq() {
        let mut a = TraceRecorder::new(TraceConfig::enabled());
        let mut b = TraceRecorder::new(TraceConfig::enabled());
        a.instant(TraceKind::Admit, TraceLane::Request(0), "a1", 10.0);
        a.instant(TraceKind::Admit, TraceLane::Request(1), "a2", 5.0);
        b.instant(TraceKind::Admit, TraceLane::Request(2), "b1", 5.0);
        let fleet = FleetTrace {
            processes: vec![a.into_process_trace("d0"), b.into_process_trace("d1")],
        };
        let names: Vec<&str> = fleet
            .merged()
            .iter()
            .map(|(_, e)| e.name.as_str())
            .collect();
        // At t=5 device 0 sorts before device 1; t=10 comes last.
        assert_eq!(names, vec!["a2", "b1", "a1"]);
        assert_eq!(fleet.total_events(), 3);
        assert_eq!(fleet.dropped_events(), 0);
    }

    #[test]
    fn absorb_renumbers_and_carries_drops() {
        let mut master = TraceRecorder::new(TraceConfig::enabled());
        master.instant(TraceKind::Admit, TraceLane::Request(0), "r0", 1.0);
        let mut round = TraceRecorder::new(TraceConfig::enabled().with_events_per_device(1));
        round.instant(TraceKind::Fault, TraceLane::Request(1), "f1", 1.0);
        round.instant(TraceKind::Retry, TraceLane::Request(1), "r1", 2.0);
        assert_eq!(round.dropped(), 1);
        master.absorb(round);
        assert_eq!(master.len(), 2);
        assert_eq!(master.dropped(), 1);
        let proc = master.into_process_trace("d");
        // Absorbed events are renumbered after the master's own.
        assert_eq!(proc.events[0].seq, 0);
        assert_eq!(proc.events[1].seq, 1);
        assert_eq!(proc.events[1].name, "r1");
        assert_eq!(proc.events[1].kind, TraceKind::Retry);
    }

    #[test]
    fn absorb_into_disabled_recorder_is_a_no_op() {
        let mut master = TraceRecorder::new(TraceConfig::disabled());
        let mut round = TraceRecorder::new(TraceConfig::enabled());
        round.instant(TraceKind::Probe, TraceLane::Host, "p", 0.0);
        master.absorb(round);
        assert!(master.is_empty());
    }

    #[test]
    fn recovery_kinds_are_serve_category() {
        for kind in [
            TraceKind::Fault,
            TraceKind::Retry,
            TraceKind::Failover,
            TraceKind::Quarantine,
            TraceKind::Probe,
        ] {
            assert_eq!(kind.category(), "serve");
        }
    }

    #[test]
    fn spans_clamp_negative_durations() {
        let mut rec = TraceRecorder::new(TraceConfig::enabled());
        rec.span(TraceKind::Running, TraceLane::Request(0), "r", 10.0, 8.0);
        let proc = rec.into_process_trace("d");
        assert_eq!(proc.events[0].dur_ms, 0.0);
    }

    #[test]
    fn interval_union_merges_overlaps() {
        assert_eq!(interval_union_ms(&[]), 0.0);
        assert_eq!(interval_union_ms(&[(0.0, 2.0), (1.0, 3.0)]), 3.0);
        assert_eq!(interval_union_ms(&[(5.0, 6.0), (0.0, 1.0)]), 2.0);
        // Empty / inverted intervals contribute nothing.
        assert_eq!(interval_union_ms(&[(2.0, 2.0), (3.0, 1.0)]), 0.0);
    }

    #[test]
    fn interval_overlap_counts_shared_time() {
        let a = [(0.0, 4.0)];
        let b = [(2.0, 6.0)];
        assert_eq!(interval_overlap_ms(&a, &b), 2.0);
        assert_eq!(interval_overlap_ms(&a, &[]), 0.0);
    }

    #[test]
    fn phase_breakdown_sums_to_latency() {
        let transfer = [(0.0, 10.0), (20.0, 25.0)];
        let compute = [(5.0, 18.0)];
        let phases = PhaseBreakdown::attribute(60.0, 12.0, 3.0, 7.0, &transfer, &compute);
        assert!((phases.total_ms() - 60.0).abs() < 1e-9, "{phases:?}");
        assert_eq!(phases.compute_ms, 13.0);
        // 15ms of transfer, 5 of which hide under compute.
        assert_eq!(phases.transfer_ms, 10.0);
        assert_eq!(phases.queue_ms, 12.0);
        assert_eq!(phases.compile_ms, 3.0);
        assert_eq!(phases.suspended_ms, 7.0);
    }

    #[test]
    fn config_clamps_capacity() {
        let cfg = TraceConfig::enabled().with_events_per_device(0);
        assert_eq!(cfg.events_per_device, 1);
        assert_eq!(TraceConfig::default(), TraceConfig::disabled());
        assert_eq!(
            TraceConfig::disabled().events_per_device,
            DEFAULT_EVENTS_PER_DEVICE
        );
    }
}
