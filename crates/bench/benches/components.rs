//! Micro-benchmarks for the building blocks: the CP solver on an OPG window,
//! the LC-OPG planner, the GPU simulator's command engine, the kernel cost
//! model and the GBRT regressor. These are the hot paths whose cost
//! determines offline planning time (Table 4) and simulation throughput.

use flashmem_bench::timing::{bench, group};
use flashmem_core::opg::greedy_hint;
use flashmem_core::{
    build_weight_window_model, CandidateSlot, FlashMem, FlashMemConfig, LcOpgSolver,
};
use flashmem_gpu_sim::engine::{Command, CommandStream, GpuSimulator, SimConfig};
use flashmem_gpu_sim::kernel::{KernelCategory, KernelCostModel, KernelDesc, LaunchDims};
use flashmem_gpu_sim::{DeviceSpec, MemoryTier};
use flashmem_graph::ModelZoo;
use flashmem_profiler::{GbrtConfig, GbrtModel, KernelSample, KernelSampler, SamplingConfig};
use flashmem_solver::{CpSolver, SolverConfig};

fn bench_solver_window() {
    let config = FlashMemConfig::memory_priority();
    let candidates: Vec<CandidateSlot> = (0..24)
        .map(|k| CandidateSlot {
            kernel: k,
            capacity_chunks: 8,
            memory_headroom_chunks: 64,
        })
        .collect();
    // Exactly the solve the LC-OPG planner issues per weight: a warm-started,
    // time-limited window model.
    let solver = CpSolver::with_config(SolverConfig::with_time_limit_ms(
        config.solver_time_limit_ms,
    ));
    group("solver");
    bench("opg_window_solve_24_candidates", 10, || {
        let window = build_weight_window_model(25, 40, &candidates, &config);
        let hint = greedy_hint(&window);
        solver.solve_with_hint(&window.model, Some(&hint))
    });
}

fn bench_lc_opg_plan() {
    let graph = ModelZoo::gptneo_small().build();
    let solver = LcOpgSolver::new(DeviceSpec::oneplus_12(), FlashMemConfig::memory_priority());
    group("planner");
    bench("lc_opg_plan_gptneo_small", 5, || solver.plan(&graph));
}

fn bench_end_to_end_run() {
    let model = ModelZoo::vit();
    let runtime =
        FlashMem::new(DeviceSpec::oneplus_12()).with_config(FlashMemConfig::memory_priority());
    let compiled = runtime.compile(model.graph());
    group("runtime");
    bench("flashmem_execute_vit_precompiled", 10, || {
        runtime.run_compiled(model.graph(), &compiled).unwrap()
    });
}

fn bench_simulator_engine() {
    let device = DeviceSpec::oneplus_12();
    let mut stream = CommandStream::new();
    let mut prev = None;
    for i in 0..500 {
        let kernel = KernelDesc::new(
            &format!("k{i}"),
            KernelCategory::Reusable,
            1.0e9,
            4 << 20,
            2 << 20,
        )
        .with_launch(LaunchDims::new([512, 512, 1], [8, 8, 1]));
        let deps: Vec<usize> = prev.into_iter().collect();
        let t = stream.push(Command::transfer(
            &format!("t{i}"),
            4 << 20,
            MemoryTier::Disk,
            MemoryTier::UnifiedMemory,
            &deps,
        ));
        prev = Some(stream.push(Command::kernel(&format!("k{i}"), kernel, 0, &[t])));
    }
    group("simulator");
    bench("simulator_500_kernels_500_transfers", 20, || {
        let mut sim = GpuSimulator::new(device.clone(), SimConfig::default());
        sim.execute(&stream).unwrap()
    });
}

fn bench_kernel_cost_model() {
    let cost = KernelCostModel::new(DeviceSpec::oneplus_12());
    let kernel = KernelDesc::new("mm", KernelCategory::Reusable, 4.0e9, 16 << 20, 4 << 20)
        .with_launch(LaunchDims::new([1024, 1024, 1], [8, 8, 1]));
    group("cost_model");
    bench("kernel_capacity_bisection", 100, || {
        cost.max_extra_load_bytes(&kernel, 0.2)
    });
}

fn bench_gbrt_training() {
    let samples = KernelSampler::new(
        DeviceSpec::oneplus_12(),
        SamplingConfig {
            kernels: 30,
            ..Default::default()
        },
    )
    .collect();
    let features: Vec<Vec<f64>> = samples.iter().map(KernelSample::features).collect();
    let targets: Vec<f64> = samples.iter().map(|s| s.latency_ms).collect();
    let config = GbrtConfig {
        n_trees: 30,
        ..Default::default()
    };
    group("profiler");
    bench("gbrt_fit_150_samples", 10, || {
        GbrtModel::fit(&features, &targets, &config)
    });
}

fn main() {
    bench_solver_window();
    bench_lc_opg_plan();
    bench_end_to_end_run();
    bench_simulator_engine();
    bench_kernel_cost_model();
    bench_gbrt_training();
}
