//! Criterion micro-benchmarks for the building blocks: the CP solver on an
//! OPG window, the LC-OPG planner, the GPU simulator's command engine, the
//! kernel cost model and the GBRT regressor. These are the hot paths whose
//! cost determines offline planning time (Table 4) and simulation throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::time::Duration;

use flashmem_core::opg::greedy_hint;
use flashmem_core::{
    build_weight_window_model, CandidateSlot, FlashMem, FlashMemConfig, LcOpgSolver,
};
use flashmem_gpu_sim::engine::{Command, CommandStream, GpuSimulator, SimConfig};
use flashmem_gpu_sim::kernel::{KernelCategory, KernelCostModel, KernelDesc, LaunchDims};
use flashmem_gpu_sim::{DeviceSpec, MemoryTier};
use flashmem_graph::ModelZoo;
use flashmem_profiler::{GbrtConfig, GbrtModel, KernelSample, KernelSampler, SamplingConfig};
use flashmem_solver::{CpSolver, SolverConfig};

fn bench_solver_window(c: &mut Criterion) {
    let config = FlashMemConfig::memory_priority();
    let candidates: Vec<CandidateSlot> = (0..24)
        .map(|k| CandidateSlot {
            kernel: k,
            capacity_chunks: 8,
            memory_headroom_chunks: 64,
        })
        .collect();
    // Exactly the solve the LC-OPG planner issues per weight: a warm-started,
    // time-limited window model.
    let solver = CpSolver::with_config(SolverConfig::with_time_limit_ms(
        config.solver_time_limit_ms,
    ));
    let mut group = c.benchmark_group("solver");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    group.bench_function("opg_window_solve_24_candidates", |b| {
        b.iter(|| {
            let window = build_weight_window_model(25, 40, &candidates, &config);
            let hint = greedy_hint(&window);
            solver.solve_with_hint(&window.model, Some(&hint))
        })
    });
    group.finish();
}

fn bench_lc_opg_plan(c: &mut Criterion) {
    let graph = ModelZoo::gptneo_small().build();
    let solver = LcOpgSolver::new(DeviceSpec::oneplus_12(), FlashMemConfig::memory_priority());
    let mut group = c.benchmark_group("planner");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(10));
    group.bench_function("lc_opg_plan_gptneo_small", |b| b.iter(|| solver.plan(&graph)));
    group.finish();
}

fn bench_end_to_end_run(c: &mut Criterion) {
    let model = ModelZoo::vit();
    let runtime =
        FlashMem::new(DeviceSpec::oneplus_12()).with_config(FlashMemConfig::memory_priority());
    let compiled = runtime.compile(model.graph());
    let mut group = c.benchmark_group("runtime");
    group.sample_size(10);
    group.bench_function("flashmem_execute_vit_precompiled", |b| {
        b.iter(|| runtime.run_compiled(model.graph(), &compiled).unwrap())
    });
    group.finish();
}

fn bench_simulator_engine(c: &mut Criterion) {
    let device = DeviceSpec::oneplus_12();
    let mut stream = CommandStream::new();
    let mut prev = None;
    for i in 0..500 {
        let kernel = KernelDesc::new(
            &format!("k{i}"),
            KernelCategory::Reusable,
            1.0e9,
            4 << 20,
            2 << 20,
        )
        .with_launch(LaunchDims::new([512, 512, 1], [8, 8, 1]));
        let deps: Vec<usize> = prev.into_iter().collect();
        let t = stream.push(Command::transfer(
            &format!("t{i}"),
            4 << 20,
            MemoryTier::Disk,
            MemoryTier::UnifiedMemory,
            &deps,
        ));
        prev = Some(stream.push(Command::kernel(&format!("k{i}"), kernel, 0, &[t])));
    }
    let mut group = c.benchmark_group("simulator");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(5));
    group.bench_function("simulator_500_kernels_500_transfers", |b| {
        b.iter_batched(
            || GpuSimulator::new(device.clone(), SimConfig::default()),
            |mut sim| sim.execute(&stream).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_kernel_cost_model(c: &mut Criterion) {
    let cost = KernelCostModel::new(DeviceSpec::oneplus_12());
    let kernel = KernelDesc::new("mm", KernelCategory::Reusable, 4.0e9, 16 << 20, 4 << 20)
        .with_launch(LaunchDims::new([1024, 1024, 1], [8, 8, 1]));
    let mut group = c.benchmark_group("cost_model");
    group.measurement_time(Duration::from_secs(5));
    group.bench_function("kernel_capacity_bisection", |b| {
        b.iter(|| cost.max_extra_load_bytes(&kernel, 0.2))
    });
    group.finish();
}

fn bench_gbrt_training(c: &mut Criterion) {
    let samples = KernelSampler::new(
        DeviceSpec::oneplus_12(),
        SamplingConfig {
            kernels: 30,
            ..Default::default()
        },
    )
    .collect();
    let features: Vec<Vec<f64>> = samples.iter().map(KernelSample::features).collect();
    let targets: Vec<f64> = samples.iter().map(|s| s.latency_ms).collect();
    let config = GbrtConfig {
        n_trees: 30,
        ..Default::default()
    };
    let mut group = c.benchmark_group("profiler");
    group.sample_size(10);
    group.bench_function("gbrt_fit_150_samples", |b| {
        b.iter(|| GbrtModel::fit(&features, &targets, &config))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_solver_window,
    bench_lc_opg_plan,
    bench_end_to_end_run,
    bench_simulator_engine,
    bench_kernel_cost_model,
    bench_gbrt_training
);
criterion_main!(benches);
