//! Criterion benches: one bench per table/figure of the paper, running the
//! reduced (`quick`) variant of each experiment so `cargo bench` completes in
//! a reasonable time. The full tables are produced by the `src/bin/*`
//! binaries (or `--bin all`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use flashmem_bench::experiments::{
    fig10, fig2, fig4, fig6, fig7, fig8, fig9, table1, table4, table6, table7, table8, table9,
};

fn configure(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));
    group.warm_up_time(Duration::from_millis(500));
    group
}

fn bench_experiments(c: &mut Criterion) {
    let mut group = configure(c);
    group.bench_function("table1_motivation", |b| b.iter(|| table1::run(true)));
    group.bench_function("fig2_overlap_sensitivity", |b| b.iter(|| fig2::run(true)));
    group.bench_function("table4_solver_breakdown", |b| b.iter(|| table4::run(true)));
    group.bench_function("fig4_profiler_regression", |b| b.iter(|| fig4::run(true)));
    group.bench_function("table6_model_zoo", |b| b.iter(|| table6::run(true)));
    group.bench_function("table7_latency", |b| b.iter(|| table7::run(true)));
    group.bench_function("table8_memory", |b| b.iter(|| table8::run(true)));
    group.bench_function("table9_energy", |b| b.iter(|| table9::run(true)));
    group.bench_function("fig6_multi_model", |b| b.iter(|| fig6::run(true)));
    group.bench_function("fig7_breakdown", |b| b.iter(|| fig7::run(true)));
    group.bench_function("fig8_tradeoff", |b| b.iter(|| fig8::run(true)));
    group.bench_function("fig9_naive_overlap", |b| b.iter(|| fig9::run(true)));
    group.bench_function("fig10_portability", |b| b.iter(|| fig10::run(true)));
    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
