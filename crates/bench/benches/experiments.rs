//! Benches: one timing per table/figure of the paper, running the reduced
//! (`quick`) variant of each experiment so `cargo bench` completes in a
//! reasonable time. The full tables are produced by the `src/bin/*` binaries
//! (or `--bin all`).

use flashmem_bench::experiments::{
    fig10, fig2, fig4, fig6, fig7, fig8, fig9, table1, table4, table6, table7, table8, table9,
};
use flashmem_bench::timing::{bench, group};

fn main() {
    group("experiments");
    bench("table1_motivation", 3, || table1::run(true));
    bench("fig2_overlap_sensitivity", 3, || fig2::run(true));
    bench("table4_solver_breakdown", 3, || table4::run(true));
    bench("fig4_profiler_regression", 3, || fig4::run(true));
    bench("table6_model_zoo", 3, || table6::run(true));
    bench("table7_latency", 3, || table7::run(true));
    bench("table8_memory", 3, || table8::run(true));
    bench("table9_energy", 3, || table9::run(true));
    bench("fig6_multi_model", 3, || fig6::run(true));
    bench("fig7_breakdown", 3, || fig7::run(true));
    bench("fig8_tradeoff", 3, || fig8::run(true));
    bench("fig9_naive_overlap", 3, || fig9::run(true));
    bench("fig10_portability", 3, || fig10::run(true));
}
