//! A minimal hand-rolled JSON writer.
//!
//! The workspace's vendored `serde` stub is a no-op (this environment has no
//! registry access), so machine-readable bench output is produced by this
//! tiny value tree instead: experiments build a [`Json`] document and the
//! binaries write it next to their text tables so results can be diffed
//! across PRs. Emission is deterministic: object keys keep insertion order.

use std::io::Write as _;
use std::path::Path;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Non-finite values render as `null` (JSON has no NaN/Inf).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert a field (builder style; objects only — no-op otherwise).
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        if let Json::Obj(fields) = &mut self {
            fields.push((key.to_string(), value.into()));
        }
        self
    }

    /// An array from anything iterable over `Into<Json>`.
    pub fn array<T: Into<Json>>(items: impl IntoIterator<Item = T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }

    /// Pretty-print with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close_pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write_pretty(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&close_pad);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&close_pad);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.pretty())
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        match v {
            Some(v) => v.into(),
            None => Json::Null,
        }
    }
}

/// Write a JSON document to `path`, creating parent directories.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_json(path: &Path, json: &Json) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut file = std::fs::File::create(path)?;
    file.write_all(json.pretty().as_bytes())?;
    file.write_all(b"\n")
}

/// Parse a `--json <path>` or `--json=<path>` flag from a binary's argument
/// list, returning the requested output path.
pub fn json_path_from_args(args: &[String]) -> Option<std::path::PathBuf> {
    for (i, arg) in args.iter().enumerate() {
        if let Some(path) = arg.strip_prefix("--json=") {
            return Some(path.into());
        }
        if arg == "--json" {
            return args.get(i + 1).map(|p| p.into());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_valid_nested_json() {
        let doc = Json::obj()
            .field("name", "fig10")
            .field("ok", true)
            .field("missing", Json::Null)
            .field("speedup", 8.5)
            .field("cells", Json::array(vec![1.0, 2.5]))
            .field("nested", Json::obj().field("k", "v"));
        let text = doc.pretty();
        assert!(text.starts_with('{'));
        assert!(text.contains("\"name\": \"fig10\""));
        assert!(text.contains("\"ok\": true"));
        assert!(text.contains("\"missing\": null"));
        assert!(text.contains("\"speedup\": 8.5"));
        assert!(text.contains("\"cells\": [\n"));
        assert!(text.contains("\"k\": \"v\""));
    }

    #[test]
    fn escapes_strings_and_maps_nonfinite_to_null() {
        let doc = Json::obj()
            .field("quote", "say \"hi\"\n\tdone\\")
            .field("inf", f64::INFINITY)
            .field("nan", f64::NAN);
        let text = doc.pretty();
        assert!(text.contains("\\\"hi\\\""));
        assert!(text.contains("\\n\\tdone\\\\"));
        assert!(text.contains("\"inf\": null"));
        assert!(text.contains("\"nan\": null"));
    }

    #[test]
    fn option_and_empty_containers() {
        let none: Option<f64> = None;
        let doc = Json::obj()
            .field("maybe", none)
            .field("empty_arr", Json::Arr(Vec::new()))
            .field("empty_obj", Json::obj());
        let text = doc.pretty();
        assert!(text.contains("\"maybe\": null"));
        assert!(text.contains("\"empty_arr\": []"));
        assert!(text.contains("\"empty_obj\": {}"));
    }

    #[test]
    fn flag_parsing() {
        let args: Vec<String> = vec!["--quick".into(), "--json".into(), "out.json".into()];
        assert_eq!(
            json_path_from_args(&args).unwrap().to_str().unwrap(),
            "out.json"
        );
        let args: Vec<String> = vec!["--json=a/b.json".into()];
        assert_eq!(
            json_path_from_args(&args).unwrap().to_str().unwrap(),
            "a/b.json"
        );
        assert!(json_path_from_args(&["--quick".to_string()]).is_none());
    }

    #[test]
    fn write_creates_parent_directories() {
        let dir = std::env::temp_dir().join("flashmem-json-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.json");
        write_json(&path, &Json::obj().field("x", 1.0)).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"x\": 1"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
