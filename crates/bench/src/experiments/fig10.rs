//! Figure 10 — portability: FlashMem vs SmartMem on the OnePlus 11, Xiaomi
//! Mi 6 and Google Pixel 8. Preloading runs out of memory for GPT-Neo-1.3B on
//! the 6–8 GB devices (the empty bars); FlashMem runs everywhere.

use flashmem_baselines::{flashmem_engine, SmartMem};
use flashmem_core::EngineRegistry;
use flashmem_gpu_sim::DeviceSpec;
use flashmem_graph::{ModelSpec, ModelZoo};

use crate::harness::run_matrix;
use crate::table::TextTable;

/// Result of one (device, model) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct PortabilityCell {
    /// Device name.
    pub device: String,
    /// Model abbreviation.
    pub model: String,
    /// Latency speedup of FlashMem over SmartMem (None = SmartMem OOM/unsupported).
    pub latency_speedup: Option<f64>,
    /// Average-memory saving of FlashMem over SmartMem (None = SmartMem OOM).
    pub memory_saving: Option<f64>,
    /// True if SmartMem ran out of memory during initialization on this
    /// device (the paper's empty bars).
    pub smartmem_oom: bool,
    /// FlashMem's integrated latency on this device (ms); None only if even
    /// FlashMem cannot run the model.
    pub flashmem_ms: Option<f64>,
}

/// The Figure 10 result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10 {
    /// All (device × model) cells.
    pub cells: Vec<PortabilityCell>,
}

fn devices(quick: bool) -> Vec<DeviceSpec> {
    if quick {
        vec![DeviceSpec::xiaomi_mi_6()]
    } else {
        // The paper's portability devices plus the expanded fleet (Mali
        // mid-ranger, tablet, laptop iGPU) so the sweep covers a realistic
        // device population.
        vec![
            DeviceSpec::oneplus_11(),
            DeviceSpec::xiaomi_mi_6(),
            DeviceSpec::pixel_8(),
            DeviceSpec::galaxy_a54(),
            DeviceSpec::galaxy_tab_s9(),
            DeviceSpec::radeon_780m_laptop(),
        ]
    }
}

fn models(quick: bool) -> Vec<ModelSpec> {
    if quick {
        vec![ModelZoo::vit(), ModelZoo::gptneo_1_3b()]
    } else {
        vec![
            ModelZoo::sd_unet(),
            ModelZoo::gptneo_1_3b(),
            ModelZoo::vit(),
        ]
    }
}

/// Run the Figure 10 experiment.
pub fn run(quick: bool) -> Fig10 {
    let registry = EngineRegistry::new()
        .with(flashmem_engine())
        .with(Box::new(SmartMem::new()));
    let devices = devices(quick);
    let matrix = run_matrix(&registry, &models(quick), &devices);

    let mut cells = Vec::new();
    for device in &devices {
        for model in models(quick) {
            let ours = matrix.report_on("FlashMem", &model.abbr, &device.name);
            let theirs = matrix.report_on("SmartMem", &model.abbr, &device.name);
            let (latency_speedup, memory_saving) = match (ours, theirs) {
                (Some(o), Some(t)) => (
                    Some(t.integrated_latency_ms / o.integrated_latency_ms),
                    Some(t.average_memory_mb / o.average_memory_mb),
                ),
                _ => (None, None),
            };
            cells.push(PortabilityCell {
                device: device.name.clone(),
                model: model.abbr.clone(),
                latency_speedup,
                memory_saving,
                smartmem_oom: theirs.is_none(),
                flashmem_ms: ours.map(|o| o.integrated_latency_ms),
            });
        }
    }
    Fig10 { cells }
}

impl Fig10 {
    /// Machine-readable per-cell metrics.
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        let cells: Vec<Json> = self
            .cells
            .iter()
            .map(|c| {
                Json::obj()
                    .field("device", c.device.as_str())
                    .field("model", c.model.as_str())
                    .field("flashmem_ms", c.flashmem_ms)
                    .field("latency_speedup", c.latency_speedup)
                    .field("memory_saving", c.memory_saving)
                    .field("smartmem_oom", c.smartmem_oom)
            })
            .collect();
        Json::obj()
            .field("experiment", "fig10")
            .field("cells", Json::Arr(cells))
    }
}

impl std::fmt::Display for Fig10 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 10: FlashMem vs SmartMem across devices (empty = SmartMem out of memory)"
        )?;
        let mut t = TextTable::new(&[
            "Device",
            "Model",
            "FlashMem (ms)",
            "Latency speedup",
            "Memory saving",
            "SmartMem status",
        ]);
        for c in &self.cells {
            t.row(&[
                c.device.clone(),
                c.model.clone(),
                c.flashmem_ms
                    .map(|v| format!("{v:.0}"))
                    .unwrap_or_else(|| "–".into()),
                c.latency_speedup
                    .map(|v| format!("{v:.1}×"))
                    .unwrap_or_else(|| "–".into()),
                c.memory_saving
                    .map(|v| format!("{v:.1}×"))
                    .unwrap_or_else(|| "–".into()),
                if c.smartmem_oom {
                    "OOM".into()
                } else {
                    "ok".to_string()
                },
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gptneo_13b_ooms_for_smartmem_on_the_mi6_but_runs_on_flashmem() {
        let fig = run(true);
        let cell = fig
            .cells
            .iter()
            .find(|c| c.model == "GPTN-1.3B" && c.device.contains("Mi 6"))
            .expect("cell present");
        assert!(cell.smartmem_oom, "SmartMem should OOM on the 6 GB device");
        assert!(cell.flashmem_ms.is_some(), "FlashMem should still run");
    }

    #[test]
    fn flashmem_wins_wherever_both_run() {
        let fig = run(true);
        for cell in &fig.cells {
            if let Some(speedup) = cell.latency_speedup {
                assert!(
                    speedup > 1.0,
                    "{} on {}: {speedup}",
                    cell.model,
                    cell.device
                );
            }
            if let Some(saving) = cell.memory_saving {
                assert!(saving > 1.0);
            }
        }
    }
}
