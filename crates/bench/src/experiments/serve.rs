//! Serving benchmark — beyond the paper: multi-tenant traffic on a fleet of
//! simulated devices, sweeping arrival patterns × scheduling policies
//! (including the preemptive and the deadline-aware EDF / least-laxity /
//! deadline-preemptive ones) × fleet sizes and reporting tail latency
//! (p50/p95/p99, overall and per priority), SLO attainment under per-tenant
//! deadlines with a per-cause miss breakdown, admission laxity, preemption
//! counts, queue busy fractions and plan-cache hit rates.
//!
//! This is the "heavy traffic" regime the ROADMAP's north star asks for: the
//! same dual-queue overlap that hides load latency inside one inference is
//! time-shared across tenants by `flashmem-serve`'s event loop.

use std::sync::Arc;

use flashmem_core::pool::{self, ThreadPool};
use flashmem_core::{ArtifactCache, FlashMemConfig};
use flashmem_gpu_sim::DeviceSpec;
use flashmem_graph::{ModelSpec, ModelZoo};
use flashmem_serve::{
    AffinityPolicy, ArrivalPattern, DeadlinePreemptivePolicy, EdfPolicy, FifoPolicy, FleetTrace,
    LeastLaxityPolicy, PhaseBreakdown, PreemptivePriorityPolicy, PriorityPolicy, SchedulePolicy,
    ServeEngine, TraceConfig, WorkloadSpec,
};

use crate::fmt_ms;
use crate::json::Json;
use crate::table::TextTable;

/// One (pattern × policy × fleet-size) cell of the serving sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeCell {
    /// Arrival-pattern name.
    pub pattern: String,
    /// Scheduling-policy name.
    pub policy: String,
    /// Number of devices in the fleet.
    pub fleet: usize,
    /// Requests submitted.
    pub requests: usize,
    /// Requests completed.
    pub completed: usize,
    /// Median end-to-end latency (ms); `None` when the cell completed
    /// nothing (an empty sample has no percentiles — serialized as JSON
    /// null, never a fake 0.0).
    pub p50_ms: Option<f64>,
    /// 95th-percentile latency (ms), `None` when nothing completed.
    pub p95_ms: Option<f64>,
    /// 99th-percentile latency (ms), `None` when nothing completed.
    pub p99_ms: Option<f64>,
    /// Mean latency (ms), `None` when nothing completed.
    pub mean_ms: Option<f64>,
    /// Completed requests per simulated second.
    pub throughput_rps: f64,
    /// Transfer-queue busy fraction, averaged over the fleet.
    pub transfer_busy: f64,
    /// Compute-queue busy fraction, averaged over the fleet.
    pub compute_busy: f64,
    /// Plan-cache hit rate over the cell's run.
    pub cache_hit_rate: f64,
    /// Requests that carried an SLO deadline.
    pub slo_tracked: usize,
    /// Deadline-carrying requests that met their deadline.
    pub slo_met: usize,
    /// SLO attainment over the deadline-carrying requests, in `[0, 1]`.
    pub slo_attainment: f64,
    /// Deadline misses blamed on admission queueing.
    pub slo_missed_queue_wait: usize,
    /// Deadline misses blamed on service time alone.
    pub slo_missed_execution: usize,
    /// Deadline misses blamed on suspension/re-residency time.
    pub slo_missed_preemption: usize,
    /// Deadline misses from requests that failed outright.
    pub slo_missed_failed: usize,
    /// Mean admission-time laxity over the deadline-carrying requests (ms):
    /// deadline minus admission time minus predicted service time.
    pub mean_admission_laxity_ms: f64,
    /// Total preemptions across the cell's run (0 under non-preemptive
    /// policies).
    pub preemptions: usize,
    /// Per-priority latency percentiles: `(priority, completed, p50, p95,
    /// p99)` ascending by priority.
    pub per_priority: Vec<(u8, usize, f64, f64, f64)>,
    /// Per-request flight-recorder rows: where each request's end-to-end
    /// latency went, in completion order.
    pub outcomes: Vec<OutcomeRow>,
}

/// One request's phase-attributed outcome inside a [`ServeCell`]: the
/// [`PhaseBreakdown`] phases sum to `latency_ms` exactly (stall is the
/// residual), so the JSON rows reconcile against the cell's percentiles.
#[derive(Debug, Clone, PartialEq)]
pub struct OutcomeRow {
    /// Global request sequence number.
    pub seq: usize,
    /// Model abbreviation.
    pub model: String,
    /// Whether the request completed successfully.
    pub completed: bool,
    /// End-to-end latency (ms, simulated).
    pub latency_ms: f64,
    /// Where the latency went.
    pub phases: PhaseBreakdown,
}

/// The serving benchmark result.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBench {
    /// All sweep cells, pattern-major then policy then fleet size.
    pub cells: Vec<ServeCell>,
}

fn patterns(quick: bool) -> Vec<ArrivalPattern> {
    // Arrival gaps sit below the per-request service time on purpose: queues
    // build up, so scheduling policy (admission order, preemption) is what
    // separates the cells — an underloaded fleet makes every policy look
    // identical.
    let mut patterns = vec![
        ArrivalPattern::Steady { interval_ms: 150.0 },
        ArrivalPattern::Bursty {
            burst_size: 6,
            gap_ms: 1_200.0,
        },
    ];
    if !quick {
        patterns.push(ArrivalPattern::Poisson {
            mean_interval_ms: 250.0,
        });
    }
    patterns
}

/// A named policy constructor (policies are consumed per cell, so each cell
/// builds a fresh boxed instance — on whichever pool worker runs the cell,
/// hence the `Send + Sync` bound).
type PolicyFactory = Box<dyn Fn() -> Box<dyn SchedulePolicy> + Send + Sync>;

fn policies() -> Vec<(&'static str, PolicyFactory)> {
    vec![
        ("fifo", Box::new(|| Box::new(FifoPolicy) as _)),
        (
            "priority",
            Box::new(|| Box::new(PriorityPolicy::with_max_in_flight(2)) as _),
        ),
        (
            "affinity",
            Box::new(|| Box::new(AffinityPolicy::new()) as _),
        ),
        (
            // Single-slot on purpose: preemption is the exclusive-device
            // story (a long low-priority inference monopolizes the GPU until
            // a higher-priority arrival suspends it). With 2+ slots a free
            // slot almost always exists and nothing ever needs preempting.
            "preemptive",
            Box::new(|| Box::new(PreemptivePriorityPolicy::new()) as _),
        ),
        (
            "edf",
            Box::new(|| Box::new(EdfPolicy::with_max_in_flight(2)) as _),
        ),
        (
            "least_laxity",
            Box::new(|| Box::new(LeastLaxityPolicy::with_max_in_flight(2)) as _),
        ),
        (
            // Single-slot like the priority-preemptive cell, so the
            // laxity-triggered suspension actually has something to rescue.
            "deadline_preemptive",
            Box::new(|| Box::new(DeadlinePreemptivePolicy::new()) as _),
        ),
    ]
}

/// Per-tenant SLO deadlines for the sweep: latency-critical tenants get
/// tight budgets, background tenants loose ones, so attainment is a real
/// discriminator between preemptive and non-preemptive policies.
fn tenant_slo_ms(tenant: usize) -> f64 {
    match tenant {
        0 => 800.0,
        1 => 2_000.0,
        _ => 6_000.0,
    }
}

fn fleet_sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![1, 2]
    } else {
        vec![1, 2, 4]
    }
}

/// The serving fleet: flagship phone first, then the expanded device matrix
/// (tablet, laptop iGPU, Pixel) cycled up to `size` devices.
pub fn serving_fleet(size: usize) -> Vec<DeviceSpec> {
    let pool = [
        DeviceSpec::oneplus_12(),
        DeviceSpec::galaxy_tab_s9(),
        DeviceSpec::radeon_780m_laptop(),
        DeviceSpec::pixel_8(),
    ];
    (0..size.max(1))
        .map(|i| pool[i % pool.len()].clone())
        .collect()
}

fn serving_models(quick: bool) -> Vec<ModelSpec> {
    if quick {
        vec![ModelZoo::gptneo_small(), ModelZoo::vit()]
    } else {
        vec![
            ModelZoo::gptneo_small(),
            ModelZoo::vit(),
            ModelZoo::resnet50(),
            ModelZoo::depth_anything_small(),
        ]
    }
}

/// Run the serving sweep on the process-wide [`pool::global`] thread pool.
pub fn run(quick: bool) -> ServeBench {
    run_on(pool::global(), quick)
}

/// [`run`] on an explicit pool: each pattern × policy × fleet-size cell is
/// one pool job (every cell owns a fresh [`ArtifactCache`] and its own
/// seeded workload, so cells are fully independent), and the cells are
/// reassembled in deterministic sweep order — pattern-major, then policy,
/// then fleet size — so parallel output is byte-identical to `--threads 1`.
pub fn run_on(pool: &ThreadPool, quick: bool) -> ServeBench {
    let models = serving_models(quick);
    let request_count = if quick { 8 } else { 32 };
    let policies = policies();
    let mut specs: Vec<(ArrivalPattern, usize, usize)> = Vec::new();
    for pattern in patterns(quick) {
        for policy_index in 0..policies.len() {
            for fleet_size in fleet_sizes(quick) {
                specs.push((pattern, policy_index, fleet_size));
            }
        }
    }
    let cells = pool.parallel_map(specs, |(pattern, policy_index, fleet_size)| {
        let (policy_name, make_policy) = &policies[policy_index];
        let workload = WorkloadSpec {
            pattern,
            requests: request_count,
            tenants: 4,
            priority_levels: 3,
            seed: 0xF1A5_0000 + fleet_size as u64,
        };
        let requests = workload.generate(&models);
        // A fresh cache per cell so the reported hit rate reflects this
        // cell's traffic, not earlier sweep cells (it also makes the cells
        // embarrassingly parallel: no shared state, no cross-cell warmth).
        let cache = Arc::new(ArtifactCache::new());
        let mut engine =
            ServeEngine::new(serving_fleet(fleet_size), FlashMemConfig::memory_priority())
                .with_policy(make_policy())
                .with_cache(Arc::clone(&cache));
        for tenant in 0..workload.tenants {
            engine = engine.with_tenant_slo(format!("tenant-{tenant}"), tenant_slo_ms(tenant));
        }
        let report = engine.run(&requests).expect("serving sweep runs");
        let fleet_len = report.devices.len() as f64;
        ServeCell {
            pattern: pattern.name().to_string(),
            policy: policy_name.to_string(),
            fleet: fleet_size,
            requests: report.outcomes.len(),
            completed: report.completed(),
            p50_ms: report.latency.map(|l| l.p50_ms),
            p95_ms: report.latency.map(|l| l.p95_ms),
            p99_ms: report.latency.map(|l| l.p99_ms),
            mean_ms: report.latency.map(|l| l.mean_ms),
            throughput_rps: report.throughput_rps,
            transfer_busy: report
                .devices
                .iter()
                .map(|d| d.transfer_busy_fraction)
                .sum::<f64>()
                / fleet_len,
            compute_busy: report
                .devices
                .iter()
                .map(|d| d.compute_busy_fraction)
                .sum::<f64>()
                / fleet_len,
            cache_hit_rate: report.cache.hit_rate(),
            slo_tracked: report.slo.tracked,
            slo_met: report.slo.met,
            slo_attainment: report.slo.attainment(),
            slo_missed_queue_wait: report.slo.missed_queue_wait,
            slo_missed_execution: report.slo.missed_execution,
            slo_missed_preemption: report.slo.missed_preemption,
            slo_missed_failed: report.slo.missed_failed,
            mean_admission_laxity_ms: report.mean_admission_laxity_ms(),
            preemptions: report.preemptions,
            per_priority: report
                .per_priority
                .iter()
                .map(|p| {
                    (
                        p.priority,
                        p.completed,
                        p.latency.p50_ms,
                        p.latency.p95_ms,
                        p.latency.p99_ms,
                    )
                })
                .collect(),
            outcomes: report
                .outcomes
                .iter()
                .map(|o| OutcomeRow {
                    seq: o.seq,
                    model: o.model.clone(),
                    completed: o.succeeded(),
                    latency_ms: o.latency_ms,
                    phases: o.phases,
                })
                .collect(),
        }
    });
    ServeBench { cells }
}

/// One representative sweep cell — bursty arrivals, the priority policy, a
/// two-device fleet — re-run with event tracing enabled: the
/// [`FleetTrace`] behind the serve binary's `--trace-out` flag. Round-robin
/// placement over the fleet guarantees every device records events. The
/// trace is stamped with simulated time only, so the export is
/// byte-identical at every pool width.
pub fn traced_showcase(quick: bool) -> FleetTrace {
    let fleet_size = 2;
    let workload = WorkloadSpec {
        pattern: ArrivalPattern::Bursty {
            burst_size: 6,
            gap_ms: 1_200.0,
        },
        requests: if quick { 8 } else { 32 },
        tenants: 4,
        priority_levels: 3,
        seed: 0xF1A5_0000 + fleet_size as u64,
    };
    let requests = workload.generate(&serving_models(quick));
    let mut engine = ServeEngine::new(serving_fleet(fleet_size), FlashMemConfig::memory_priority())
        .with_policy(Box::new(PriorityPolicy::with_max_in_flight(2)))
        .with_cache(Arc::new(ArtifactCache::new()))
        .with_trace(TraceConfig::enabled());
    for tenant in 0..workload.tenants {
        engine = engine.with_tenant_slo(format!("tenant-{tenant}"), tenant_slo_ms(tenant));
    }
    let report = engine.run(&requests).expect("traced serve showcase runs");
    report.trace.expect("tracing was enabled")
}

impl ServeBench {
    /// Machine-readable per-cell metrics.
    pub fn to_json(&self) -> Json {
        let cells: Vec<Json> = self
            .cells
            .iter()
            .map(|c| {
                let per_priority: Vec<Json> = c
                    .per_priority
                    .iter()
                    .map(|(priority, completed, p50, p95, p99)| {
                        Json::obj()
                            .field("priority", u64::from(*priority))
                            .field("completed", *completed)
                            .field("p50_ms", *p50)
                            .field("p95_ms", *p95)
                            .field("p99_ms", *p99)
                    })
                    .collect();
                let outcomes: Vec<Json> = c
                    .outcomes
                    .iter()
                    .map(|o| {
                        Json::obj()
                            .field("seq", o.seq)
                            .field("model", o.model.as_str())
                            .field("completed", o.completed)
                            .field("latency_ms", o.latency_ms)
                            .field("queue_ms", o.phases.queue_ms)
                            .field("compile_ms", o.phases.compile_ms)
                            .field("transfer_ms", o.phases.transfer_ms)
                            .field("compute_ms", o.phases.compute_ms)
                            .field("suspended_ms", o.phases.suspended_ms)
                            .field("stall_ms", o.phases.stall_ms)
                    })
                    .collect();
                Json::obj()
                    .field("pattern", c.pattern.as_str())
                    .field("policy", c.policy.as_str())
                    .field("fleet", c.fleet)
                    .field("requests", c.requests)
                    .field("completed", c.completed)
                    .field("p50_ms", c.p50_ms)
                    .field("p95_ms", c.p95_ms)
                    .field("p99_ms", c.p99_ms)
                    .field("mean_ms", c.mean_ms)
                    .field("throughput_rps", c.throughput_rps)
                    .field("transfer_busy_fraction", c.transfer_busy)
                    .field("compute_busy_fraction", c.compute_busy)
                    .field("cache_hit_rate", c.cache_hit_rate)
                    .field("slo_tracked", c.slo_tracked)
                    .field("slo_met", c.slo_met)
                    .field("slo_attainment", c.slo_attainment)
                    .field("slo_missed_queue_wait", c.slo_missed_queue_wait)
                    .field("slo_missed_execution", c.slo_missed_execution)
                    .field("slo_missed_preemption", c.slo_missed_preemption)
                    .field("slo_missed_failed", c.slo_missed_failed)
                    .field("mean_admission_laxity_ms", c.mean_admission_laxity_ms)
                    .field("preemptions", c.preemptions)
                    .field("per_priority", Json::Arr(per_priority))
                    .field("outcomes", Json::Arr(outcomes))
            })
            .collect();
        Json::obj()
            .field("experiment", "serve")
            .field("cells", Json::Arr(cells))
    }
}

impl std::fmt::Display for ServeBench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Serving sweep: arrival pattern × policy × fleet size (latencies in ms)"
        )?;
        let mut t = TextTable::new(&[
            "Pattern",
            "Policy",
            "Fleet",
            "Done",
            "p50",
            "p95",
            "p99",
            "Mean",
            "Req/s",
            "Load busy",
            "Compute busy",
            "Cache hits",
            "SLO",
            "Laxity",
            "Preempt",
        ]);
        for c in &self.cells {
            t.row(&[
                c.pattern.clone(),
                c.policy.clone(),
                format!("{}", c.fleet),
                format!("{}/{}", c.completed, c.requests),
                fmt_ms(c.p50_ms),
                fmt_ms(c.p95_ms),
                fmt_ms(c.p99_ms),
                fmt_ms(c.mean_ms),
                format!("{:.2}", c.throughput_rps),
                format!("{:.0}%", 100.0 * c.transfer_busy),
                format!("{:.0}%", 100.0 * c.compute_busy),
                format!("{:.0}%", 100.0 * c.cache_hit_rate),
                format!("{:.0}%", 100.0 * c.slo_attainment),
                format!("{:.0}", c.mean_admission_laxity_ms),
                format!("{}", c.preemptions),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The quick sweep computed once and shared: every test below asserts
    /// on the same deterministic cells, and the sweep itself (28 cells of
    /// cold-cache compiles) is the expensive part. Pinned to a 1-wide pool —
    /// the exact serial code path — so these oracles define the reference
    /// the parallel sweep is compared against.
    fn quick_bench() -> &'static ServeBench {
        static BENCH: std::sync::OnceLock<ServeBench> = std::sync::OnceLock::new();
        BENCH.get_or_init(|| run_on(&ThreadPool::with_threads(1), true))
    }

    #[test]
    fn parallel_sweep_is_byte_identical_to_serial() {
        let parallel = run_on(&ThreadPool::with_threads(4), true);
        let serial = quick_bench();
        assert_eq!(&parallel, serial);
        assert_eq!(
            parallel.to_json().pretty(),
            serial.to_json().pretty(),
            "parallel serve sweep diverged from the serial sweep"
        );
    }

    #[test]
    fn quick_sweep_covers_every_policy_and_completes() {
        let bench = quick_bench();
        // 2 patterns × 7 policies × 2 fleet sizes.
        assert_eq!(bench.cells.len(), 28);
        for cell in &bench.cells {
            assert_eq!(cell.completed, cell.requests, "{cell:?}");
            assert!(cell.p50_ms.unwrap() <= cell.p95_ms.unwrap());
            assert!(cell.p95_ms.unwrap() <= cell.p99_ms.unwrap());
            assert!(cell.throughput_rps > 0.0);
            // Few distinct models, many requests: the plan cache must hit.
            assert!(cell.cache_hit_rate > 0.0, "{cell:?}");
            // Every tenant has an SLO default, so every request is tracked.
            assert_eq!(cell.slo_tracked, cell.requests, "{cell:?}");
            assert!(cell.slo_attainment >= 0.0 && cell.slo_attainment <= 1.0);
            assert!(cell.slo_met <= cell.slo_tracked, "{cell:?}");
            // Every miss is attributed to exactly one cause.
            let missed = cell.slo_tracked - cell.slo_met;
            assert_eq!(
                cell.slo_missed_queue_wait
                    + cell.slo_missed_execution
                    + cell.slo_missed_preemption
                    + cell.slo_missed_failed,
                missed,
                "{cell:?}"
            );
            // Per-priority rows cover every completed request.
            let per_priority_total: usize =
                cell.per_priority.iter().map(|(_, done, ..)| done).sum();
            assert_eq!(per_priority_total, cell.completed, "{cell:?}");
            // Only the preemptive policies ever preempt.
            if cell.policy != "preemptive" && cell.policy != "deadline_preemptive" {
                assert_eq!(cell.preemptions, 0, "{cell:?}");
                assert_eq!(cell.slo_missed_preemption, 0, "{cell:?}");
            }
        }
        let policies: std::collections::BTreeSet<&str> =
            bench.cells.iter().map(|c| c.policy.as_str()).collect();
        assert_eq!(policies.len(), 7);
        assert!(policies.contains("edf") && policies.contains("least_laxity"));
        // Bursty single-device traffic is the regime preemption exists for:
        // at least one preemptive cell must actually preempt.
        assert!(
            bench
                .cells
                .iter()
                .any(|c| c.policy == "preemptive" && c.preemptions > 0),
            "no preemptive cell preempted"
        );
    }

    #[test]
    fn deadline_policies_track_laxity_and_hold_their_own_on_slo() {
        let bench = quick_bench();
        // Deadline-aware admission reasons against per-request laxity; the
        // sweep must surface it (non-zero for at least one cell — every
        // tenant carries an SLO, so laxity is always tracked).
        assert!(
            bench
                .cells
                .iter()
                .filter(|c| c.policy == "least_laxity")
                .any(|c| c.mean_admission_laxity_ms != 0.0),
            "least-laxity cells must report admission laxity"
        );
        // Aggregate SLO attainment: EDF must not lose to FIFO overall (it
        // reorders admission purely toward deadlines).
        let total_met = |policy: &str| -> usize {
            bench
                .cells
                .iter()
                .filter(|c| c.policy == policy)
                .map(|c| c.slo_met)
                .sum()
        };
        assert!(
            total_met("edf") >= total_met("fifo"),
            "edf {} vs fifo {}",
            total_met("edf"),
            total_met("fifo")
        );
    }

    #[test]
    fn larger_fleets_do_not_hurt_tail_latency_under_bursts() {
        let bench = quick_bench();
        let p99 = |policy: &str, fleet: usize| {
            bench
                .cells
                .iter()
                .find(|c| c.pattern == "bursty" && c.policy == policy && c.fleet == fleet)
                .and_then(|c| c.p99_ms)
                .expect("cell present")
        };
        // Doubling the fleet under bursty traffic must not make the tail
        // worse for the round-robin policies.
        assert!(p99("fifo", 2) <= p99("fifo", 1) * 1.05);
        assert!(p99("priority", 2) <= p99("priority", 1) * 1.05);
    }

    #[test]
    fn json_output_has_per_cell_metrics() {
        let bench = quick_bench();
        let json = bench.to_json().pretty();
        assert!(json.contains("\"experiment\": \"serve\""));
        assert!(json.contains("\"p99_ms\""));
        assert!(json.contains("\"cache_hit_rate\""));
        assert!(json.contains("\"policy\": \"affinity\""));
        // The SLO/preemption fields ride along in every cell.
        assert!(json.contains("\"policy\": \"preemptive\""));
        assert!(json.contains("\"slo_attainment\""));
        assert!(json.contains("\"preemptions\""));
        assert!(json.contains("\"per_priority\""));
        // The deadline-aware policies and their laxity/miss-cause fields.
        assert!(json.contains("\"policy\": \"edf\""));
        assert!(json.contains("\"policy\": \"least_laxity\""));
        assert!(json.contains("\"policy\": \"deadline_preemptive\""));
        assert!(json.contains("\"slo_missed_queue_wait\""));
        assert!(json.contains("\"slo_missed_execution\""));
        assert!(json.contains("\"slo_missed_preemption\""));
        assert!(json.contains("\"slo_missed_failed\""));
        assert!(json.contains("\"mean_admission_laxity_ms\""));
        // Per-request flight-recorder rows with the phase breakdown.
        assert!(json.contains("\"outcomes\""));
        assert!(json.contains("\"queue_ms\""));
        assert!(json.contains("\"compute_ms\""));
        assert!(json.contains("\"suspended_ms\""));
        assert!(json.contains("\"stall_ms\""));
    }

    #[test]
    fn every_outcome_phase_breakdown_sums_to_its_latency() {
        let bench = quick_bench();
        for cell in &bench.cells {
            assert_eq!(cell.outcomes.len(), cell.requests, "{cell:?}");
            for o in &cell.outcomes {
                assert!(
                    (o.phases.total_ms() - o.latency_ms).abs() < 1e-6,
                    "phases {:?} do not sum to latency {} ({}/{}/fleet {})",
                    o.phases,
                    o.latency_ms,
                    cell.pattern,
                    cell.policy,
                    cell.fleet
                );
                assert!(o.phases.queue_ms >= 0.0, "{o:?}");
                assert!(o.phases.compute_ms >= 0.0, "{o:?}");
                assert!(o.phases.transfer_ms >= 0.0, "{o:?}");
                assert!(o.phases.suspended_ms >= 0.0, "{o:?}");
            }
            // The busy phases are real: completed requests spend time on
            // the compute queue.
            assert!(
                cell.outcomes
                    .iter()
                    .filter(|o| o.completed)
                    .all(|o| o.phases.compute_ms > 0.0),
                "{cell:?}"
            );
        }
    }

    #[test]
    fn traced_showcase_records_events_on_every_device() {
        let trace = traced_showcase(true);
        assert_eq!(trace.processes.len(), 2);
        for process in &trace.processes {
            assert!(
                !process.events.is_empty(),
                "{} recorded nothing",
                process.name
            );
        }
        assert_eq!(trace.dropped_events(), 0);
        let json = flashmem_serve::chrome_trace(&trace);
        assert!(json.starts_with('{'));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"process_name\""));
    }
}
