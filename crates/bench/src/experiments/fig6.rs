//! Figure 6 — multi-model FIFO support: memory usage over time when several
//! distinct models execute back to back, FlashMem (with a manual 1.5 GB cap)
//! versus an MNN-style preloading framework.

use flashmem_baselines::{FrameworkProfile, PreloadFramework};
use flashmem_core::{EngineRegistry, FlashMemConfig};
use flashmem_gpu_sim::trace::MemoryTrace;
use flashmem_gpu_sim::DeviceSpec;
use flashmem_graph::{ModelSpec, ModelZoo};
use flashmem_serve::MultiModelRunner;

use crate::json::Json;

use crate::harness::run_matrix;

/// A resampled memory-over-time series for one runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct MemorySeries {
    /// Runtime label ("FlashMem" / "MNN").
    pub runtime: String,
    /// Total wall-clock of the workload in milliseconds.
    pub total_latency_ms: f64,
    /// Peak memory in MB.
    pub peak_memory_mb: f64,
    /// `(time ms, memory MB)` samples.
    pub samples: Vec<(f64, f64)>,
}

/// The Figure 6 result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6 {
    /// The model sequence executed per iteration.
    pub queue: Vec<String>,
    /// Number of interleaved iterations.
    pub iterations: usize,
    /// FlashMem's series (1.5 GB cap).
    pub flashmem: MemorySeries,
    /// The MNN-style preloading series.
    pub mnn: MemorySeries,
}

fn queue(quick: bool) -> Vec<ModelSpec> {
    if quick {
        vec![ModelZoo::vit(), ModelZoo::gptneo_small()]
    } else {
        vec![
            ModelZoo::depth_anything_small(),
            ModelZoo::sd_unet(),
            ModelZoo::vit(),
            ModelZoo::gptneo_1_3b(),
            ModelZoo::whisper_medium(),
        ]
    }
}

fn resample(trace: &MemoryTrace, points: usize) -> Vec<(f64, f64)> {
    trace
        .resample(points)
        .into_iter()
        .map(|s| (s.time_ms, s.bytes as f64 / (1024.0 * 1024.0)))
        .collect()
}

/// Run the Figure 6 experiment.
pub fn run(quick: bool) -> Fig6 {
    let device = DeviceSpec::oneplus_12();
    let models = queue(quick);
    let iterations = if quick { 1 } else { 2 };
    let points = if quick { 50 } else { 200 };

    // FlashMem under the paper's manual 1.5 GB constraint.
    let runner = MultiModelRunner::new(device.clone(), FlashMemConfig::memory_priority())
        .with_memory_cap_bytes(1_536 * 1024 * 1024);
    let flash = runner
        .run_fifo(&models, iterations)
        .expect("FlashMem fits the 1.5 GB cap");
    let flashmem = MemorySeries {
        runtime: "FlashMem".to_string(),
        total_latency_ms: flash.total_latency_ms,
        peak_memory_mb: flash.peak_memory_mb,
        samples: resample(&flash.memory_trace, points),
    };

    // MNN-style FIFO: each model is fully preloaded, executed and evicted.
    // The per-invocation reports come from the shared matrix harness
    // (unsupported models are simply absent); the FIFO stitching is the only
    // experiment-specific part.
    let registry =
        EngineRegistry::new().with(Box::new(PreloadFramework::new(FrameworkProfile::mnn())));
    let matrix = run_matrix(&registry, &models, std::slice::from_ref(&device));
    let mut stitched = MemoryTrace::new();
    let mut clock = 0.0;
    let mut peak: f64 = 0.0;
    for _ in 0..iterations {
        for model in &models {
            if let Some(report) = matrix.report("MNN", &model.abbr) {
                stitched.append_shifted(&report.memory_trace, clock);
                clock += report.integrated_latency_ms;
                stitched.record(clock, 0);
                peak = peak.max(report.peak_memory_mb);
            }
        }
    }
    let mnn = MemorySeries {
        runtime: "MNN".to_string(),
        total_latency_ms: clock,
        peak_memory_mb: peak,
        samples: resample(&stitched, points),
    };

    Fig6 {
        queue: models.iter().map(|m| m.abbr.clone()).collect(),
        iterations,
        flashmem,
        mnn,
    }
}

impl Fig6 {
    /// Machine-readable series (one `(t, MB)` pair per resampled point).
    pub fn to_json(&self) -> Json {
        let series = |s: &MemorySeries| {
            Json::obj()
                .field("runtime", s.runtime.as_str())
                .field("total_latency_ms", s.total_latency_ms)
                .field("peak_memory_mb", s.peak_memory_mb)
                .field(
                    "samples",
                    Json::Arr(
                        s.samples
                            .iter()
                            .map(|(t, mb)| Json::array(vec![*t, *mb]))
                            .collect(),
                    ),
                )
        };
        Json::obj()
            .field("experiment", "fig6")
            .field("queue", Json::array(self.queue.iter().map(String::as_str)))
            .field("iterations", self.iterations)
            .field("flashmem", series(&self.flashmem))
            .field("mnn", series(&self.mnn))
    }
}

impl std::fmt::Display for Fig6 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 6: multi-model FIFO memory usage over time ({} iterations of {:?})",
            self.iterations, self.queue
        )?;
        for series in [&self.flashmem, &self.mnn] {
            writeln!(
                f,
                "{}: total {:.0} ms, peak {:.0} MB",
                series.runtime, series.total_latency_ms, series.peak_memory_mb
            )?;
            write!(f, "  t(ms)/MB:")?;
            for (t, mb) in series.samples.iter().step_by(5) {
                write!(f, " {t:.0}/{mb:.0}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flashmem_peak_stays_under_the_cap_and_below_mnn() {
        let fig = run(true);
        assert!(fig.flashmem.peak_memory_mb <= 1_537.0);
        assert!(fig.flashmem.peak_memory_mb < fig.mnn.peak_memory_mb);
        assert!(fig.flashmem.total_latency_ms < fig.mnn.total_latency_ms);
        assert!(!fig.flashmem.samples.is_empty());
        assert!(!fig.mnn.samples.is_empty());
    }

    #[test]
    fn memory_returns_to_zero_between_models() {
        let fig = run(true);
        let zeros = fig
            .flashmem
            .samples
            .iter()
            .filter(|(_, mb)| *mb < 1.0)
            .count();
        assert!(zeros > 0, "expected idle points between models");
    }
}
