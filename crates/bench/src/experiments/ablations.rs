//! Ablation sweeps over FlashMem's own design choices — the knobs DESIGN.md
//! calls out: the chunk size `S`, the preload/distance balance `λ`, the
//! adaptive-fusion gain threshold `α` and the rolling-window length. These are
//! not paper figures; they document how sensitive the reproduction is to each
//! choice (and they are cheap regression guards for the planner).

use flashmem_core::{EngineRegistry, FlashMemConfig, FlashMemVariant};
use flashmem_gpu_sim::DeviceSpec;
use flashmem_graph::{ModelSpec, ModelZoo};

use crate::harness::run_matrix;
use crate::table::TextTable;

/// One ablation point.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationPoint {
    /// Which knob was varied.
    pub knob: String,
    /// The knob's value (stringified).
    pub value: String,
    /// Resulting streamed fraction of weight bytes.
    pub streamed_fraction: f64,
    /// Resulting integrated latency in ms.
    pub integrated_ms: f64,
    /// Resulting average memory in MB.
    pub average_memory_mb: f64,
}

/// The full ablation sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct Ablations {
    /// The model the sweep ran on.
    pub model: String,
    /// All points, grouped by knob.
    pub points: Vec<AblationPoint>,
}

fn model(quick: bool) -> ModelSpec {
    if quick {
        ModelZoo::gptneo_small()
    } else {
        ModelZoo::vit()
    }
}

/// Build the `(knob, value, config)` sweep grid.
fn sweep(quick: bool) -> Vec<(String, String, FlashMemConfig)> {
    let mut grid = Vec::new();

    // Chunk size S.
    let chunk_sizes: &[u64] = if quick {
        &[64 * 1024, 256 * 1024, 1024 * 1024]
    } else {
        &[64 * 1024, 128 * 1024, 256 * 1024, 512 * 1024, 1024 * 1024]
    };
    for &s in chunk_sizes {
        grid.push((
            "chunk_bytes".to_string(),
            format!("{} KiB", s / 1024),
            FlashMemConfig::memory_priority().with_chunk_bytes(s),
        ));
    }

    // λ (preload penalty weight).
    let lambdas: &[f64] = if quick {
        &[0.1, 0.9]
    } else {
        &[0.1, 0.3, 0.5, 0.7, 0.9]
    };
    for &l in lambdas {
        grid.push((
            "lambda".to_string(),
            format!("{l:.1}"),
            FlashMemConfig::memory_priority().with_lambda(l),
        ));
    }

    // α (fusion split threshold).
    let alphas: &[f64] = if quick {
        &[0.0, 1.0]
    } else {
        &[0.0, 0.25, 0.5, 1.0, 4.0]
    };
    for &a in alphas {
        grid.push((
            "alpha".to_string(),
            format!("{a:.2}"),
            FlashMemConfig::memory_priority().with_alpha(a),
        ));
    }

    // Rolling-window length.
    let windows: &[usize] = if quick {
        &[8, 32]
    } else {
        &[8, 16, 32, 64, 128]
    };
    for &w in windows {
        grid.push((
            "window".to_string(),
            format!("{w}"),
            FlashMemConfig::memory_priority().with_window(w),
        ));
    }
    grid
}

/// Run the ablation sweeps.
pub fn run(quick: bool) -> Ablations {
    let model = model(quick);
    let grid = sweep(quick);

    // One FlashMem variant per grid point, labelled `knob=value`, swept
    // through the shared matrix harness like any other engine line-up.
    let mut registry = EngineRegistry::new();
    for (knob, value, config) in &grid {
        registry.register(Box::new(FlashMemVariant::new(
            format!("{knob}={value}"),
            config.clone(),
        )));
    }
    let matrix = run_matrix(
        &registry,
        std::slice::from_ref(&model),
        &[DeviceSpec::oneplus_12()],
    );

    let points = grid
        .iter()
        .filter_map(|(knob, value, _)| {
            let report = matrix.report(&format!("{knob}={value}"), &model.abbr)?;
            Some(AblationPoint {
                knob: knob.clone(),
                value: value.clone(),
                streamed_fraction: report.streamed_weight_fraction,
                integrated_ms: report.integrated_latency_ms,
                average_memory_mb: report.average_memory_mb,
            })
        })
        .collect();

    Ablations {
        model: model.abbr.clone(),
        points,
    }
}

impl std::fmt::Display for Ablations {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Ablation sweeps on {} (design-choice sensitivity)",
            self.model
        )?;
        let mut t = TextTable::new(&[
            "Knob",
            "Value",
            "Streamed (%)",
            "Integrated (ms)",
            "Avg memory (MB)",
        ]);
        for p in &self.points {
            t.row(&[
                p.knob.clone(),
                p.value.clone(),
                format!("{:.1}", p.streamed_fraction * 100.0),
                format!("{:.0}", p.integrated_ms),
                format!("{:.0}", p.average_memory_mb),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_sweep_produces_points_for_every_knob() {
        let result = run(true);
        for knob in ["chunk_bytes", "lambda", "alpha", "window"] {
            assert!(
                result.points.iter().any(|p| p.knob == knob),
                "missing knob {knob}"
            );
        }
        // Every configuration still executes and streams something.
        for p in &result.points {
            assert!(p.integrated_ms > 0.0);
            assert!(p.streamed_fraction > 0.0, "{} = {}", p.knob, p.value);
        }
    }

    #[test]
    fn tiny_windows_stream_no_more_than_large_windows() {
        let result = run(true);
        let windows: Vec<&AblationPoint> = result
            .points
            .iter()
            .filter(|p| p.knob == "window")
            .collect();
        assert!(windows.len() >= 2);
        let small = windows.first().unwrap();
        let large = windows.last().unwrap();
        assert!(small.streamed_fraction <= large.streamed_fraction + 0.05);
    }
}
