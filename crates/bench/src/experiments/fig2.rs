//! Figure 2 — latency increase of representative operators when additional
//! weight data is streamed concurrently, as a function of the extra volume
//! relative to the kernel's own input.

use flashmem_gpu_sim::DeviceSpec;
use flashmem_graph::{ModelZoo, OpKind};
use flashmem_profiler::{kernel_for_node, overlap_sweep, LoweringOptions, OverlapPoint};

use crate::table::TextTable;

/// The interference curve of one operator.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorCurve {
    /// Operator label as used in the figure.
    pub operator: String,
    /// Sweep points (ratio, latency increase).
    pub points: Vec<OverlapPoint>,
}

impl OperatorCurve {
    /// Extra-volume ratio at which the relative latency increase first
    /// exceeds `threshold` (e.g. 0.2 for the 20% marker), if any.
    pub fn threshold_crossing(&self, threshold: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.relative_increase > threshold)
            .map(|p| p.extra_ratio)
    }
}

/// The Figure 2 result: one curve per representative operator.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2 {
    /// Curves in legend order (MatMul, Attention, ElementWise, LayerNorm, Softmax).
    pub curves: Vec<OperatorCurve>,
}

/// Run the Figure 2 experiment.
pub fn run(quick: bool) -> Fig2 {
    let device = DeviceSpec::oneplus_12();
    let model = ModelZoo::gptneo_small();
    let graph = model.graph();
    let options = LoweringOptions::texture_framework();
    let steps = if quick { 4 } else { 16 };

    let representatives: [(&str, OpKind); 5] = [
        ("Matmul", OpKind::MatMul),
        ("Attention", OpKind::Softmax), // attention's score path is softmax-bound
        ("ElementWise-Ops", OpKind::GeLU),
        ("LayerNorm", OpKind::LayerNorm),
        ("SoftMax", OpKind::Softmax),
    ];

    let curves = representatives
        .iter()
        .map(|(label, kind)| {
            let node = graph
                .nodes()
                .iter()
                .find(|n| n.kind == *kind && n.macs > 0)
                .expect("representative operator present in GPT-Neo");
            let kernel = kernel_for_node(graph, node, &options);
            OperatorCurve {
                operator: label.to_string(),
                points: overlap_sweep(&device, &kernel, 2.0, steps),
            }
        })
        .collect();
    Fig2 { curves }
}

impl std::fmt::Display for Fig2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 2: latency increase (ms) vs additional data volume ratio"
        )?;
        let mut header: Vec<String> = vec!["Ratio".to_string()];
        header.extend(self.curves.iter().map(|c| c.operator.clone()));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut t = TextTable::new(&header_refs);
        if let Some(first) = self.curves.first() {
            for (i, point) in first.points.iter().enumerate() {
                let mut row = vec![format!("{:.2}", point.extra_ratio)];
                for c in &self.curves {
                    row.push(format!("{:.3}", c.points[i].latency_increase_ms));
                }
                t.row(&row);
            }
        }
        writeln!(f, "{t}")?;
        writeln!(f, "20%/30% threshold crossings (extra-volume ratio):")?;
        for c in &self.curves {
            writeln!(
                f,
                "  {:<16} 20%: {:<8} 30%: {}",
                c.operator,
                c.threshold_crossing(0.2)
                    .map(|r| format!("{r:.2}"))
                    .unwrap_or_else(|| ">2.0".into()),
                c.threshold_crossing(0.3)
                    .map(|r| format!("{r:.2}"))
                    .unwrap_or_else(|| ">2.0".into()),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_2_orderings_hold() {
        let fig = run(true);
        assert_eq!(fig.curves.len(), 5);
        let find = |name: &str| fig.curves.iter().find(|c| c.operator == name).unwrap();
        let matmul = find("Matmul");
        let layernorm = find("LayerNorm");
        let elementwise = find("ElementWise-Ops");
        // Hierarchical ops cross the 20% threshold before reusable ops; the
        // element-wise curve stays almost flat in absolute terms.
        let ln_cross = layernorm.threshold_crossing(0.2).unwrap_or(10.0);
        let mm_cross = matmul.threshold_crossing(0.2).unwrap_or(10.0);
        assert!(ln_cross <= mm_cross);
        let ew_increase = elementwise.points.last().unwrap().latency_increase_ms;
        assert!(ew_increase < 0.5, "element-wise increase {ew_increase} ms");
        // Curves are monotone in the extra ratio.
        for c in &fig.curves {
            for pair in c.points.windows(2) {
                assert!(pair[1].latency_increase_ms >= pair[0].latency_increase_ms - 1e-9);
            }
        }
    }

    #[test]
    fn display_prints_all_operators() {
        let text = run(true).to_string();
        for label in ["Matmul", "LayerNorm", "SoftMax", "ElementWise-Ops"] {
            assert!(text.contains(label));
        }
    }
}
