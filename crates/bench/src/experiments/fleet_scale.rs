//! Fleet-scale serving benchmark — beyond the paper: how far one
//! `ServeEngine::run` can ramp a simulated device fleet now that independent
//! device timelines advance concurrently on the work-stealing pool.
//!
//! Each cell serves a flash-crowd workload (tight bursts of arrivals, two
//! requests per device) on a fleet of 8 → 64 → 256 → 1024 devices, **twice**:
//! once pinned to a width-1 pool (the exact serial loop, the byte-identity
//! reference) and once on the process-wide pool. The cell records both wall
//! clocks, the fleet-parallel speedup, the per-device step wall-clock, and
//! whether the two `ServeReport`s were byte-identical — which they must be,
//! by the placement → parallel stepping → ordered merge design.
//!
//! This experiment is intentionally **not** part of `bin/all`: there it
//! would run inside a pool worker, the nested fleet fan-out would go inline,
//! and the measured "speedup" would be a tautological 1×. Run it standalone:
//!
//! `cargo run --release -p flashmem-bench --bin fleet_scale [-- --quick] [--threads N] [--json PATH]`

use std::sync::Arc;
use std::time::Instant;

use flashmem_core::pool::{self, ThreadPool};
use flashmem_core::{ArtifactCache, FlashMemConfig};
use flashmem_graph::{ModelSpec, ModelZoo};
use flashmem_serve::{
    ArrivalPattern, FleetTrace, ServeEngine, ServeReport, TraceConfig, WorkloadSpec,
};

use crate::experiments::serve::serving_fleet;
use crate::fmt_ms;
use crate::json::Json;
use crate::table::TextTable;

/// One fleet-size cell of the ramp.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetScaleCell {
    /// Devices in the fleet.
    pub fleet: usize,
    /// Requests submitted (two per device, flash-crowd arrivals).
    pub requests: usize,
    /// Requests completed.
    pub completed: usize,
    /// Simulated fleet makespan (ms).
    pub makespan_ms: f64,
    /// Median end-to-end latency (ms, simulated); `None` (JSON `null`) when
    /// no request completed.
    pub p50_ms: Option<f64>,
    /// 99th-percentile latency (ms, simulated); `None` when no request
    /// completed.
    pub p99_ms: Option<f64>,
    /// Completed requests per simulated second.
    pub throughput_rps: f64,
    /// True when the parallel report was byte-identical to the serial one
    /// (always expected; recorded so CI can grep for regressions).
    pub identical: bool,
    /// Wall-clock of the width-1 (serial) fleet run, in ms.
    pub serial_ms: f64,
    /// Wall-clock of the pool-parallel fleet run, in ms.
    pub parallel_ms: f64,
    /// Fleet-parallel speedup: `serial_ms / parallel_ms`.
    pub speedup: f64,
    /// Mean wall-clock spent stepping one device timeline in the parallel
    /// run: `parallel_ms / fleet`.
    pub per_device_step_ms: f64,
}

/// The fleet-scale ramp result.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetScale {
    /// Pool width the parallel runs used.
    pub threads: usize,
    /// One cell per fleet size, ascending.
    pub cells: Vec<FleetScaleCell>,
}

fn fleet_sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![8, 32]
    } else {
        vec![8, 64, 256, 1024]
    }
}

fn models(quick: bool) -> Vec<ModelSpec> {
    if quick {
        vec![ModelZoo::vit()]
    } else {
        vec![ModelZoo::gptneo_small(), ModelZoo::vit()]
    }
}

/// A flash crowd: arrivals land in tight bursts far faster than one device
/// drains, so every timeline has real queueing to schedule through.
fn flash_crowd(fleet: usize, models: &[ModelSpec]) -> Vec<flashmem_serve::ServeRequest> {
    WorkloadSpec {
        pattern: ArrivalPattern::Bursty {
            burst_size: 16,
            gap_ms: 400.0,
        },
        requests: 2 * fleet,
        tenants: 4,
        priority_levels: 3,
        seed: 0xF1EE_5CA1 + fleet as u64,
    }
    .generate(models)
}

/// One timed fleet run on `pool` with a fresh engine and plan cache (fresh so
/// the serial and parallel runs see identical cache-counter telemetry).
fn timed_run(
    pool: &ThreadPool,
    fleet: usize,
    requests: &[flashmem_serve::ServeRequest],
) -> (ServeReport, f64) {
    let engine = ServeEngine::new(serving_fleet(fleet), FlashMemConfig::memory_priority())
        .with_cache(Arc::new(ArtifactCache::new()))
        .with_tenant_slo("tenant-0", 1_500.0)
        .with_tenant_slo("tenant-1", 4_000.0);
    let start = Instant::now();
    let report = engine.run_on(pool, requests).expect("fleet-scale run");
    (report, start.elapsed().as_secs_f64() * 1e3)
}

/// Run the ramp with parallel cells on the process-wide [`pool::global`].
pub fn run(quick: bool) -> FleetScale {
    run_on(pool::global(), quick)
}

/// The smallest ramp cell re-run with event tracing enabled — the
/// [`FleetTrace`] behind the fleet-scale binary's `--trace-out` flag. The
/// flash crowd places two requests on every device (round-robin), so each
/// of the 8 device processes records events; simulated-time stamps keep
/// the export byte-identical at every pool width.
pub fn traced_showcase(quick: bool) -> FleetTrace {
    let models = models(quick);
    let fleet = fleet_sizes(quick)[0];
    let requests = flash_crowd(fleet, &models);
    let engine = ServeEngine::new(serving_fleet(fleet), FlashMemConfig::memory_priority())
        .with_cache(Arc::new(ArtifactCache::new()))
        .with_tenant_slo("tenant-0", 1_500.0)
        .with_tenant_slo("tenant-1", 4_000.0)
        .with_trace(TraceConfig::enabled());
    let report = engine.run(&requests).expect("traced fleet-scale run");
    report.trace.expect("tracing was enabled")
}

/// [`run`] with an explicit pool for the parallel runs. The ramp itself is
/// sequential on purpose — the fleet fan-out *inside* each run is the thing
/// being measured, and it only parallelizes at top level (nested pool calls
/// run inline).
pub fn run_on(pool: &ThreadPool, quick: bool) -> FleetScale {
    let models = models(quick);
    let serial_pool = ThreadPool::with_threads(1);
    let cells = fleet_sizes(quick)
        .into_iter()
        .map(|fleet| {
            let requests = flash_crowd(fleet, &models);
            let (serial, serial_ms) = timed_run(&serial_pool, fleet, &requests);
            let (parallel, parallel_ms) = timed_run(pool, fleet, &requests);
            let identical = format!("{serial:?}") == format!("{parallel:?}");
            FleetScaleCell {
                fleet,
                requests: requests.len(),
                completed: serial.completed(),
                makespan_ms: serial.makespan_ms(),
                p50_ms: serial.latency.map(|l| l.p50_ms),
                p99_ms: serial.latency.map(|l| l.p99_ms),
                throughput_rps: serial.throughput_rps,
                identical,
                serial_ms,
                parallel_ms,
                speedup: if parallel_ms > 0.0 {
                    serial_ms / parallel_ms
                } else {
                    1.0
                },
                per_device_step_ms: parallel_ms / fleet as f64,
            }
        })
        .collect();
    FleetScale {
        threads: pool.threads(),
        cells,
    }
}

impl FleetScale {
    /// Machine-readable per-cell metrics. The `serial_ms` / `parallel_ms` /
    /// `speedup` / `per_device_step_ms` fields are wall-clock telemetry and
    /// therefore schedule-dependent; `scripts/diff-bench-json.sh` strips them
    /// (alongside `elapsed_ms`/`threads`) before demanding byte-identity.
    pub fn to_json(&self) -> Json {
        let cells: Vec<Json> = self
            .cells
            .iter()
            .map(|c| {
                Json::obj()
                    .field("fleet", c.fleet)
                    .field("requests", c.requests)
                    .field("completed", c.completed)
                    .field("makespan_ms", c.makespan_ms)
                    .field("p50_ms", c.p50_ms)
                    .field("p99_ms", c.p99_ms)
                    .field("throughput_rps", c.throughput_rps)
                    .field("identical_to_serial", c.identical)
                    .field("serial_ms", c.serial_ms)
                    .field("parallel_ms", c.parallel_ms)
                    .field("speedup", c.speedup)
                    .field("per_device_step_ms", c.per_device_step_ms)
            })
            .collect();
        Json::obj()
            .field("experiment", "fleet_scale")
            .field("cells", Json::Arr(cells))
    }
}

impl std::fmt::Display for FleetScale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fleet-scale ramp under flash-crowd arrivals ({} pool thread{}; wall clocks in ms)",
            self.threads,
            if self.threads == 1 { "" } else { "s" }
        )?;
        let mut t = TextTable::new(&[
            "Fleet",
            "Done",
            "Makespan",
            "p50",
            "p99",
            "Req/s",
            "Serial",
            "Parallel",
            "Speedup",
            "ms/device",
            "Identical",
        ]);
        for c in &self.cells {
            t.row(&[
                format!("{}", c.fleet),
                format!("{}/{}", c.completed, c.requests),
                format!("{:.0}", c.makespan_ms),
                fmt_ms(c.p50_ms),
                fmt_ms(c.p99_ms),
                format!("{:.2}", c.throughput_rps),
                format!("{:.0}", c.serial_ms),
                format!("{:.0}", c.parallel_ms),
                format!("{:.2}×", c.speedup),
                format!("{:.2}", c.per_device_step_ms),
                format!("{}", c.identical),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_ramp_completes_and_parallel_matches_serial() {
        let bench = run_on(&ThreadPool::with_threads(4), true);
        assert_eq!(bench.cells.len(), 2);
        for cell in &bench.cells {
            assert_eq!(cell.requests, 2 * cell.fleet);
            assert_eq!(cell.completed, cell.requests, "{cell:?}");
            assert!(cell.identical, "parallel fleet diverged: {cell:?}");
            assert!(cell.makespan_ms > 0.0);
            assert!(cell.throughput_rps > 0.0);
            assert!(cell.serial_ms > 0.0 && cell.parallel_ms > 0.0);
            assert!(cell.per_device_step_ms <= cell.parallel_ms);
        }
        // The ramp ascends.
        assert!(bench.cells[0].fleet < bench.cells[1].fleet);
    }

    #[test]
    fn traced_showcase_covers_the_whole_fleet() {
        let trace = traced_showcase(true);
        assert_eq!(trace.processes.len(), 8);
        for process in &trace.processes {
            assert!(
                !process.events.is_empty(),
                "{} recorded nothing",
                process.name
            );
        }
    }

    #[test]
    fn json_carries_the_per_device_wall_clock_fields() {
        let bench = run_on(&ThreadPool::with_threads(2), true);
        let json = bench.to_json().pretty();
        assert!(json.contains("\"experiment\": \"fleet_scale\""));
        assert!(json.contains("\"fleet\": 8"));
        assert!(json.contains("\"serial_ms\""));
        assert!(json.contains("\"parallel_ms\""));
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"per_device_step_ms\""));
        assert!(json.contains("\"identical_to_serial\": true"));
    }
}
