//! Table 8 — average memory consumption comparison and the memory-reduction
//! factor over SmartMem (Mem-ReDT), plus geo-mean reductions per framework.

use flashmem_core::{geo_mean, FrameworkKind};
use flashmem_gpu_sim::DeviceSpec;

use crate::harness::{comparison_registry, run_matrix};
use crate::table::TextTable;
use crate::{evaluated_models, fmt_ms, fmt_ratio};

/// One row (model) of Table 8.
#[derive(Debug, Clone, PartialEq)]
pub struct Table8Row {
    /// Model abbreviation.
    pub model: String,
    /// Average memory per baseline framework in MB (None = unsupported).
    pub baselines: Vec<(String, Option<f64>)>,
    /// FlashMem's average memory in MB.
    pub flashmem_mb: f64,
    /// Memory reduction over SmartMem ("Mem-ReDT").
    pub reduction_vs_smartmem: Option<f64>,
}

/// The full Table 8.
#[derive(Debug, Clone, PartialEq)]
pub struct Table8 {
    /// Rows in model order.
    pub rows: Vec<Table8Row>,
    /// Geo-mean memory reduction of FlashMem over each framework.
    pub geo_mean_reductions: Vec<(String, f64)>,
}

/// Run the Table 8 experiment.
pub fn run(quick: bool) -> Table8 {
    let models = evaluated_models(quick);
    let matrix = run_matrix(&comparison_registry(), &models, &[DeviceSpec::oneplus_12()]);
    let mut rows = Vec::new();
    let mut per_framework: Vec<(String, Vec<f64>)> = Vec::new();

    for model in &models {
        let ours = matrix
            .report("FlashMem", &model.abbr)
            .expect("FlashMem runs every model");
        let mut cells = Vec::new();
        let mut reduction_vs_smartmem = None;
        for cell in matrix
            .cells_for_model(&model.abbr)
            .filter(|c| c.kind != FrameworkKind::FlashMem)
        {
            let mb = cell.report.as_ref().map(|r| r.average_memory_mb);
            cells.push((cell.engine.clone(), mb));
            if let Some(mb) = mb {
                let ratio = mb / ours.average_memory_mb;
                match per_framework.iter_mut().find(|(n, _)| *n == cell.engine) {
                    Some((_, v)) => v.push(ratio),
                    None => per_framework.push((cell.engine.clone(), vec![ratio])),
                }
                if cell.kind == FrameworkKind::SmartMem {
                    reduction_vs_smartmem = Some(ratio);
                }
            }
        }
        rows.push(Table8Row {
            model: model.abbr.clone(),
            baselines: cells,
            flashmem_mb: ours.average_memory_mb,
            reduction_vs_smartmem,
        });
    }

    Table8 {
        rows,
        geo_mean_reductions: per_framework
            .into_iter()
            .map(|(name, ratios)| (name, geo_mean(&ratios)))
            .collect(),
    }
}

impl Table8 {
    /// Machine-readable per-cell metrics.
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|row| {
                let baselines: Vec<Json> = row
                    .baselines
                    .iter()
                    .map(|(name, mb)| {
                        Json::obj()
                            .field("framework", name.as_str())
                            .field("average_memory_mb", *mb)
                    })
                    .collect();
                Json::obj()
                    .field("model", row.model.as_str())
                    .field("baselines", Json::Arr(baselines))
                    .field("flashmem_mb", row.flashmem_mb)
                    .field("reduction_vs_smartmem", row.reduction_vs_smartmem)
            })
            .collect();
        let geo: Vec<Json> = self
            .geo_mean_reductions
            .iter()
            .map(|(name, ratio)| {
                Json::obj()
                    .field("framework", name.as_str())
                    .field("geo_mean_reduction", *ratio)
            })
            .collect();
        Json::obj()
            .field("experiment", "table8")
            .field("rows", Json::Arr(rows))
            .field("geo_mean_reductions", Json::Arr(geo))
    }
}

impl std::fmt::Display for Table8 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Table 8: average memory consumption (MB)")?;
        let mut header = vec!["Model".to_string()];
        if let Some(first) = self.rows.first() {
            for (name, _) in &first.baselines {
                header.push(name.clone());
            }
        }
        header.push("FlashMem".to_string());
        header.push("Mem-ReDT".to_string());
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut t = TextTable::new(&header_refs);
        for row in &self.rows {
            let mut cells = vec![row.model.clone()];
            for (_, mb) in &row.baselines {
                cells.push(fmt_ms(*mb));
            }
            cells.push(format!("{:.0}", row.flashmem_mb));
            cells.push(fmt_ratio(row.reduction_vs_smartmem));
            t.row(&cells);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "Geo-mean memory reduction of FlashMem over each framework:"
        )?;
        for (name, ratio) in &self.geo_mean_reductions {
            writeln!(f, "  {name:<12} {ratio:.1}×")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flashmem_uses_the_least_memory_on_every_supported_cell() {
        let table = run(true);
        for row in &table.rows {
            for (name, mb) in &row.baselines {
                if let Some(mb) = mb {
                    assert!(
                        *mb > row.flashmem_mb,
                        "{name} on {}: {mb} MB vs FlashMem {} MB",
                        row.model,
                        row.flashmem_mb
                    );
                }
            }
            if let Some(r) = row.reduction_vs_smartmem {
                assert!(r > 1.0);
            }
        }
        for (name, ratio) in &table.geo_mean_reductions {
            assert!(*ratio > 1.0, "{name}: {ratio}");
        }
    }

    #[test]
    fn transformer_models_see_larger_reductions_than_resnet() {
        // Paper: ViT sees ~4.7× reduction over SmartMem, ResNet only ~1.7×,
        // because convolution weight transforms cannot be streamed.
        let table = run(true);
        let get = |abbr: &str| {
            table
                .rows
                .iter()
                .find(|r| r.model == abbr)
                .and_then(|r| r.reduction_vs_smartmem)
                .unwrap()
        };
        assert!(
            get("ViT") > get("ResNet"),
            "ViT {} vs ResNet {}",
            get("ViT"),
            get("ResNet")
        );
    }
}
