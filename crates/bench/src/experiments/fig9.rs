//! Figure 9 — FlashMem versus the naive overlap strategies (Always-Next
//! Loading and Same-Op-Type Prefetching).

use flashmem_baselines::{flashmem_engine, NaiveOverlap};
use flashmem_core::EngineRegistry;
use flashmem_gpu_sim::DeviceSpec;
use flashmem_graph::{ModelSpec, ModelZoo};

use crate::harness::run_matrix;
use crate::table::TextTable;

/// Speedups of FlashMem over the two strawmen for one model.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9Row {
    /// Model abbreviation.
    pub model: String,
    /// FlashMem's integrated latency in ms.
    pub flashmem_ms: f64,
    /// Speedup over Same-Op-Type Prefetching.
    pub speedup_vs_same_op: f64,
    /// Speedup over Always-Next Loading.
    pub speedup_vs_always_next: f64,
}

/// The Figure 9 result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9 {
    /// Rows in figure order.
    pub rows: Vec<Fig9Row>,
}

fn models(quick: bool) -> Vec<ModelSpec> {
    if quick {
        vec![ModelZoo::gptneo_small(), ModelZoo::resnet50()]
    } else {
        vec![
            ModelZoo::gptneo_1_3b(),
            ModelZoo::resnet50(),
            ModelZoo::sam2(),
            ModelZoo::deepvit(),
            ModelZoo::sd_unet(),
            ModelZoo::depth_anything_large(),
        ]
    }
}

/// Run the Figure 9 experiment.
pub fn run(quick: bool) -> Fig9 {
    let registry = EngineRegistry::new()
        .with(flashmem_engine())
        .with(Box::new(NaiveOverlap::always_next()))
        .with(Box::new(NaiveOverlap::same_op_type()));
    let models = models(quick);
    let matrix = run_matrix(&registry, &models, &[DeviceSpec::oneplus_12()]);
    let rows = models
        .iter()
        .map(|model| {
            let ours = matrix
                .report("FlashMem", &model.abbr)
                .expect("FlashMem runs every model");
            let an = matrix
                .report("Always-Next", &model.abbr)
                .expect("Always-Next runs every model");
            let so = matrix
                .report("Same-Op-Type", &model.abbr)
                .expect("Same-Op-Type runs every model");
            Fig9Row {
                model: model.abbr.clone(),
                flashmem_ms: ours.integrated_latency_ms,
                speedup_vs_same_op: so.integrated_latency_ms / ours.integrated_latency_ms,
                speedup_vs_always_next: an.integrated_latency_ms / ours.integrated_latency_ms,
            }
        })
        .collect();
    Fig9 { rows }
}

impl std::fmt::Display for Fig9 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 9: speedup of FlashMem over naive overlap strategies"
        )?;
        let mut t = TextTable::new(&[
            "Model",
            "FlashMem (ms)",
            "Speedup vs SameNext",
            "Speedup vs Always-Next",
        ]);
        for r in &self.rows {
            t.row(&[
                r.model.clone(),
                format!("{:.0}", r.flashmem_ms),
                format!("{:.2}×", r.speedup_vs_same_op),
                format!("{:.2}×", r.speedup_vs_always_next),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flashmem_beats_both_naive_strategies() {
        let fig = run(true);
        assert_eq!(fig.rows.len(), 2);
        for r in &fig.rows {
            assert!(
                r.speedup_vs_same_op > 1.0,
                "{}: {}",
                r.model,
                r.speedup_vs_same_op
            );
            assert!(
                r.speedup_vs_always_next > 1.0,
                "{}: {}",
                r.model,
                r.speedup_vs_always_next
            );
            // Always-Next is the worse of the two (up to 4.3× in the paper).
            assert!(r.speedup_vs_always_next >= 0.9 * r.speedup_vs_same_op);
        }
    }

    #[test]
    fn display_lists_all_models() {
        let text = run(true).to_string();
        assert!(text.contains("GPTN-S"));
        assert!(text.contains("ResNet"));
    }
}
