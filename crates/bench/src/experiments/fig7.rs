//! Figure 7 — breakdown of FlashMem's optimizations: cumulative speedup and
//! memory reduction over SmartMem when enabling the OPG solver, adaptive
//! fusion and kernel rewriting one after another.

use flashmem_baselines::SmartMem;
use flashmem_core::{EngineRegistry, FlashMemConfig, FlashMemVariant, InferenceEngine};
use flashmem_gpu_sim::DeviceSpec;
use flashmem_graph::{ModelSpec, ModelZoo};

use crate::harness::run_matrix;
use crate::table::TextTable;

/// Cumulative contribution of one optimization stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageContribution {
    /// Stage label ("OPG-Solver", "Adaptive Fusion", "Kernel Rewriting").
    pub stage: String,
    /// Cumulative speedup over SmartMem after enabling this stage.
    pub speedup: f64,
    /// Cumulative memory reduction over SmartMem after enabling this stage.
    pub memory_reduction: f64,
}

/// The per-model breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelBreakdown {
    /// Model abbreviation.
    pub model: String,
    /// Cumulative contributions in stage order.
    pub stages: Vec<StageContribution>,
}

/// The Figure 7 result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7 {
    /// One breakdown per representative model.
    pub models: Vec<ModelBreakdown>,
}

fn models(quick: bool) -> Vec<ModelSpec> {
    if quick {
        vec![ModelZoo::vit()]
    } else {
        vec![
            ModelZoo::vit(),
            ModelZoo::sd_unet(),
            ModelZoo::gptneo_1_3b(),
        ]
    }
}

/// The cumulative optimization stages, in paper order.
const STAGES: [&str; 3] = ["OPG-Solver", "Adaptive Fusion", "Kernel Rewriting"];

fn stage_config(stage: &str) -> FlashMemConfig {
    match stage {
        "OPG-Solver" => FlashMemConfig::memory_priority()
            .with_adaptive_fusion(false)
            .with_kernel_rewriting(false),
        "Adaptive Fusion" => FlashMemConfig::memory_priority().with_kernel_rewriting(false),
        _ => FlashMemConfig::memory_priority(),
    }
}

/// Run the Figure 7 experiment.
pub fn run(quick: bool) -> Fig7 {
    let smartmem = SmartMem::new();
    let mut registry = EngineRegistry::new().with(Box::new(SmartMem::new()));
    for stage in STAGES {
        registry.register(Box::new(FlashMemVariant::new(stage, stage_config(stage))));
    }
    let models = models(quick);
    let matrix = run_matrix(&registry, &models, &[DeviceSpec::oneplus_12()]);

    let breakdowns = models
        .iter()
        // Models SmartMem declares unsupported are skipped quietly; a
        // *failed* run on a supported model is a broken baseline and panics.
        .filter(|model| smartmem.supports(model))
        .map(|model| {
            let reference = matrix
                .report("SmartMem", &model.abbr)
                .expect("SmartMem runs the breakdown models");
            let stages = STAGES
                .iter()
                .map(|stage| {
                    let ours = matrix
                        .report(stage, &model.abbr)
                        .expect("FlashMem runs the breakdown models");
                    StageContribution {
                        stage: stage.to_string(),
                        speedup: reference.integrated_latency_ms / ours.integrated_latency_ms,
                        memory_reduction: reference.average_memory_mb / ours.average_memory_mb,
                    }
                })
                .collect();
            ModelBreakdown {
                model: model.abbr.clone(),
                stages,
            }
        })
        .collect();
    Fig7 { models: breakdowns }
}

impl std::fmt::Display for Fig7 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 7: cumulative speedup / memory reduction over SmartMem"
        )?;
        let mut t = TextTable::new(&["Model", "Stage", "Speedup", "Memory reduction"]);
        for model in &self.models {
            for stage in &model.stages {
                t.row(&[
                    model.model.clone(),
                    stage.stage.clone(),
                    format!("{:.2}×", stage.speedup),
                    format!("{:.2}×", stage.memory_reduction),
                ]);
            }
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_stage_improves_or_preserves_the_previous_one() {
        let fig = run(true);
        assert_eq!(fig.models.len(), 1);
        let stages = &fig.models[0].stages;
        assert_eq!(stages.len(), 3);
        // OPG alone already beats SmartMem on both axes (the paper reports
        // 5.3–8.1× speedup and 2.1–3.8× memory from OPG alone).
        assert!(stages[0].speedup > 1.0);
        assert!(stages[0].memory_reduction > 1.0);
        // Adding fusion and rewriting never hurts latency materially.
        assert!(stages[1].speedup >= 0.95 * stages[0].speedup);
        assert!(stages[2].speedup >= 0.95 * stages[1].speedup);
        // The full stack delivers the largest speedup.
        assert!(stages[2].speedup >= stages[0].speedup);
    }

    #[test]
    fn display_lists_all_three_stages() {
        let text = run(true).to_string();
        for s in ["OPG-Solver", "Adaptive Fusion", "Kernel Rewriting"] {
            assert!(text.contains(s));
        }
    }
}
