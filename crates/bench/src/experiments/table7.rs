//! Table 7 — end-to-end latency comparison across frameworks.
//!
//! For each evaluated model the table reports the initialization and
//! execution latency of every preloading baseline, the integrated latency of
//! FlashMem, and the speedups of FlashMem over SmartMem (the research
//! prototype) and over the best of the remaining frameworks, plus geo-means.

use flashmem_core::{geo_mean, ExecutionReport, FrameworkKind};
use flashmem_gpu_sim::DeviceSpec;

use crate::harness::{comparison_registry, run_matrix};
use crate::table::TextTable;
use crate::{evaluated_models, fmt_ms, fmt_ratio};

/// Per-framework latency cell.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyCell {
    /// Framework name.
    pub framework: String,
    /// Initialization latency (ms), if the framework runs the model.
    pub init_ms: Option<f64>,
    /// Execution latency (ms), if the framework runs the model.
    pub exec_ms: Option<f64>,
}

impl LatencyCell {
    /// Integrated (init + exec) latency if available.
    pub fn integrated_ms(&self) -> Option<f64> {
        match (self.init_ms, self.exec_ms) {
            (Some(i), Some(e)) => Some(i + e),
            _ => None,
        }
    }
}

/// One row (model) of Table 7.
#[derive(Debug, Clone, PartialEq)]
pub struct Table7Row {
    /// Model abbreviation.
    pub model: String,
    /// Baseline cells in Table 7 column order.
    pub baselines: Vec<LatencyCell>,
    /// FlashMem's integrated latency in ms.
    pub flashmem_ms: f64,
    /// Speedup over SmartMem.
    pub speedup_vs_smartmem: Option<f64>,
    /// Speedup over the other (commercial) frameworks (best of them).
    pub speedup_vs_others: Option<f64>,
}

/// The full Table 7.
#[derive(Debug, Clone, PartialEq)]
pub struct Table7 {
    /// Rows in model order.
    pub rows: Vec<Table7Row>,
    /// Geo-mean speedup of FlashMem over each baseline framework (name, ×).
    pub geo_mean_speedups: Vec<(String, f64)>,
}

/// Run the Table 7 experiment.
pub fn run(quick: bool) -> Table7 {
    let models = evaluated_models(quick);
    let matrix = run_matrix(&comparison_registry(), &models, &[DeviceSpec::oneplus_12()]);

    let mut rows = Vec::new();
    let mut per_framework_ratios: Vec<(String, Vec<f64>)> = Vec::new();
    for model in &models {
        let ours = matrix
            .report("FlashMem", &model.abbr)
            .expect("FlashMem supports every evaluated model on the flagship");
        let baselines: Vec<&crate::MatrixCell> = matrix
            .cells_for_model(&model.abbr)
            .filter(|c| c.kind != FrameworkKind::FlashMem)
            .collect();
        let mut cells = Vec::new();
        for cell in &baselines {
            cells.push(LatencyCell {
                framework: cell.engine.clone(),
                init_ms: cell.report.as_ref().map(|r| r.init_latency_ms),
                exec_ms: cell.report.as_ref().map(|r| r.exec_latency_ms),
            });
            if let Some(r) = &cell.report {
                let ratio = r.integrated_latency_ms / ours.integrated_latency_ms;
                match per_framework_ratios
                    .iter_mut()
                    .find(|(n, _)| *n == cell.engine)
                {
                    Some((_, v)) => v.push(ratio),
                    None => per_framework_ratios.push((cell.engine.clone(), vec![ratio])),
                }
            }
        }
        let speedup = |report: Option<&ExecutionReport>| {
            report.map(|r| r.integrated_latency_ms / ours.integrated_latency_ms)
        };
        let smartmem = baselines
            .iter()
            .find(|c| c.kind == FrameworkKind::SmartMem)
            .and_then(|c| c.report.as_ref());
        let best_other = baselines
            .iter()
            .filter(|c| c.kind != FrameworkKind::SmartMem)
            .filter_map(|c| c.report.as_ref())
            .min_by(|a, b| {
                a.integrated_latency_ms
                    .partial_cmp(&b.integrated_latency_ms)
                    .unwrap()
            });
        rows.push(Table7Row {
            model: model.abbr.clone(),
            baselines: cells,
            flashmem_ms: ours.integrated_latency_ms,
            speedup_vs_smartmem: speedup(smartmem),
            speedup_vs_others: speedup(best_other),
        });
    }

    let geo_mean_speedups = per_framework_ratios
        .into_iter()
        .map(|(name, ratios)| (name, geo_mean(&ratios)))
        .collect();

    Table7 {
        rows,
        geo_mean_speedups,
    }
}

impl Table7 {
    /// Machine-readable per-cell metrics.
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|row| {
                let baselines: Vec<Json> = row
                    .baselines
                    .iter()
                    .map(|c| {
                        Json::obj()
                            .field("framework", c.framework.as_str())
                            .field("init_ms", c.init_ms)
                            .field("exec_ms", c.exec_ms)
                            .field("integrated_ms", c.integrated_ms())
                    })
                    .collect();
                Json::obj()
                    .field("model", row.model.as_str())
                    .field("baselines", Json::Arr(baselines))
                    .field("flashmem_ms", row.flashmem_ms)
                    .field("speedup_vs_smartmem", row.speedup_vs_smartmem)
                    .field("speedup_vs_others", row.speedup_vs_others)
            })
            .collect();
        let geo: Vec<Json> = self
            .geo_mean_speedups
            .iter()
            .map(|(name, ratio)| {
                Json::obj()
                    .field("framework", name.as_str())
                    .field("geo_mean_speedup", *ratio)
            })
            .collect();
        Json::obj()
            .field("experiment", "table7")
            .field("rows", Json::Arr(rows))
            .field("geo_mean_speedups", Json::Arr(geo))
    }
}

impl std::fmt::Display for Table7 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Table 7: end-to-end latency (ms); '–' = model unsupported by the framework"
        )?;
        let mut header = vec!["Model".to_string()];
        if let Some(first) = self.rows.first() {
            for cell in &first.baselines {
                header.push(format!("{} init", cell.framework));
                header.push(format!("{} exec", cell.framework));
            }
        }
        header.push("FlashMem (integrated)".to_string());
        header.push("Speedup vs SMem".to_string());
        header.push("Speedup vs others".to_string());
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut t = TextTable::new(&header_refs);
        for row in &self.rows {
            let mut cells = vec![row.model.clone()];
            for cell in &row.baselines {
                cells.push(fmt_ms(cell.init_ms));
                cells.push(fmt_ms(cell.exec_ms));
            }
            cells.push(format!("{:.0}", row.flashmem_ms));
            cells.push(fmt_ratio(row.speedup_vs_smartmem));
            cells.push(fmt_ratio(row.speedup_vs_others));
            t.row(&cells);
        }
        writeln!(f, "{t}")?;
        writeln!(f, "Geo-mean speedup of FlashMem over each framework:")?;
        for (name, ratio) in &self.geo_mean_speedups {
            writeln!(f, "  {name:<12} {ratio:.1}×")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flashmem_wins_on_integrated_latency_for_the_quick_set() {
        let table = run(true);
        assert_eq!(table.rows.len(), 3);
        for row in &table.rows {
            // Against every framework that supports the model, FlashMem's
            // integrated latency is lower (the paper reports 1.7×–75×).
            for cell in &row.baselines {
                if let Some(integrated) = cell.integrated_ms() {
                    assert!(
                        integrated > row.flashmem_ms,
                        "{} on {}: {} vs FlashMem {}",
                        cell.framework,
                        row.model,
                        integrated,
                        row.flashmem_ms
                    );
                }
            }
            if let Some(s) = row.speedup_vs_smartmem {
                assert!(s > 1.0);
            }
        }
        // Geo-mean speedups are all above 1.
        for (name, ratio) in &table.geo_mean_speedups {
            assert!(*ratio > 1.0, "{name}: {ratio}");
        }
    }

    #[test]
    fn executorch_shows_the_largest_speedups() {
        // The paper's 75× column: ExecuTorch's execution path is by far the
        // slowest, so FlashMem's speedup over it dwarfs the others.
        let table = run(true);
        let get = |name: &str| {
            table
                .geo_mean_speedups
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, r)| *r)
        };
        let etorch = get("ExecuTorch").unwrap();
        let smem = get("SmartMem").unwrap();
        assert!(etorch > 3.0 * smem, "etorch {etorch} vs smartmem {smem}");
    }

    #[test]
    fn unsupported_cells_render_as_dashes() {
        let table = run(true);
        let text = table.to_string();
        // NCNN cannot run GPT-Neo-S (LayerNorm) so its cells are dashes.
        assert!(text.contains('–'));
    }
}
