//! Chaos benchmark — beyond the paper: what deterministic fault injection
//! and the recovery kit (retry, failover, quarantine) buy under the four
//! [`ChaosScenario`]s.
//!
//! Each cell replays one scenario's request list against the *same* seeded
//! [`FaultPlan`](flashmem_serve::FaultPlan) twice: an **unprotected** run
//! where every injected fault becomes a typed per-request failure, and a
//! **protected** run with
//! [`RecoveryControl`] armed — per-request retry budgets with
//! simulated-time backoff, failover re-placement onto surviving devices,
//! and a quarantine circuit breaker with probe-based reinstatement. Fault
//! firing is keyed by `(device, seq, command, attempt)`, so both arms see
//! the same faults and the delta is attributable to recovery alone. The
//! cell records **goodput** (completed requests per simulated second),
//! **SLO attainment**, and **retry amplification** (total attempts per
//! submitted request), plus the planner's retry/failover/quarantine/probe
//! tallies. The protected run executes twice more — pinned to a width-1
//! pool and on the process-wide pool — and the cell records whether the
//! two reports were byte-identical (they must be: every recovery decision
//! is planned sequentially at round boundaries).
//!
//! Like `overload`, this experiment is intentionally **not** part of
//! `bin/all` — the serial-vs-parallel self-check would be tautological
//! inside a pool worker. Run it standalone:
//!
//! `cargo run --release -p flashmem-bench --bin chaos [-- --quick] [--threads N] [--json PATH] [--trace-out PATH]`

use std::sync::Arc;
use std::time::Instant;

use flashmem_core::pool::{self, ThreadPool};
use flashmem_core::{ArtifactCache, FlashMemConfig};
use flashmem_graph::{ModelSpec, ModelZoo};
use flashmem_serve::{
    ChaosScenario, FleetTrace, RecoveryControl, ServeEngine, ServeReport, TraceConfig,
};

use crate::experiments::serve::serving_fleet;
use crate::json::Json;
use crate::table::TextTable;

const SEED: u64 = 0xC4A0_5EED;

/// One scenario cell: the same request list and fault plan, served
/// unprotected and with the recovery kit armed.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosCell {
    /// Scenario name.
    pub scenario: &'static str,
    /// Requests submitted.
    pub submitted: usize,
    /// Requests the unprotected run completed.
    pub unprotected_completed: usize,
    /// Requests the unprotected run lost to injected faults (typed
    /// failures).
    pub unprotected_failed: usize,
    /// Requests the protected run completed.
    pub protected_completed: usize,
    /// Requests the protected run still failed after exhausting its
    /// recovery budget.
    pub protected_failed: usize,
    /// Unprotected goodput: completions per simulated second.
    pub unprotected_goodput_rps: f64,
    /// Protected goodput: completions per simulated second.
    pub protected_goodput_rps: f64,
    /// SLO attainment of the unprotected run.
    pub unprotected_attainment: f64,
    /// SLO attainment of the protected run.
    pub protected_attainment: f64,
    /// Retry amplification of the protected run: total attempts (first
    /// tries + retries + failover hops) per submitted request; 1.0 means
    /// no recovery work was needed.
    pub retry_amplification: f64,
    /// Same-device retry re-dispatches the protected planner issued.
    pub retries: usize,
    /// Failover re-placements the protected planner issued.
    pub failovers: usize,
    /// Quarantine events (threshold trips, failed probes, device losses).
    pub quarantines: usize,
    /// Probe placements sent to quarantined devices.
    pub probes: usize,
    /// True when the protected parallel report was byte-identical to the
    /// width-1 serial one (always expected; recorded so CI can grep).
    pub identical: bool,
    /// Wall-clock of the protected width-1 run, in ms.
    pub serial_ms: f64,
    /// Wall-clock of the protected pool-parallel run, in ms.
    pub parallel_ms: f64,
}

/// The chaos sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosBench {
    /// Pool width the parallel runs used.
    pub threads: usize,
    /// Devices in the fleet.
    pub fleet: usize,
    /// The per-request retry budget the protected runs allow.
    pub retry_budget: u32,
    /// One cell per fault scenario.
    pub cells: Vec<ChaosCell>,
}

fn fleet_size(quick: bool) -> usize {
    if quick {
        3
    } else {
        8
    }
}

fn models(quick: bool) -> Vec<ModelSpec> {
    if quick {
        vec![ModelZoo::gptneo_small(), ModelZoo::vit()]
    } else {
        vec![
            ModelZoo::gptneo_small(),
            ModelZoo::vit(),
            ModelZoo::resnet50(),
        ]
    }
}

const RETRY_BUDGET: u32 = 2;

/// The recovery kit the protected runs arm: bounded retries with backoff,
/// failover, and a probe-based circuit breaker.
fn recovery() -> RecoveryControl {
    RecoveryControl::disabled()
        .with_retry_budget(RETRY_BUDGET)
        .with_backoff_ms(25.0)
        .with_failover()
        .with_quarantine(3, 500.0)
}

/// A fresh engine (and fresh plan cache, so serial and parallel runs see
/// identical cache telemetry) with the scenario's fault plan injected and
/// the recovery kit armed or disabled.
fn engine(fleet: usize, scenario: ChaosScenario, protected: bool) -> ServeEngine {
    let mut engine = ServeEngine::new(serving_fleet(fleet), FlashMemConfig::memory_priority())
        .with_cache(Arc::new(ArtifactCache::new()))
        .with_fault_plan(scenario.fault_plan(fleet, SEED));
    if protected {
        engine = engine.with_recovery_control(recovery());
    }
    engine
}

fn timed_run(
    pool: &ThreadPool,
    fleet: usize,
    scenario: ChaosScenario,
    protected: bool,
    requests: &[flashmem_serve::ServeRequest],
) -> (ServeReport, f64) {
    let start = Instant::now();
    let report = engine(fleet, scenario, protected)
        .run_on(pool, requests)
        .expect("chaos bench run");
    (report, start.elapsed().as_secs_f64() * 1e3)
}

/// Completions per simulated second.
fn goodput_rps(report: &ServeReport) -> f64 {
    let makespan = report.makespan_ms();
    if makespan <= 0.0 {
        0.0
    } else {
        report.completed() as f64 / (makespan / 1e3)
    }
}

/// Run the sweep with parallel cells on the process-wide [`pool::global`].
pub fn run(quick: bool) -> ChaosBench {
    run_on(pool::global(), quick)
}

/// The device-loss cell re-run with event tracing enabled — the
/// [`FleetTrace`] behind the chaos binary's `--trace-out` flag, including
/// the `Fault`/`Retry`/`Failover` instants the recovery pipeline emits.
pub fn traced_showcase(quick: bool) -> FleetTrace {
    let fleet = fleet_size(quick);
    let models = models(quick);
    let requests = ChaosScenario::DeviceLoss.generate(&models, fleet, SEED);
    let report = engine(fleet, ChaosScenario::DeviceLoss, true)
        .with_trace(TraceConfig::enabled())
        .run(&requests)
        .expect("traced chaos run");
    report.trace.expect("tracing was enabled")
}

/// [`run`] with an explicit pool for the parallel runs. The sweep itself is
/// sequential on purpose — each cell's serial-vs-parallel self-check is the
/// thing being recorded.
pub fn run_on(pool: &ThreadPool, quick: bool) -> ChaosBench {
    let fleet = fleet_size(quick);
    let models = models(quick);
    let serial_pool = ThreadPool::with_threads(1);
    let cells = ChaosScenario::all()
        .into_iter()
        .map(|scenario| {
            let requests = scenario.generate(&models, fleet, SEED);
            let (unprotected, _) = timed_run(pool, fleet, scenario, false, &requests);
            let (serial, serial_ms) = timed_run(&serial_pool, fleet, scenario, true, &requests);
            let (parallel, parallel_ms) = timed_run(pool, fleet, scenario, true, &requests);
            let identical = format!("{serial:?}") == format!("{parallel:?}");
            let recovery = serial.recovery;
            let attempts = requests.len() + recovery.retries + recovery.failovers;
            ChaosCell {
                scenario: scenario.name(),
                submitted: requests.len(),
                unprotected_completed: unprotected.completed(),
                unprotected_failed: unprotected.failed(),
                protected_completed: serial.completed(),
                protected_failed: serial.failed(),
                unprotected_goodput_rps: goodput_rps(&unprotected),
                protected_goodput_rps: goodput_rps(&serial),
                unprotected_attainment: unprotected.slo.attainment(),
                protected_attainment: serial.slo.attainment(),
                retry_amplification: attempts as f64 / requests.len() as f64,
                retries: recovery.retries,
                failovers: recovery.failovers,
                quarantines: recovery.quarantines,
                probes: recovery.probes,
                identical,
                serial_ms,
                parallel_ms,
            }
        })
        .collect();
    ChaosBench {
        threads: pool.threads(),
        fleet,
        retry_budget: RETRY_BUDGET,
        cells,
    }
}

impl ChaosBench {
    /// Machine-readable per-cell metrics. `serial_ms` / `parallel_ms` are
    /// wall-clock telemetry; `scripts/diff-bench-json.sh` strips them
    /// (alongside `elapsed_ms`/`threads`) before demanding byte-identity.
    pub fn to_json(&self) -> Json {
        let cells: Vec<Json> = self
            .cells
            .iter()
            .map(|c| {
                Json::obj()
                    .field("scenario", c.scenario)
                    .field("submitted", c.submitted)
                    .field("unprotected_completed", c.unprotected_completed)
                    .field("unprotected_failed", c.unprotected_failed)
                    .field("protected_completed", c.protected_completed)
                    .field("protected_failed", c.protected_failed)
                    .field("unprotected_goodput_rps", c.unprotected_goodput_rps)
                    .field("protected_goodput_rps", c.protected_goodput_rps)
                    .field("unprotected_attainment", c.unprotected_attainment)
                    .field("protected_attainment", c.protected_attainment)
                    .field("retry_amplification", c.retry_amplification)
                    .field("retries", c.retries)
                    .field("failovers", c.failovers)
                    .field("quarantines", c.quarantines)
                    .field("probes", c.probes)
                    .field("identical_to_serial", c.identical)
                    .field("serial_ms", c.serial_ms)
                    .field("parallel_ms", c.parallel_ms)
            })
            .collect();
        Json::obj()
            .field("experiment", "chaos")
            .field("fleet", self.fleet)
            .field("retry_budget", self.retry_budget as usize)
            .field("cells", Json::Arr(cells))
    }
}

impl std::fmt::Display for ChaosBench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Chaos recovery on a {}-device fleet, retry budget {} ({} pool thread{})",
            self.fleet,
            self.retry_budget,
            self.threads,
            if self.threads == 1 { "" } else { "s" }
        )?;
        let mut t = TextTable::new(&[
            "Scenario",
            "Submitted",
            "Unprot done/fail",
            "Prot done/fail",
            "Unprot gput",
            "Prot gput",
            "Unprot SLO",
            "Prot SLO",
            "Amp",
            "R/F/Q/P",
            "Identical",
        ]);
        for c in &self.cells {
            t.row(&[
                c.scenario.to_string(),
                format!("{}", c.submitted),
                format!("{}/{}", c.unprotected_completed, c.unprotected_failed),
                format!("{}/{}", c.protected_completed, c.protected_failed),
                format!("{:.2}/s", c.unprotected_goodput_rps),
                format!("{:.2}/s", c.protected_goodput_rps),
                format!("{:.0}%", 100.0 * c.unprotected_attainment),
                format!("{:.0}%", 100.0 * c.protected_attainment),
                format!("{:.2}x", c.retry_amplification),
                format!(
                    "{}/{}/{}/{}",
                    c.retries, c.failovers, c.quarantines, c.probes
                ),
                format!("{}", c.identical),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_recovers_more_than_unprotected_and_matches_serial() {
        let bench = run_on(&ThreadPool::with_threads(4), true);
        assert_eq!(bench.cells.len(), 4);
        let mut any_failed_unprotected = false;
        for cell in &bench.cells {
            assert_eq!(
                cell.protected_completed + cell.protected_failed,
                cell.submitted,
                "{cell:?}: protected run lost requests"
            );
            assert_eq!(
                cell.unprotected_completed + cell.unprotected_failed,
                cell.submitted,
                "{cell:?}: unprotected run lost requests"
            );
            assert!(cell.identical, "protected run diverged: {cell:?}");
            assert!(
                cell.protected_completed >= cell.unprotected_completed,
                "{cell:?}: recovery completed fewer requests than no recovery"
            );
            assert!(
                cell.retry_amplification >= 1.0,
                "{cell:?}: amplification below 1"
            );
            any_failed_unprotected |= cell.unprotected_failed > 0;
        }
        assert!(
            any_failed_unprotected,
            "the fault scenarios should kill at least one unprotected request"
        );
        // Protected attainment must strictly beat unprotected on the
        // device-loss scenarios (the acceptance bar of the recovery kit).
        let loss = &bench.cells[0];
        assert!(
            loss.protected_attainment > loss.unprotected_attainment,
            "device-loss: protection did not improve attainment: {loss:?}"
        );
        // The JSON view of the same sweep (checked here rather than in a
        // second test so the quick sweep only runs once under `cargo test`).
        let json = bench.to_json().pretty();
        assert!(json.contains("\"experiment\": \"chaos\""));
        assert!(json.contains("\"scenario\": \"device-loss\""));
        assert!(json.contains("\"retries\""));
        assert!(json.contains("\"failovers\""));
        assert!(json.contains("\"quarantines\""));
        assert!(json.contains("\"probes\""));
        assert!(json.contains("\"retry_amplification\""));
        assert!(json.contains("\"identical_to_serial\": true"));
    }

    #[test]
    fn traced_showcase_records_the_whole_fleet() {
        let trace = traced_showcase(true);
        assert_eq!(trace.processes.len(), fleet_size(true));
        assert!(
            trace
                .processes
                .iter()
                .flat_map(|p| &p.events)
                .any(|e| e.name.starts_with("fault ")),
            "the device-loss showcase records no fault instants"
        );
    }
}
