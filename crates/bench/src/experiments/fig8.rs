//! Figure 8 — the configurable trade-off between memory usage and inference
//! latency: as more weights are preloaded (larger `M_peak`, smaller `λ`),
//! execution latency falls but integrated latency and memory rise.

use flashmem_core::{EngineRegistry, FlashMemConfig, FlashMemVariant};
use flashmem_gpu_sim::DeviceSpec;
use flashmem_graph::{ModelSpec, ModelZoo};

use crate::harness::run_matrix;
use crate::table::TextTable;

/// One point of a trade-off curve.
#[derive(Debug, Clone, PartialEq)]
pub struct TradeoffPoint {
    /// Fraction of weight bytes preloaded (0 = fully streamed).
    pub preload_fraction: f64,
    /// Average memory in MB.
    pub memory_mb: f64,
    /// Integrated latency in ms.
    pub integrated_ms: f64,
    /// Execution latency in ms.
    pub exec_ms: f64,
}

/// The trade-off curve of one model.
#[derive(Debug, Clone, PartialEq)]
pub struct TradeoffCurve {
    /// Model abbreviation.
    pub model: String,
    /// Points ordered by increasing preload fraction.
    pub points: Vec<TradeoffPoint>,
}

/// The Figure 8 result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8 {
    /// One curve per model.
    pub curves: Vec<TradeoffCurve>,
}

fn models(quick: bool) -> Vec<ModelSpec> {
    if quick {
        vec![ModelZoo::vit()]
    } else {
        vec![
            ModelZoo::vit(),
            ModelZoo::gptneo_1_3b(),
            ModelZoo::depth_anything_large(),
            ModelZoo::whisper_medium(),
        ]
    }
}

/// The configurations swept to move along the preload-ratio axis, as named
/// FlashMem variants.
fn sweep_configs(quick: bool) -> Vec<(&'static str, FlashMemConfig)> {
    let base = vec![
        (
            "aggressive-streaming",
            FlashMemConfig::memory_priority()
                .with_m_peak_mib(256)
                .with_lambda(0.95),
        ),
        ("memory-priority", FlashMemConfig::memory_priority()),
        ("balanced", FlashMemConfig::balanced()),
        ("latency-priority", FlashMemConfig::latency_priority()),
        (
            "eager-preload",
            FlashMemConfig::latency_priority()
                .with_lambda(0.05)
                .with_m_peak_mib(4_096),
        ),
        (
            "full-preload",
            FlashMemConfig::memory_priority().with_opg(false),
        ),
    ];
    if quick {
        base.into_iter()
            .enumerate()
            .filter(|(i, _)| matches!(i, 1 | 3 | 5))
            .map(|(_, c)| c)
            .collect()
    } else {
        base
    }
}

/// Run the Figure 8 experiment.
pub fn run(quick: bool) -> Fig8 {
    let configs = sweep_configs(quick);
    let mut registry = EngineRegistry::new();
    for (label, config) in &configs {
        registry.register(Box::new(FlashMemVariant::new(*label, config.clone())));
    }
    let models = models(quick);
    let matrix = run_matrix(&registry, &models, &[DeviceSpec::oneplus_12()]);

    let curves = models
        .iter()
        .map(|model| {
            let mut points: Vec<TradeoffPoint> = configs
                .iter()
                .filter_map(|(label, _)| {
                    let report = matrix.report(label, &model.abbr)?;
                    Some(TradeoffPoint {
                        preload_fraction: 1.0 - report.streamed_weight_fraction,
                        memory_mb: report.average_memory_mb,
                        integrated_ms: report.integrated_latency_ms,
                        exec_ms: report.exec_latency_ms,
                    })
                })
                .collect();
            points.sort_by(|a, b| a.preload_fraction.partial_cmp(&b.preload_fraction).unwrap());
            TradeoffCurve {
                model: model.abbr.clone(),
                points,
            }
        })
        .collect();
    Fig8 { curves }
}

impl std::fmt::Display for Fig8 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 8: memory usage vs latency as the preload ratio varies"
        )?;
        let mut t = TextTable::new(&[
            "Model",
            "Preload (%)",
            "Avg memory (MB)",
            "Integrated (ms)",
            "Execution (ms)",
        ]);
        for curve in &self.curves {
            for p in &curve.points {
                t.row(&[
                    curve.model.clone(),
                    format!("{:.0}", p.preload_fraction * 100.0),
                    format!("{:.0}", p.memory_mb),
                    format!("{:.0}", p.integrated_ms),
                    format!("{:.0}", p.exec_ms),
                ]);
            }
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preloading_more_raises_memory_and_cuts_execution_latency() {
        let fig = run(true);
        let curve = &fig.curves[0];
        assert!(curve.points.len() >= 3);
        let first = curve.points.first().unwrap(); // least preloaded
        let last = curve.points.last().unwrap(); // fully preloaded
        assert!(first.preload_fraction < last.preload_fraction);
        // More preloading → more memory, less execution-phase latency, and an
        // integrated latency that never improves (initialization grows; on
        // small models the two effects roughly cancel, on large models the
        // paper's sharp rise appears — see the full, non-quick run).
        assert!(last.memory_mb > first.memory_mb);
        assert!(last.exec_ms <= first.exec_ms + 1.0);
        assert!(last.integrated_ms >= 0.95 * first.integrated_ms);
    }

    #[test]
    fn partial_preload_adds_little_integrated_latency() {
        // The paper's observation: overlapping ~half the weights costs almost
        // nothing relative to the most aggressive streaming configuration.
        let fig = run(true);
        let curve = &fig.curves[0];
        let min_integrated = curve
            .points
            .iter()
            .map(|p| p.integrated_ms)
            .fold(f64::MAX, f64::min);
        let mid = &curve.points[curve.points.len() / 2];
        assert!(mid.integrated_ms < 1.35 * min_integrated);
    }
}
