//! Table 4 — execution-time breakdown of the LC-OPG solver (process nodes /
//! build model / solve model) and its termination status under a time budget.

use std::time::Duration;

use flashmem_core::{FlashMemConfig, LcOpgSolver};
use flashmem_gpu_sim::DeviceSpec;
use flashmem_graph::{ModelSpec, ModelZoo};

use crate::table::TextTable;

/// One row of Table 4.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// Model name.
    pub model: String,
    /// Number of lowered nodes in the graph.
    pub nodes: usize,
    /// Time spent processing nodes (graph, fusion, capacities).
    pub process_nodes: Duration,
    /// Time spent building CP models.
    pub build_model: Duration,
    /// Time spent solving.
    pub solve_model: Duration,
    /// Final solver status (`OPTIMAL` / `FEASIBLE`).
    pub status: String,
    /// Fraction of weights streamed by the resulting plan.
    pub streamed_fraction: f64,
}

/// The full Table 4 result.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4 {
    /// Rows in model order.
    pub rows: Vec<Table4Row>,
    /// The per-run solver budget used (the paper uses 150 s).
    pub budget: Duration,
}

fn models(quick: bool) -> Vec<ModelSpec> {
    if quick {
        vec![ModelZoo::gptneo_small(), ModelZoo::vit()]
    } else {
        vec![
            ModelZoo::gptneo_small(),
            ModelZoo::gptneo_1_3b(),
            ModelZoo::gptneo_2_7b(),
            ModelZoo::vit_8b(),
            ModelZoo::llama2_13b(),
            ModelZoo::llama2_70b(),
        ]
    }
}

/// Run the Table 4 experiment with a total solver budget (per model).
pub fn run_with_budget(quick: bool, budget: Duration) -> Table4 {
    let device = DeviceSpec::oneplus_12();
    let rows = models(quick)
        .into_iter()
        .map(|model| {
            let config = FlashMemConfig::memory_priority();
            let config = FlashMemConfig {
                total_solver_budget_ms: budget.as_millis() as u64,
                ..config
            };
            let solver = LcOpgSolver::new(device.clone(), config);
            let (plan, report) = solver.plan(model.graph());
            Table4Row {
                model: model.name.clone(),
                nodes: model.graph().len(),
                process_nodes: report.process_nodes,
                build_model: report.build_model,
                solve_model: report.solve_model,
                status: report.status.name().to_string(),
                streamed_fraction: plan.streamed_fraction(),
            }
        })
        .collect();
    Table4 { rows, budget }
}

/// Run the Table 4 experiment with the paper's 150-second budget.
pub fn run(quick: bool) -> Table4 {
    run_with_budget(quick, Duration::from_secs(150))
}

impl std::fmt::Display for Table4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Table 4: LC-OPG execution-time breakdown (budget {:.0} s per model)",
            self.budget.as_secs_f64()
        )?;
        let mut t = TextTable::new(&[
            "Model",
            "Nodes",
            "Process nodes (s)",
            "Build model (s)",
            "Solve model (s)",
            "Solver Status",
            "Streamed (%)",
        ]);
        for r in &self.rows {
            t.row(&[
                r.model.clone(),
                format!("{}", r.nodes),
                format!("{:.3}", r.process_nodes.as_secs_f64()),
                format!("{:.3}", r.build_model.as_secs_f64()),
                format!("{:.3}", r.solve_model.as_secs_f64()),
                r.status.clone(),
                format!("{:.1}", r.streamed_fraction * 100.0),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table_4_reports_statuses_and_phase_times() {
        let result = run(true);
        assert_eq!(result.rows.len(), 2);
        for r in &result.rows {
            assert!(r.nodes > 100);
            assert!(matches!(r.status.as_str(), "OPTIMAL" | "FEASIBLE"));
            assert!(r.streamed_fraction > 0.0);
            // Every phase is accounted for (may be tiny but not negative).
            assert!(r.process_nodes + r.build_model + r.solve_model > Duration::ZERO);
        }
        let text = result.to_string();
        assert!(text.contains("GPTNeo-Small"));
        assert!(text.contains("Solver Status"));
    }

    #[test]
    fn larger_models_cost_more_planner_time() {
        let result = run(true);
        let small = &result.rows[0]; // GPT-Neo-S
        let vit = &result.rows[1];
        let total = |r: &Table4Row| r.process_nodes + r.build_model + r.solve_model;
        // ViT has more weights to schedule than GPT-Neo-S (more blocks).
        assert!(vit.nodes > small.nodes);
        assert!(
            total(vit) >= total(small) / 4,
            "planner time not absurdly inverted"
        );
    }
}
