//! Figure 4 — the offline profiling pipeline: sample kernels with varying
//! launch geometry and injected I/O, train the latency regressor, and report
//! its accuracy per operator category.

use flashmem_gpu_sim::kernel::KernelCategory;
use flashmem_gpu_sim::DeviceSpec;
use flashmem_profiler::{GbrtConfig, GbrtModel, KernelSample, KernelSampler, SamplingConfig};

use crate::table::TextTable;

/// Per-category regression quality.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoryFit {
    /// The operator category.
    pub category: KernelCategory,
    /// Number of samples of this category.
    pub samples: usize,
    /// Mean observed latency in ms.
    pub mean_latency_ms: f64,
    /// Root-mean-square prediction error in ms.
    pub rmse_ms: f64,
}

/// The Figure 4 result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4 {
    /// Total training samples.
    pub samples: usize,
    /// Number of boosted trees in the model.
    pub trees: usize,
    /// Overall RMSE in ms.
    pub overall_rmse_ms: f64,
    /// Per-category fits.
    pub per_category: Vec<CategoryFit>,
}

/// Run the Figure 4 experiment.
pub fn run(quick: bool) -> Fig4 {
    let device = DeviceSpec::oneplus_12();
    let config = SamplingConfig {
        kernels: if quick { 40 } else { 160 },
        ..Default::default()
    };
    let samples = KernelSampler::new(device, config).collect();
    let features: Vec<Vec<f64>> = samples.iter().map(KernelSample::features).collect();
    let targets: Vec<f64> = samples.iter().map(|s| s.latency_ms).collect();
    let gbrt_config = GbrtConfig {
        n_trees: if quick { 40 } else { 120 },
        ..Default::default()
    };
    let model = GbrtModel::fit(&features, &targets, &gbrt_config);

    let per_category = [
        KernelCategory::Elemental,
        KernelCategory::Reusable,
        KernelCategory::Hierarchical,
    ]
    .into_iter()
    .map(|category| {
        let subset: Vec<usize> = samples
            .iter()
            .enumerate()
            .filter(|(_, s)| s.category == category)
            .map(|(i, _)| i)
            .collect();
        let mean = subset.iter().map(|&i| targets[i]).sum::<f64>() / subset.len().max(1) as f64;
        let sub_features: Vec<Vec<f64>> = subset.iter().map(|&i| features[i].clone()).collect();
        let sub_targets: Vec<f64> = subset.iter().map(|&i| targets[i]).collect();
        CategoryFit {
            category,
            samples: subset.len(),
            mean_latency_ms: mean,
            rmse_ms: model.rmse(&sub_features, &sub_targets),
        }
    })
    .collect();

    Fig4 {
        samples: samples.len(),
        trees: model.num_trees(),
        overall_rmse_ms: model.rmse(&features, &targets),
        per_category,
    }
}

impl std::fmt::Display for Fig4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 4: kernel profiling and latency regression ({} samples, {} trees, overall RMSE {:.3} ms)",
            self.samples, self.trees, self.overall_rmse_ms
        )?;
        let mut t = TextTable::new(&["Op type", "Samples", "Mean latency (ms)", "RMSE (ms)"]);
        for c in &self.per_category {
            t.row(&[
                c.category.name().to_string(),
                format!("{}", c.samples),
                format!("{:.3}", c.mean_latency_ms),
                format!("{:.3}", c.rmse_ms),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regressor_fits_the_profiled_kernels_well() {
        let fig = run(true);
        assert_eq!(fig.per_category.len(), 3);
        assert!(fig.samples >= 200);
        // The regressor should explain the data far better than a constant
        // predictor: RMSE under 25% of the mean reusable-kernel latency.
        let reusable = fig
            .per_category
            .iter()
            .find(|c| c.category == KernelCategory::Reusable)
            .unwrap();
        assert!(
            fig.overall_rmse_ms < 0.25 * reusable.mean_latency_ms.max(0.5),
            "rmse {} vs mean {}",
            fig.overall_rmse_ms,
            reusable.mean_latency_ms
        );
        // Reusable kernels are the slowest on average (they dominate latency).
        let elemental = fig
            .per_category
            .iter()
            .find(|c| c.category == KernelCategory::Elemental)
            .unwrap();
        assert!(reusable.mean_latency_ms > elemental.mean_latency_ms);
    }

    #[test]
    fn display_mentions_every_category() {
        let text = run(true).to_string();
        for c in ["elemental", "reusable", "hierarchical"] {
            assert!(text.contains(c));
        }
    }
}
