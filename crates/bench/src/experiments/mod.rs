//! One module per table/figure of the paper's evaluation.
//!
//! | Module | Reproduces | Paper reference |
//! |---|---|---|
//! | [`table1`] | Memory/latency of preloading frameworks (motivation) | Table 1 |
//! | [`fig2`] | Latency increase vs. additional streamed volume per operator | Figure 2 |
//! | [`table4`] | LC-OPG solver runtime breakdown and status | Table 4 |
//! | [`fig4`] | Kernel profiling + GBRT latency prediction | Figure 4 |
//! | [`table6`] | Model characterisation (generated vs published) | Table 6 |
//! | [`table7`] | End-to-end latency comparison | Table 7 |
//! | [`table8`] | Average memory comparison | Table 8 |
//! | [`fig6`] | Multi-model FIFO memory traces | Figure 6 |
//! | [`fig7`] | Speedup / memory-reduction breakdown (ablation) | Figure 7 |
//! | [`fig8`] | Memory–latency trade-off curves | Figure 8 |
//! | [`fig9`] | Comparison with naive overlap strategies | Figure 9 |
//! | [`table9`] | Power and energy consumption | Table 9 |
//! | [`fig10`] | Portability across devices | Figure 10 |
//! | [`serve`] | Multi-tenant serving sweep (beyond the paper) | — |
//! | [`fleet_scale`] | Fleet-size ramp on the parallel serve loop (beyond the paper) | — |
//! | [`overload`] | Overload survival: admission control, bounded queues, steal (beyond the paper) | — |
//! | [`chaos`] | Fault injection & recovery: retry, failover, quarantine (beyond the paper) | — |
//! | [`decode`] | Continuous-batching decode vs one-shot serving (beyond the paper) | — |

pub mod ablations;
pub mod chaos;
pub mod decode;
pub mod fig10;
pub mod fig2;
pub mod fig4;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fleet_scale;
pub mod overload;
pub mod serve;
pub mod table1;
pub mod table4;
pub mod table6;
pub mod table7;
pub mod table8;
pub mod table9;
