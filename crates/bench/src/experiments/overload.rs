//! Overload-survival benchmark — beyond the paper: what fleet-wide
//! admission control, bounded per-device queues and the re-placement
//! (steal) phase buy under the four adversarial [`OverloadScenario`]s.
//!
//! Each cell runs one scenario twice over the same request list: an
//! **unbounded baseline** (every request accepted, queues grow without
//! limit) and a **protected** run with the full overload kit armed —
//! bounded queues, deadline admission control, steal, and (for the
//! hot-tenant scenario) a fleet-wide tenant cap. The cell records how much
//! traffic was shed and why, how much queued work the steal phase moved,
//! the per-device queue high-water, and the SLO attainment of the
//! *admitted* requests under both regimes — the headline number shedding
//! exists to protect. The protected run executes twice more: pinned to a
//! width-1 pool and on the process-wide pool, and the cell records whether
//! the two reports were byte-identical (they must be: every overload
//! decision commits in the run's sequential prologue or per-device loop).
//!
//! Like `fleet_scale`, this experiment is intentionally **not** part of
//! `bin/all` — the serial-vs-parallel self-check would be tautological
//! inside a pool worker. Run it standalone:
//!
//! `cargo run --release -p flashmem-bench --bin overload [-- --quick] [--threads N] [--json PATH] [--trace-out PATH]`

use std::sync::Arc;
use std::time::Instant;

use flashmem_core::pool::{self, ThreadPool};
use flashmem_core::{ArtifactCache, FlashMemConfig};
use flashmem_graph::{ModelSpec, ModelZoo};
use flashmem_serve::{
    FleetTrace, OverloadControl, OverloadScenario, ServeEngine, ServeReport, TraceConfig,
};

use crate::experiments::serve::serving_fleet;
use crate::fmt_ms;
use crate::json::Json;
use crate::table::TextTable;

const MIB: u64 = 1024 * 1024;
const SEED: u64 = 0x0DD_F1EE;

/// One scenario cell: the same request list served unprotected and with
/// the full overload kit.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadCell {
    /// Scenario name.
    pub scenario: &'static str,
    /// Requests submitted.
    pub submitted: usize,
    /// Requests the protected run accepted into the serving pipeline.
    pub accepted: usize,
    /// Requests the protected run shed (`accepted + rejected == submitted`
    /// always — nothing is silently lost).
    pub rejected: usize,
    /// Rejections from fleet-wide admission control.
    pub rejected_deadline_unmeetable: usize,
    /// Rejections from a full bounded queue at arrival.
    pub rejected_queue_full: usize,
    /// Queued requests the steal phase re-placed onto an earlier device.
    pub stolen: usize,
    /// Largest per-device queue high-water of the protected run (never
    /// exceeds the configured bound).
    pub queue_depth_high_water: usize,
    /// SLO attainment of the unbounded baseline (all requests admitted).
    pub baseline_attainment: f64,
    /// SLO attainment of the protected run's admitted requests.
    pub protected_attainment: f64,
    /// Baseline p99 latency (ms, simulated); `None` (JSON `null`) when no
    /// request completed.
    pub baseline_p99_ms: Option<f64>,
    /// Protected-run p99 latency over the admitted requests; `None` when
    /// none completed.
    pub protected_p99_ms: Option<f64>,
    /// True when the protected parallel report was byte-identical to the
    /// width-1 serial one (always expected; recorded so CI can grep).
    pub identical: bool,
    /// Wall-clock of the protected width-1 run, in ms.
    pub serial_ms: f64,
    /// Wall-clock of the protected pool-parallel run, in ms.
    pub parallel_ms: f64,
}

/// The overload sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadBench {
    /// Pool width the parallel runs used.
    pub threads: usize,
    /// Devices in the fleet.
    pub fleet: usize,
    /// The per-device queue bound the protected runs enforce.
    pub queue_bound: usize,
    /// One cell per adversarial scenario.
    pub cells: Vec<OverloadCell>,
}

fn fleet_size(quick: bool) -> usize {
    if quick {
        3
    } else {
        8
    }
}

fn models(quick: bool) -> Vec<ModelSpec> {
    if quick {
        vec![ModelZoo::gptneo_small(), ModelZoo::vit()]
    } else {
        vec![
            ModelZoo::gptneo_small(),
            ModelZoo::vit(),
            ModelZoo::resnet50(),
        ]
    }
}

const QUEUE_BOUND: usize = 2;

/// A fresh engine (and fresh plan cache, so serial and parallel runs see
/// identical cache telemetry) with the overload kit armed or disabled.
fn engine(fleet: usize, scenario: OverloadScenario, protected: bool) -> ServeEngine {
    let mut engine = ServeEngine::new(serving_fleet(fleet), FlashMemConfig::memory_priority())
        .with_cache(Arc::new(ArtifactCache::new()));
    if protected {
        engine = engine.with_overload_control(
            OverloadControl::disabled()
                .with_queue_bound(QUEUE_BOUND)
                .with_admission_control()
                .with_steal(),
        );
        if scenario == OverloadScenario::HotTenant {
            engine = engine.with_fleet_tenant_cap(OverloadScenario::HOT_TENANT, 2_400 * MIB, 2);
        }
    }
    engine
}

fn timed_run(
    pool: &ThreadPool,
    fleet: usize,
    scenario: OverloadScenario,
    protected: bool,
    requests: &[flashmem_serve::ServeRequest],
) -> (ServeReport, f64) {
    let start = Instant::now();
    let report = engine(fleet, scenario, protected)
        .run_on(pool, requests)
        .expect("overload bench run");
    (report, start.elapsed().as_secs_f64() * 1e3)
}

/// Run the sweep with parallel cells on the process-wide [`pool::global`].
pub fn run(quick: bool) -> OverloadBench {
    run_on(pool::global(), quick)
}

/// The flash-crowd cell re-run with event tracing enabled — the
/// [`FleetTrace`] behind the overload binary's `--trace-out` flag,
/// including the `Reject` and `Steal` instants overload control emits.
pub fn traced_showcase(quick: bool) -> FleetTrace {
    let fleet = fleet_size(quick);
    let models = models(quick);
    let requests = OverloadScenario::FlashCrowd.generate(&models, fleet, SEED);
    let report = engine(fleet, OverloadScenario::FlashCrowd, true)
        .with_trace(TraceConfig::enabled())
        .run(&requests)
        .expect("traced overload run");
    report.trace.expect("tracing was enabled")
}

/// [`run`] with an explicit pool for the parallel runs. The sweep itself is
/// sequential on purpose — each cell's serial-vs-parallel self-check is the
/// thing being recorded.
pub fn run_on(pool: &ThreadPool, quick: bool) -> OverloadBench {
    let fleet = fleet_size(quick);
    let models = models(quick);
    let serial_pool = ThreadPool::with_threads(1);
    let cells = OverloadScenario::all()
        .into_iter()
        .map(|scenario| {
            let requests = scenario.generate(&models, fleet, SEED);
            let (baseline, _) = timed_run(pool, fleet, scenario, false, &requests);
            let (serial, serial_ms) = timed_run(&serial_pool, fleet, scenario, true, &requests);
            let (parallel, parallel_ms) = timed_run(pool, fleet, scenario, true, &requests);
            let identical = format!("{serial:?}") == format!("{parallel:?}");
            let shed = serial.shed_by_cause();
            OverloadCell {
                scenario: scenario.name(),
                submitted: requests.len(),
                accepted: serial.accepted(),
                rejected: serial.rejected(),
                rejected_deadline_unmeetable: shed.deadline_unmeetable,
                rejected_queue_full: shed.queue_full,
                stolen: serial.stolen(),
                queue_depth_high_water: serial
                    .devices
                    .iter()
                    .map(|d| d.queue_depth_high_water)
                    .max()
                    .unwrap_or(0),
                baseline_attainment: baseline.slo.attainment(),
                protected_attainment: serial.slo.attainment(),
                baseline_p99_ms: baseline.latency.map(|l| l.p99_ms),
                protected_p99_ms: serial.latency.map(|l| l.p99_ms),
                identical,
                serial_ms,
                parallel_ms,
            }
        })
        .collect();
    OverloadBench {
        threads: pool.threads(),
        fleet,
        queue_bound: QUEUE_BOUND,
        cells,
    }
}

impl OverloadBench {
    /// Machine-readable per-cell metrics. `serial_ms` / `parallel_ms` are
    /// wall-clock telemetry; `scripts/diff-bench-json.sh` strips them
    /// (alongside `elapsed_ms`/`threads`) before demanding byte-identity.
    pub fn to_json(&self) -> Json {
        let cells: Vec<Json> = self
            .cells
            .iter()
            .map(|c| {
                Json::obj()
                    .field("scenario", c.scenario)
                    .field("submitted", c.submitted)
                    .field("accepted", c.accepted)
                    .field("rejected", c.rejected)
                    .field(
                        "rejected_deadline_unmeetable",
                        c.rejected_deadline_unmeetable,
                    )
                    .field("rejected_queue_full", c.rejected_queue_full)
                    .field("stolen", c.stolen)
                    .field("queue_depth_high_water", c.queue_depth_high_water)
                    .field("baseline_attainment", c.baseline_attainment)
                    .field("protected_attainment", c.protected_attainment)
                    .field("baseline_p99_ms", c.baseline_p99_ms)
                    .field("protected_p99_ms", c.protected_p99_ms)
                    .field("identical_to_serial", c.identical)
                    .field("serial_ms", c.serial_ms)
                    .field("parallel_ms", c.parallel_ms)
            })
            .collect();
        Json::obj()
            .field("experiment", "overload")
            .field("fleet", self.fleet)
            .field("queue_bound", self.queue_bound)
            .field("cells", Json::Arr(cells))
    }
}

impl std::fmt::Display for OverloadBench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Overload survival on a {}-device fleet, queue bound {} ({} pool thread{})",
            self.fleet,
            self.queue_bound,
            self.threads,
            if self.threads == 1 { "" } else { "s" }
        )?;
        let mut t = TextTable::new(&[
            "Scenario",
            "Submitted",
            "Accepted",
            "Rejected",
            "dl/qf",
            "Stolen",
            "Queue HW",
            "Base SLO",
            "Prot SLO",
            "Base p99",
            "Prot p99",
            "Identical",
        ]);
        for c in &self.cells {
            t.row(&[
                c.scenario.to_string(),
                format!("{}", c.submitted),
                format!("{}", c.accepted),
                format!("{}", c.rejected),
                format!(
                    "{}/{}",
                    c.rejected_deadline_unmeetable, c.rejected_queue_full
                ),
                format!("{}", c.stolen),
                format!("{}", c.queue_depth_high_water),
                format!("{:.0}%", 100.0 * c.baseline_attainment),
                format!("{:.0}%", 100.0 * c.protected_attainment),
                fmt_ms(c.baseline_p99_ms),
                fmt_ms(c.protected_p99_ms),
                format!("{}", c.identical),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_sheds_nothing_silently_and_matches_serial() {
        let bench = run_on(&ThreadPool::with_threads(4), true);
        assert_eq!(bench.cells.len(), 4);
        let mut any_rejected = false;
        for cell in &bench.cells {
            assert_eq!(
                cell.accepted + cell.rejected,
                cell.submitted,
                "{cell:?}: requests silently lost"
            );
            assert_eq!(
                cell.rejected,
                cell.rejected_deadline_unmeetable + cell.rejected_queue_full,
                "{cell:?}: a rejection without a cause"
            );
            assert!(cell.identical, "protected run diverged: {cell:?}");
            assert!(cell.queue_depth_high_water <= QUEUE_BOUND, "{cell:?}");
            any_rejected |= cell.rejected > 0;
        }
        assert!(
            any_rejected,
            "the adversarial scenarios should pressure at least one rejection"
        );
        // The JSON view of the same sweep (checked here rather than in a
        // second test so the quick sweep only runs once under `cargo test`).
        let json = bench.to_json().pretty();
        assert!(json.contains("\"experiment\": \"overload\""));
        assert!(json.contains("\"scenario\": \"flash-crowd\""));
        assert!(json.contains("\"rejected\""));
        assert!(json.contains("\"stolen\""));
        assert!(json.contains("\"queue_depth_high_water\""));
        assert!(json.contains("\"baseline_attainment\""));
        assert!(json.contains("\"protected_attainment\""));
        assert!(json.contains("\"identical_to_serial\": true"));
    }

    #[test]
    fn traced_showcase_records_the_whole_fleet() {
        let trace = traced_showcase(true);
        assert_eq!(trace.processes.len(), fleet_size(true));
        for process in &trace.processes {
            assert!(
                !process.events.is_empty(),
                "{} recorded nothing",
                process.name
            );
        }
    }
}
