//! Table 9 — average power and energy consumption per inference for DeepViT
//! and SD-UNet across frameworks.

use flashmem_gpu_sim::DeviceSpec;
use flashmem_graph::{ModelSpec, ModelZoo};

use crate::harness::{comparison_registry, run_matrix};
use crate::table::TextTable;

/// Power/energy of one framework on one model.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerCell {
    /// Framework name.
    pub framework: String,
    /// Average power in watts (None = unsupported).
    pub power_w: Option<f64>,
    /// Energy per inference in joules (None = unsupported).
    pub energy_j: Option<f64>,
}

/// The full Table 9.
#[derive(Debug, Clone, PartialEq)]
pub struct Table9 {
    /// Evaluated model abbreviations (columns of the paper table).
    pub models: Vec<String>,
    /// Rows: framework name → per-model cells (aligned with `models`).
    pub rows: Vec<(String, Vec<PowerCell>)>,
}

fn models(quick: bool) -> Vec<ModelSpec> {
    if quick {
        vec![ModelZoo::vit()]
    } else {
        vec![ModelZoo::deepvit(), ModelZoo::sd_unet()]
    }
}

/// Run the Table 9 experiment.
pub fn run(quick: bool) -> Table9 {
    let model_specs = models(quick);
    let model_names: Vec<String> = model_specs.iter().map(|m| m.abbr.clone()).collect();
    let matrix = run_matrix(
        &comparison_registry(),
        &model_specs,
        &[DeviceSpec::oneplus_12()],
    );

    // One row per engine, one cell per model column — straight out of the
    // matrix; unsupported combinations stay `None` ("–").
    let rows = matrix
        .engine_names()
        .into_iter()
        .map(|engine| {
            let cells = model_names
                .iter()
                .map(|model| {
                    let report = matrix.report(&engine, model);
                    PowerCell {
                        framework: engine.clone(),
                        power_w: report.map(|r| r.average_power_w),
                        energy_j: report.map(|r| r.energy_j),
                    }
                })
                .collect();
            (engine, cells)
        })
        .collect();
    Table9 {
        models: model_names,
        rows,
    }
}

impl std::fmt::Display for Table9 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Table 9: average power (W) and energy (J) per inference")?;
        let mut header = vec!["Framework".to_string()];
        for m in &self.models {
            header.push(format!("{m} power (W)"));
            header.push(format!("{m} energy (J)"));
        }
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut t = TextTable::new(&header_refs);
        for (framework, cells) in &self.rows {
            let mut row = vec![framework.clone()];
            for cell in cells {
                row.push(
                    cell.power_w
                        .map(|p| format!("{p:.1}"))
                        .unwrap_or_else(|| "–".into()),
                );
                row.push(
                    cell.energy_j
                        .map(|e| format!("{e:.1}"))
                        .unwrap_or_else(|| "–".into()),
                );
            }
            t.row(&row);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flashmem_saves_energy_despite_similar_power() {
        let table = run(true);
        let flashmem = table
            .rows
            .iter()
            .find(|(n, _)| n == "FlashMem")
            .map(|(_, c)| c[0].clone())
            .unwrap();
        let smartmem = table
            .rows
            .iter()
            .find(|(n, _)| n == "SmartMem")
            .map(|(_, c)| c[0].clone())
            .unwrap();
        // Energy savings (the paper reports 83-96% savings); power is in the
        // same ballpark or higher because FlashMem keeps the GPU busier.
        assert!(flashmem.energy_j.unwrap() < 0.6 * smartmem.energy_j.unwrap());
        assert!(flashmem.power_w.unwrap() > 0.5 * smartmem.power_w.unwrap());
    }

    #[test]
    fn every_framework_row_covers_every_model_column() {
        let table = run(true);
        for (name, cells) in &table.rows {
            assert_eq!(cells.len(), table.models.len(), "{name}");
        }
        assert!(table.to_string().contains("FlashMem"));
    }
}
