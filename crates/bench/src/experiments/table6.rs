//! Table 6 — model characterisation: the generated model zoo vs the figures
//! published in the paper (parameters, MACs, lowered layer counts).

use flashmem_graph::ModelZoo;

use crate::table::TextTable;

/// One row of the characterisation table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table6Row {
    /// Model abbreviation.
    pub abbr: String,
    /// Task name.
    pub task: String,
    /// Generated parameters (M) / paper parameters (M).
    pub params_m: (f64, f64),
    /// Generated MACs (G) / paper MACs (G).
    pub macs_g: (f64, f64),
    /// Generated layers / paper layers.
    pub layers: (u64, u64),
}

/// The full Table 6 comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Table6 {
    /// Rows in Table 6 order.
    pub rows: Vec<Table6Row>,
}

/// Run the Table 6 self-check (the `quick` flag is accepted for API symmetry
/// but the full zoo is cheap to generate either way).
pub fn run(_quick: bool) -> Table6 {
    let rows = ModelZoo::all_evaluated()
        .into_iter()
        .map(|m| Table6Row {
            abbr: m.abbr.clone(),
            task: m.task.name().to_string(),
            params_m: (m.params_m(), m.paper.params_m),
            macs_g: (m.macs_g(), m.paper.macs_g),
            layers: (m.layers(), m.paper.layers),
        })
        .collect();
    Table6 { rows }
}

impl std::fmt::Display for Table6 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Table 6: model characterisation (generated vs paper)")?;
        let mut t = TextTable::new(&[
            "Abbr.",
            "Task",
            "Params (M) gen/paper",
            "MACs (G) gen/paper",
            "Layers gen/paper",
        ]);
        for r in &self.rows {
            t.row(&[
                r.abbr.clone(),
                r.task.clone(),
                format!("{:.0} / {:.0}", r.params_m.0, r.params_m.1),
                format!("{:.0} / {:.0}", r.macs_g.0, r.macs_g.1),
                format!("{} / {}", r.layers.0, r.layers.1),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_eleven_models_characterised_close_to_the_paper() {
        let table = run(false);
        assert_eq!(table.rows.len(), 11);
        for r in &table.rows {
            let param_dev = (r.params_m.0 - r.params_m.1).abs() / r.params_m.1;
            assert!(
                param_dev < 0.35,
                "{}: params deviate {param_dev:.2}",
                r.abbr
            );
        }
        let text = table.to_string();
        assert!(text.contains("SD-UNet"));
        assert!(text.contains("Whisp-M"));
    }
}
