//! Table 1 — the motivating measurement: memory usage and latency of large
//! models under a preloading framework (MNN) on the OnePlus 12, broken into
//! load / transform / inference phases.

use flashmem_baselines::{FrameworkProfile, PreloadFramework};
use flashmem_core::EngineRegistry;
use flashmem_gpu_sim::DeviceSpec;
use flashmem_graph::{ModelSpec, ModelZoo};

use crate::harness::run_matrix;
use crate::table::TextTable;

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Model abbreviation.
    pub model: String,
    /// Parameter count in millions (generated).
    pub params_m: f64,
    /// Peak memory in MB.
    pub peak_memory_mb: f64,
    /// Average memory in MB.
    pub average_memory_mb: f64,
    /// Disk-load latency in ms.
    pub load_ms: f64,
    /// Layout-transformation latency in ms.
    pub transform_ms: f64,
    /// Inference latency in ms.
    pub infer_ms: f64,
}

/// The full Table 1 result.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// Rows in paper order (Whisper, GPT-Neo, SD-UNet).
    pub rows: Vec<Table1Row>,
}

/// Models used by the motivation table.
fn models(quick: bool) -> Vec<ModelSpec> {
    if quick {
        vec![ModelZoo::gptneo_small()]
    } else {
        vec![
            ModelZoo::whisper_medium(),
            ModelZoo::gptneo_small(),
            ModelZoo::sd_unet(),
        ]
    }
}

/// Run the Table 1 experiment.
pub fn run(quick: bool) -> Table1 {
    let registry =
        EngineRegistry::new().with(Box::new(PreloadFramework::new(FrameworkProfile::mnn())));
    let models = models(quick);
    let matrix = run_matrix(&registry, &models, &[DeviceSpec::oneplus_12()]);
    let rows = models
        .iter()
        .map(|model| {
            let report = matrix
                .report("MNN", &model.abbr)
                .expect("flagship fits the motivation models");
            Table1Row {
                model: model.abbr.clone(),
                params_m: model.params_m(),
                peak_memory_mb: report.peak_memory_mb,
                average_memory_mb: report.average_memory_mb,
                load_ms: report.load_busy_ms,
                transform_ms: report.transform_busy_ms,
                infer_ms: report.kernel_busy_ms,
            }
        })
        .collect();
    Table1 { rows }
}

impl std::fmt::Display for Table1 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Table 1: memory usage and latency of preloaded models (MNN profile, OnePlus 12)"
        )?;
        let mut t = TextTable::new(&[
            "Model",
            "# Params (M)",
            "Peak (MB)",
            "Avg. (MB)",
            "Load (ms)",
            "Trans. (ms)",
            "Infer (ms)",
        ]);
        for r in &self.rows {
            t.row(&[
                r.model.clone(),
                format!("{:.0}", r.params_m),
                format!("{:.0}", r.peak_memory_mb),
                format!("{:.0}", r.average_memory_mb),
                format!("{:.0}", r.load_ms),
                format!("{:.0}", r.transform_ms),
                format!("{:.0}", r.infer_ms),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_one_row_with_the_papers_shape() {
        let result = run(true);
        assert_eq!(result.rows.len(), 1);
        let r = &result.rows[0];
        // The paper's headline observation: initialization (load + transform)
        // dominates inference, and peak memory exceeds average memory.
        assert!(r.load_ms + r.transform_ms > r.infer_ms);
        assert!(r.peak_memory_mb >= r.average_memory_mb);
        // Peak memory is well above the raw weight size (redundant copies).
        assert!(
            r.peak_memory_mb
                > 1.2 * ModelZoo::gptneo_small().graph().total_weight_bytes() as f64
                    / (1024.0 * 1024.0)
        );
        let text = result.to_string();
        assert!(text.contains("GPTN-S"));
    }
}
