//! Continuous-batching decode benchmark — beyond the paper: what joining
//! generative requests into a shared decode batch buys over serving them
//! one-shot, on the same fleet and workload.
//!
//! Each cell serves one seeded [`DecodeWorkloadSpec`] (autoregressive
//! requests with prompt/output token counts) through the
//! [`DecodeEngine`] at one batch width: `b=1` is the one-shot baseline
//! (every request prefills and decodes alone), wider cells let requests
//! join and leave at step boundaries under the KV token budget. Because a
//! decode step's cost is dominated by streaming the weights — which a batch
//! reads once for all members — decode tokens/s should climb with the batch
//! width while per-request ITL degrades only mildly; TTFT of waiting
//! requests is governed by the join heuristic. The cell records exactly
//! that trade: tokens/s, TTFT p50/p95/p99 and ITL p50/p95/p99.
//!
//! Every cell runs twice — pinned to a width-1 pool and on the process-wide
//! pool — and records whether the two `ServeReport`s were byte-identical,
//! which they must be: batch composition is decided by the deterministic
//! join rule at step boundaries, never by pool scheduling.
//!
//! Like `fleet_scale` and `overload`, this experiment is intentionally
//! **not** part of `bin/all` — the serial-vs-parallel self-check would be
//! tautological inside a pool worker. Run it standalone:
//!
//! `cargo run --release -p flashmem-bench --bin decode [-- --quick] [--threads N] [--json PATH] [--trace-out PATH]`

use std::sync::Arc;
use std::time::Instant;

use flashmem_core::pool::{self, ThreadPool};
use flashmem_core::{ArtifactCache, FlashMemConfig};
use flashmem_graph::{ModelSpec, ModelZoo};
use flashmem_serve::{
    ArrivalPattern, BatchConfig, DecodeEngine, DecodeWorkloadSpec, FleetTrace, ServeReport,
    ServeRequest, TraceConfig,
};

use crate::experiments::serve::serving_fleet;
use crate::fmt_ms;
use crate::json::Json;
use crate::table::TextTable;

const SEED: u64 = 0xDEC0_DE5D;

/// One batch-width cell of the sweep: the same generative workload served
/// at one `max_batch`.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeCell {
    /// Serving mode: `one-shot` for `b=1`, `continuous(b=N)` otherwise.
    pub mode: String,
    /// The batch width this cell ran at.
    pub max_batch: usize,
    /// Generative requests submitted (all must complete).
    pub requests: usize,
    /// Requests completed.
    pub completed: usize,
    /// Simulated fleet makespan (ms).
    pub makespan_ms: f64,
    /// Total decode tokens emitted by completed requests.
    pub decode_tokens: usize,
    /// Decode tokens per simulated second — the headline batching win.
    pub tokens_per_s: f64,
    /// Time-to-first-token percentiles (ms, simulated); `None` (JSON
    /// `null`) when nothing completed.
    pub ttft_p50_ms: Option<f64>,
    /// TTFT p95.
    pub ttft_p95_ms: Option<f64>,
    /// TTFT p99.
    pub ttft_p99_ms: Option<f64>,
    /// Inter-token-latency percentiles over every decode-step gap (ms).
    pub itl_p50_ms: Option<f64>,
    /// ITL p95.
    pub itl_p95_ms: Option<f64>,
    /// ITL p99.
    pub itl_p99_ms: Option<f64>,
    /// True when the pool-parallel report was byte-identical to the
    /// width-1 serial one (always expected; recorded so CI can grep).
    pub identical: bool,
    /// Wall-clock of the width-1 (serial) run, in ms.
    pub serial_ms: f64,
    /// Wall-clock of the pool-parallel run, in ms.
    pub parallel_ms: f64,
}

/// The decode sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeBench {
    /// Pool width the parallel runs used.
    pub threads: usize,
    /// Devices in the fleet.
    pub fleet: usize,
    /// The per-device KV token budget every cell enforced.
    pub token_budget: u64,
    /// One cell per batch width, ascending; the first is the one-shot
    /// baseline.
    pub cells: Vec<DecodeCell>,
}

fn fleet_size(quick: bool) -> usize {
    if quick {
        2
    } else {
        4
    }
}

fn batch_widths(quick: bool) -> Vec<usize> {
    if quick {
        vec![1, 4]
    } else {
        vec![1, 2, 4, 8]
    }
}

fn models(quick: bool) -> Vec<ModelSpec> {
    if quick {
        vec![ModelZoo::gptneo_small()]
    } else {
        vec![ModelZoo::gptneo_small(), ModelZoo::whisper_medium()]
    }
}

/// The generative workload: a burst of prompts far faster than one-shot
/// serving drains, so wider batches have a queue to amortize over.
fn workload(quick: bool, models: &[ModelSpec]) -> Vec<ServeRequest> {
    DecodeWorkloadSpec {
        pattern: ArrivalPattern::Bursty {
            burst_size: 4,
            gap_ms: 200.0,
        },
        requests: if quick { 8 } else { 24 },
        tenants: 2,
        prompt_tokens: (8, 48),
        output_tokens: (8, 32),
        seed: SEED,
    }
    .generate(models)
}

fn batch_config(max_batch: usize) -> BatchConfig {
    BatchConfig {
        max_batch,
        ..BatchConfig::default()
    }
}

/// One timed run on `pool` with a fresh engine and plan cache (fresh so the
/// serial and parallel legs see identical cache telemetry).
fn timed_run(
    pool: &ThreadPool,
    fleet: usize,
    max_batch: usize,
    requests: &[ServeRequest],
) -> (ServeReport, f64) {
    let engine = DecodeEngine::new(serving_fleet(fleet), FlashMemConfig::memory_priority())
        .with_cache(Arc::new(ArtifactCache::new()))
        .with_batching(batch_config(max_batch));
    let start = Instant::now();
    let report = engine.run_on(pool, requests).expect("decode bench run");
    (report, start.elapsed().as_secs_f64() * 1e3)
}

/// Run the sweep with parallel cells on the process-wide [`pool::global`].
pub fn run(quick: bool) -> DecodeBench {
    run_on(pool::global(), quick)
}

/// The widest continuous cell re-run with event tracing enabled — the
/// [`FleetTrace`] behind the decode binary's `--trace-out` flag, including
/// the `Prefill` / `DecodeStep` spans and `BatchJoin` / `BatchLeave`
/// instants of the batch lifecycle.
pub fn traced_showcase(quick: bool) -> FleetTrace {
    let fleet = fleet_size(quick);
    let models = models(quick);
    let requests = workload(quick, &models);
    let max_batch = *batch_widths(quick).last().expect("widths are non-empty");
    let report = DecodeEngine::new(serving_fleet(fleet), FlashMemConfig::memory_priority())
        .with_cache(Arc::new(ArtifactCache::new()))
        .with_batching(batch_config(max_batch))
        .with_trace(TraceConfig::enabled())
        .run(&requests)
        .expect("traced decode run");
    report.trace.expect("tracing was enabled")
}

/// [`run`] with an explicit pool for the parallel legs. The sweep itself is
/// sequential on purpose — each cell's serial-vs-parallel self-check is the
/// thing being recorded.
pub fn run_on(pool: &ThreadPool, quick: bool) -> DecodeBench {
    let fleet = fleet_size(quick);
    let models = models(quick);
    let requests = workload(quick, &models);
    let serial_pool = ThreadPool::with_threads(1);
    let cells = batch_widths(quick)
        .into_iter()
        .map(|max_batch| {
            let (serial, serial_ms) = timed_run(&serial_pool, fleet, max_batch, &requests);
            let (parallel, parallel_ms) = timed_run(pool, fleet, max_batch, &requests);
            let identical = format!("{serial:?}") == format!("{parallel:?}");
            DecodeCell {
                mode: if max_batch == 1 {
                    "one-shot".to_string()
                } else {
                    format!("continuous(b={max_batch})")
                },
                max_batch,
                requests: requests.len(),
                completed: serial.completed(),
                makespan_ms: serial.makespan_ms(),
                decode_tokens: serial.decode_tokens,
                tokens_per_s: serial.tokens_per_s,
                ttft_p50_ms: serial.ttft.as_ref().map(|s| s.p50_ms),
                ttft_p95_ms: serial.ttft.as_ref().map(|s| s.p95_ms),
                ttft_p99_ms: serial.ttft.as_ref().map(|s| s.p99_ms),
                itl_p50_ms: serial.itl.as_ref().map(|s| s.p50_ms),
                itl_p95_ms: serial.itl.as_ref().map(|s| s.p95_ms),
                itl_p99_ms: serial.itl.as_ref().map(|s| s.p99_ms),
                identical,
                serial_ms,
                parallel_ms,
            }
        })
        .collect();
    DecodeBench {
        threads: pool.threads(),
        fleet,
        token_budget: BatchConfig::default().token_budget,
        cells,
    }
}

impl DecodeBench {
    /// Machine-readable per-cell metrics. `serial_ms` / `parallel_ms` are
    /// wall-clock telemetry; `scripts/diff-bench-json.sh` strips them
    /// (alongside `elapsed_ms`/`threads`) before demanding byte-identity.
    pub fn to_json(&self) -> Json {
        let cells: Vec<Json> = self
            .cells
            .iter()
            .map(|c| {
                Json::obj()
                    .field("mode", c.mode.clone())
                    .field("max_batch", c.max_batch)
                    .field("requests", c.requests)
                    .field("completed", c.completed)
                    .field("makespan_ms", c.makespan_ms)
                    .field("decode_tokens", c.decode_tokens)
                    .field("tokens_per_s", c.tokens_per_s)
                    .field("ttft_p50_ms", c.ttft_p50_ms)
                    .field("ttft_p95_ms", c.ttft_p95_ms)
                    .field("ttft_p99_ms", c.ttft_p99_ms)
                    .field("itl_p50_ms", c.itl_p50_ms)
                    .field("itl_p95_ms", c.itl_p95_ms)
                    .field("itl_p99_ms", c.itl_p99_ms)
                    .field("identical_to_serial", c.identical)
                    .field("serial_ms", c.serial_ms)
                    .field("parallel_ms", c.parallel_ms)
            })
            .collect();
        Json::obj()
            .field("experiment", "decode")
            .field("fleet", self.fleet)
            .field("token_budget", self.token_budget)
            .field("cells", Json::Arr(cells))
    }
}

impl std::fmt::Display for DecodeBench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Continuous-batching decode sweep on a {}-device fleet, {}-token KV budget ({} pool thread{})",
            self.fleet,
            self.token_budget,
            self.threads,
            if self.threads == 1 { "" } else { "s" }
        )?;
        let mut t = TextTable::new(&[
            "Mode",
            "Done",
            "Makespan",
            "Tokens",
            "Tok/s",
            "TTFT p50",
            "TTFT p99",
            "ITL p50",
            "ITL p99",
            "Identical",
        ]);
        for c in &self.cells {
            t.row(&[
                c.mode.clone(),
                format!("{}/{}", c.completed, c.requests),
                format!("{:.0}", c.makespan_ms),
                format!("{}", c.decode_tokens),
                format!("{:.1}", c.tokens_per_s),
                fmt_ms(c.ttft_p50_ms),
                fmt_ms(c.ttft_p99_ms),
                fmt_ms(c.itl_p50_ms),
                fmt_ms(c.itl_p99_ms),
                format!("{}", c.identical),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuous_batching_beats_one_shot_and_matches_serial() {
        let bench = run_on(&ThreadPool::with_threads(4), true);
        assert_eq!(bench.cells.len(), 2);
        let one_shot = &bench.cells[0];
        let continuous = &bench.cells[1];
        assert_eq!(one_shot.max_batch, 1);
        for cell in &bench.cells {
            assert_eq!(cell.completed, cell.requests, "{cell:?}");
            assert!(cell.identical, "parallel decode diverged: {cell:?}");
            assert!(cell.ttft_p50_ms.is_some() && cell.itl_p99_ms.is_some());
        }
        // Same workload, same token count — batching only changes *when*.
        assert_eq!(one_shot.decode_tokens, continuous.decode_tokens);
        assert!(
            continuous.tokens_per_s > one_shot.tokens_per_s,
            "batched decode must out-throughput one-shot: {:.1} vs {:.1} tok/s",
            continuous.tokens_per_s,
            one_shot.tokens_per_s
        );
        // The JSON view (checked here so the quick sweep runs once).
        let json = bench.to_json().pretty();
        assert!(json.contains("\"experiment\": \"decode\""));
        assert!(json.contains("\"mode\": \"one-shot\""));
        assert!(json.contains("\"mode\": \"continuous(b=4)\""));
        assert!(json.contains("\"tokens_per_s\""));
        assert!(json.contains("\"ttft_p50_ms\""));
        assert!(json.contains("\"ttft_p99_ms\""));
        assert!(json.contains("\"itl_p50_ms\""));
        assert!(json.contains("\"itl_p99_ms\""));
        assert!(json.contains("\"identical_to_serial\": true"));
    }

    #[test]
    fn traced_showcase_records_the_batch_lifecycle() {
        use flashmem_serve::TraceKind;

        let trace = traced_showcase(true);
        assert_eq!(trace.processes.len(), fleet_size(true));
        let mut kinds: Vec<TraceKind> = Vec::new();
        for process in &trace.processes {
            assert!(
                !process.events.is_empty(),
                "{} recorded nothing",
                process.name
            );
            for event in &process.events {
                kinds.push(event.kind);
            }
        }
        for expected in [
            TraceKind::Prefill,
            TraceKind::DecodeStep,
            TraceKind::BatchJoin,
            TraceKind::BatchLeave,
        ] {
            assert!(
                kinds.contains(&expected),
                "trace is missing {expected:?} events"
            );
        }
    }
}
