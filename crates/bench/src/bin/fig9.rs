//! Regenerates the paper's fig9 on the simulated device.
//!
//! Usage: `cargo run --release -p flashmem-bench --bin fig9 [-- --quick]`
//! The `--quick` flag restricts the sweep to a reduced model set.

use flashmem_bench::experiments::fig9;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let result = fig9::run(quick);
    println!("{result}");
}
