//! Regenerates the `table7` experiment on the simulated device.
//!
//! Usage: `cargo run --release -p flashmem-bench --bin table7 [-- --quick] [--json PATH]`
//! The `--quick` flag restricts the sweep to a reduced set; `--json`
//! additionally writes the result as machine-readable JSON.

use flashmem_bench::experiments::table7;

fn main() {
    flashmem_bench::run_bin_with_json(table7::run, table7::Table7::to_json);
}
