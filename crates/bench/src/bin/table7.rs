//! Regenerates the paper's table7 on the simulated device.
//!
//! Usage: `cargo run --release -p flashmem-bench --bin table7 [-- --quick]`
//! The `--quick` flag restricts the sweep to a reduced model set.

use flashmem_bench::experiments::table7;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let result = table7::run(quick);
    println!("{result}");
}
