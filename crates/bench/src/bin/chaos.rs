//! The chaos benchmark: serve the four fault scenarios (device loss
//! mid-run, flaky device, correlated fault burst, fault under flash crowd)
//! against the same seeded fault plan unprotected and with the recovery kit
//! (retry budgets + failover + quarantine/probe circuit breaker), and
//! report goodput, SLO attainment, retry amplification and the planner's
//! retry/failover/quarantine/probe tallies under both regimes.
//!
//! Usage: `cargo run --release -p flashmem-bench --bin chaos [-- --quick] [--threads N] [--json PATH] [--trace-out PATH]`
//! `--quick` runs the 3-device fleet (CI's chaos smoke step);
//! `--threads 1` pins the protected runs' parallel leg to the serial path,
//! which is what the CI determinism diff compares against. `--trace-out
//! PATH` re-runs the device-loss cell with event tracing enabled — the
//! exported Chrome trace includes the `Fault`/`Retry`/`Failover` instants
//! and is byte-identical at every `--threads` width.

use flashmem_bench::experiments::chaos;

fn main() {
    flashmem_bench::run_bin_with_json_and_trace(
        chaos::run,
        chaos::ChaosBench::to_json,
        chaos::traced_showcase,
    );
}
