//! Regenerates the paper's table1 on the simulated device.
//!
//! Usage: `cargo run --release -p flashmem-bench --bin table1 [-- --quick]`
//! The `--quick` flag restricts the sweep to a reduced model set.

use flashmem_bench::experiments::table1;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let result = table1::run(quick);
    println!("{result}");
}
