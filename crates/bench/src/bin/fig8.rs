//! Regenerates the paper's fig8 on the simulated device.
//!
//! Usage: `cargo run --release -p flashmem-bench --bin fig8 [-- --quick]`
//! The `--quick` flag restricts the sweep to a reduced model set.

use flashmem_bench::experiments::fig8;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let result = fig8::run(quick);
    println!("{result}");
}
