//! Regenerates the paper's fig4 on the simulated device.
//!
//! Usage: `cargo run --release -p flashmem-bench --bin fig4 [-- --quick]`
//! The `--quick` flag restricts the sweep to a reduced model set.

use flashmem_bench::experiments::fig4;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let result = fig4::run(quick);
    println!("{result}");
}
