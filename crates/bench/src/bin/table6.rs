//! Regenerates the paper's table6 on the simulated device.
//!
//! Usage: `cargo run --release -p flashmem-bench --bin table6 [-- --quick]`
//! The `--quick` flag restricts the sweep to a reduced model set.

use flashmem_bench::experiments::table6;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let result = table6::run(quick);
    println!("{result}");
}
