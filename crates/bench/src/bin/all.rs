//! Regenerates every table and figure of the paper's evaluation — plus the
//! serving sweep — in one run, and writes machine-readable JSON results next
//! to the text tables.
//!
//! Usage: `cargo run --release -p flashmem-bench --bin all [-- --quick] [--json-dir DIR]`
//! JSON goes to `target/bench-json/` by default; every run of this binary
//! emits it so results can be diffed across PRs.

use std::path::PathBuf;

use flashmem_bench::experiments::*;
use flashmem_bench::{plan_cache_stats, write_json};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_dir: PathBuf = match args.iter().position(|a| a == "--json-dir") {
        Some(i) => match args.get(i + 1) {
            Some(dir) => PathBuf::from(dir),
            None => {
                eprintln!("error: --json-dir requires a directory argument");
                std::process::exit(2);
            }
        },
        None => PathBuf::from("target/bench-json"),
    };

    println!("{}\n", table1::run(quick));
    println!("{}\n", fig2::run(quick));
    println!("{}\n", table4::run(quick));
    println!("{}\n", fig4::run(quick));
    println!("{}\n", table6::run(quick));

    let t7 = table7::run(quick);
    println!("{t7}\n");
    let t8 = table8::run(quick);
    println!("{t8}\n");
    let f6 = fig6::run(quick);
    println!("{f6}\n");

    println!("{}\n", fig7::run(quick));
    println!("{}\n", fig8::run(quick));
    println!("{}\n", fig9::run(quick));
    println!("{}\n", table9::run(quick));

    let f10 = fig10::run(quick);
    println!("{f10}\n");
    let serving = serve::run(quick);
    println!("{serving}\n");

    for (name, json) in [
        ("table7", t7.to_json()),
        ("table8", t8.to_json()),
        ("fig6", f6.to_json()),
        ("fig10", f10.to_json()),
        ("serve", serving.to_json()),
    ] {
        let path = json_dir.join(format!("{name}.json"));
        write_json(&path, &json).expect("write bench JSON");
        println!("wrote {}", path.display());
    }

    println!("\nshared plan cache: {}", plan_cache_stats());
}
