//! Regenerates every table and figure of the paper's evaluation in one run.
//!
//! Usage: `cargo run --release -p flashmem-bench --bin all [-- --quick]`

use flashmem_bench::experiments::*;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}\n", table1::run(quick));
    println!("{}\n", fig2::run(quick));
    println!("{}\n", table4::run(quick));
    println!("{}\n", fig4::run(quick));
    println!("{}\n", table6::run(quick));
    println!("{}\n", table7::run(quick));
    println!("{}\n", table8::run(quick));
    println!("{}\n", fig6::run(quick));
    println!("{}\n", fig7::run(quick));
    println!("{}\n", fig8::run(quick));
    println!("{}\n", fig9::run(quick));
    println!("{}\n", table9::run(quick));
    println!("{}\n", fig10::run(quick));
}
