//! Regenerates every table and figure of the paper's evaluation — plus the
//! serving sweep — in one run, and writes machine-readable JSON results next
//! to the text tables.
//!
//! Usage: `cargo run --release -p flashmem-bench --bin all [-- --quick] [--threads N] [--json-dir DIR]`
//! JSON goes to `target/bench-json/` by default; every run of this binary
//! emits it so results can be diffed across PRs.
//!
//! The independent experiments run **concurrently** on the process-wide
//! work-stealing pool (width from `--threads N`, else `FLASHMEM_THREADS`,
//! else the machine), and each experiment's internal sweep runs serially
//! inside its job (nested pool calls are inline by design — the outer
//! fan-out already owns the hardware). Output is printed in the fixed
//! paper order regardless of completion order, and every JSON document
//! carries `elapsed_ms`/`threads` telemetry; `--threads 1` reproduces the
//! serial run byte for byte (modulo those two telemetry fields).

use std::path::PathBuf;
use std::time::Instant;

use flashmem_bench::experiments::*;
use flashmem_bench::{configure_pool_from_args, plan_cache_stats, with_timing, write_json, Json};

/// One experiment's rendered output, reassembled in submission order.
struct Output {
    /// JSON file stem for the experiments that emit machine-readable cells.
    json_name: Option<&'static str>,
    text: String,
    json: Option<Json>,
    elapsed_ms: f64,
}

/// Wrap an experiment without JSON output as a pool job.
fn job<T: std::fmt::Display>(
    quick: bool,
    run: impl FnOnce(bool) -> T + Send + 'static,
) -> Box<dyn FnOnce() -> Output + Send> {
    Box::new(move || {
        let start = Instant::now();
        let result = run(quick);
        Output {
            json_name: None,
            text: result.to_string(),
            json: None,
            elapsed_ms: start.elapsed().as_secs_f64() * 1e3,
        }
    })
}

/// Wrap a JSON-emitting experiment as a pool job.
fn json_job<T: std::fmt::Display>(
    quick: bool,
    name: &'static str,
    run: impl FnOnce(bool) -> T + Send + 'static,
    to_json: impl FnOnce(&T) -> Json + Send + 'static,
) -> Box<dyn FnOnce() -> Output + Send> {
    Box::new(move || {
        let start = Instant::now();
        let result = run(quick);
        Output {
            json_name: Some(name),
            text: result.to_string(),
            json: Some(to_json(&result)),
            elapsed_ms: start.elapsed().as_secs_f64() * 1e3,
        }
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_dir: PathBuf = match args.iter().position(|a| a == "--json-dir") {
        Some(i) => match args.get(i + 1) {
            Some(dir) => PathBuf::from(dir),
            None => {
                eprintln!("error: --json-dir requires a directory argument");
                std::process::exit(2);
            }
        },
        None => PathBuf::from("target/bench-json"),
    };
    let pool = configure_pool_from_args(&args);

    // The paper's presentation order; results are printed in exactly this
    // order no matter which experiment finishes first.
    let jobs: Vec<Box<dyn FnOnce() -> Output + Send>> = vec![
        job(quick, table1::run),
        job(quick, fig2::run),
        job(quick, table4::run),
        job(quick, fig4::run),
        job(quick, table6::run),
        json_job(quick, "table7", table7::run, table7::Table7::to_json),
        json_job(quick, "table8", table8::run, table8::Table8::to_json),
        json_job(quick, "fig6", fig6::run, fig6::Fig6::to_json),
        job(quick, fig7::run),
        job(quick, fig8::run),
        job(quick, fig9::run),
        job(quick, table9::run),
        json_job(quick, "fig10", fig10::run, fig10::Fig10::to_json),
        json_job(quick, "serve", serve::run, serve::ServeBench::to_json),
    ];

    let start = Instant::now();
    let outputs = pool.run_jobs(jobs);
    let total_ms = start.elapsed().as_secs_f64() * 1e3;

    for output in &outputs {
        println!("{}\n", output.text);
    }
    for output in &outputs {
        if let (Some(name), Some(json)) = (output.json_name, output.json.clone()) {
            let path = json_dir.join(format!("{name}.json"));
            let doc = with_timing(json, output.elapsed_ms, pool.threads());
            write_json(&path, &doc).expect("write bench JSON");
            println!("wrote {}", path.display());
        }
    }

    let busy_ms: f64 = outputs.iter().map(|o| o.elapsed_ms).sum();
    println!(
        "\nwall clock: {total_ms:.0} ms on {} pool thread{} ({busy_ms:.0} ms of experiment time)",
        pool.threads(),
        if pool.threads() == 1 { "" } else { "s" }
    );
    println!("shared plan cache: {}", plan_cache_stats());
}
