//! The multi-tenant serving benchmark: arrival patterns × scheduling
//! policies (FIFO, priority, affinity, preemptive, EDF, least-laxity,
//! deadline-preemptive) × fleet sizes, reporting p50/p95/p99 latency
//! (overall and per priority), SLO attainment with per-cause deadline-miss
//! counts, mean admission laxity, preemption counts, queue busy fractions
//! and plan-cache hit rates.
//!
//! Usage: `cargo run --release -p flashmem-bench --bin serve [-- --quick] [--json PATH]`
//! The `--quick` flag runs the small smoke sweep (CI's serve-smoke step);
//! `--json PATH` additionally writes the per-cell metrics as JSON.

use flashmem_bench::experiments::serve;

fn main() {
    flashmem_bench::run_bin_with_json(serve::run, serve::ServeBench::to_json);
}
