//! The multi-tenant serving benchmark: arrival patterns × scheduling
//! policies (FIFO, priority, affinity, preemptive, EDF, least-laxity,
//! deadline-preemptive) × fleet sizes, reporting p50/p95/p99 latency
//! (overall and per priority), SLO attainment with per-cause deadline-miss
//! counts, mean admission laxity, preemption counts, queue busy fractions
//! and plan-cache hit rates.
//!
//! Usage: `cargo run --release -p flashmem-bench --bin serve [-- --quick] [--json PATH] [--trace-out PATH]`
//! The `--quick` flag runs the small smoke sweep (CI's serve-smoke step);
//! `--json PATH` additionally writes the per-cell metrics (including each
//! request's phase breakdown) as JSON; `--trace-out PATH` re-runs the
//! showcase cell with event tracing enabled and writes a Chrome trace
//! (open in Perfetto or `chrome://tracing`).

use flashmem_bench::experiments::serve;

fn main() {
    flashmem_bench::run_bin_with_json_and_trace(
        serve::run,
        serve::ServeBench::to_json,
        serve::traced_showcase,
    );
}
