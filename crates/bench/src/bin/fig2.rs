//! Regenerates the paper's fig2 on the simulated device.
//!
//! Usage: `cargo run --release -p flashmem-bench --bin fig2 [-- --quick]`
//! The `--quick` flag restricts the sweep to a reduced model set.

use flashmem_bench::experiments::fig2;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let result = fig2::run(quick);
    println!("{result}");
}
