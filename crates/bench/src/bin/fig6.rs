//! Regenerates the `fig6` experiment on the simulated device.
//!
//! Usage: `cargo run --release -p flashmem-bench --bin fig6 [-- --quick] [--json PATH]`
//! The `--quick` flag restricts the sweep to a reduced set; `--json`
//! additionally writes the result as machine-readable JSON.

use flashmem_bench::experiments::fig6;

fn main() {
    flashmem_bench::run_bin_with_json(fig6::run, fig6::Fig6::to_json);
}
