//! Regenerates the paper's fig6 on the simulated device.
//!
//! Usage: `cargo run --release -p flashmem-bench --bin fig6 [-- --quick]`
//! The `--quick` flag restricts the sweep to a reduced model set.

use flashmem_bench::experiments::fig6;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let result = fig6::run(quick);
    println!("{result}");
}
