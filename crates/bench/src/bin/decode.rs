//! The continuous-batching decode benchmark: serve the same seeded
//! generative workload at batch widths 1 (one-shot baseline) through 8 and
//! report decode tokens/s, TTFT p50/p95/p99 and ITL p50/p95/p99 per cell.
//!
//! Usage: `cargo run --release -p flashmem-bench --bin decode [-- --quick] [--threads N] [--json PATH] [--trace-out PATH]`
//! `--quick` runs the 2-device fleet at widths 1 and 4 (CI's decode smoke
//! step); `--threads 1` pins the parallel legs to the serial path, which is
//! what the CI determinism diff compares against. `--trace-out PATH`
//! re-runs the widest cell with event tracing enabled — the exported Chrome
//! trace includes the `Prefill`/`DecodeStep` spans and
//! `BatchJoin`/`BatchLeave` instants and is byte-identical at every
//! `--threads` width.

use flashmem_bench::experiments::decode;

fn main() {
    flashmem_bench::run_bin_with_json_and_trace(
        decode::run,
        decode::DecodeBench::to_json,
        decode::traced_showcase,
    );
}
