//! The overload-survival benchmark: serve the four adversarial scenarios
//! (flash crowd, diurnal ramp, hot tenant, fleet ramp) unprotected and with
//! the full overload kit (bounded queues + admission control + steal), and
//! report shed counts by cause, steals, queue high-water and the SLO
//! attainment of the admitted requests under both regimes.
//!
//! Usage: `cargo run --release -p flashmem-bench --bin overload [-- --quick] [--threads N] [--json PATH] [--trace-out PATH]`
//! `--quick` runs the 3-device fleet (CI's overload smoke step);
//! `--threads 1` pins the protected runs' parallel leg to the serial path,
//! which is what the CI determinism diff compares against. `--trace-out
//! PATH` re-runs the flash-crowd cell with event tracing enabled — the
//! exported Chrome trace includes the `Reject`/`Steal` instants and is
//! byte-identical at every `--threads` width.

use flashmem_bench::experiments::overload;

fn main() {
    flashmem_bench::run_bin_with_json_and_trace(
        overload::run,
        overload::OverloadBench::to_json,
        overload::traced_showcase,
    );
}
