//! The fleet-scale serving benchmark: ramp a flash-crowd workload over
//! 8 → 64 → 256 → 1024 simulated devices, stepping the fleet once on the
//! exact serial loop (`--threads 1` reference) and once fanned out on the
//! work-stealing pool, and report per-device step wall-clock, fleet-parallel
//! speedup and byte-identity of the two reports.
//!
//! Usage: `cargo run --release -p flashmem-bench --bin fleet_scale [-- --quick] [--threads N] [--json PATH] [--trace-out PATH]`
//! `--quick` runs the small 8 → 32 ramp (CI's fleet-scale smoke step);
//! `--threads 1` pins the "parallel" run to the serial path too, which is
//! what the CI determinism diff compares against. `--trace-out PATH`
//! re-runs the smallest ramp cell with event tracing enabled and writes a
//! Chrome trace; the file is byte-identical at every `--threads` width.

use flashmem_bench::experiments::fleet_scale;

fn main() {
    flashmem_bench::run_bin_with_json_and_trace(
        fleet_scale::run,
        fleet_scale::FleetScale::to_json,
        fleet_scale::traced_showcase,
    );
}
