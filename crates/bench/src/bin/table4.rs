//! Regenerates the paper's table4 on the simulated device.
//!
//! Usage: `cargo run --release -p flashmem-bench --bin table4 [-- --quick]`
//! The `--quick` flag restricts the sweep to a reduced model set.

use flashmem_bench::experiments::table4;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let result = table4::run(quick);
    println!("{result}");
}
