//! Regenerates the `table8` experiment on the simulated device.
//!
//! Usage: `cargo run --release -p flashmem-bench --bin table8 [-- --quick] [--json PATH]`
//! The `--quick` flag restricts the sweep to a reduced set; `--json`
//! additionally writes the result as machine-readable JSON.

use flashmem_bench::experiments::table8;

fn main() {
    flashmem_bench::run_bin_with_json(table8::run, table8::Table8::to_json);
}
