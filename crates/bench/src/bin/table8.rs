//! Regenerates the paper's table8 on the simulated device.
//!
//! Usage: `cargo run --release -p flashmem-bench --bin table8 [-- --quick]`
//! The `--quick` flag restricts the sweep to a reduced model set.

use flashmem_bench::experiments::table8;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let result = table8::run(quick);
    println!("{result}");
}
