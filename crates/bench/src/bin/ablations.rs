//! Runs the design-choice ablation sweeps (chunk size, λ, α, window length).
//!
//! Usage: `cargo run --release -p flashmem-bench --bin ablations [-- --quick]`

use flashmem_bench::experiments::ablations;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", ablations::run(quick));
}
