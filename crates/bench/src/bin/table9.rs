//! Regenerates the paper's table9 on the simulated device.
//!
//! Usage: `cargo run --release -p flashmem-bench --bin table9 [-- --quick]`
//! The `--quick` flag restricts the sweep to a reduced model set.

use flashmem_bench::experiments::table9;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let result = table9::run(quick);
    println!("{result}");
}
