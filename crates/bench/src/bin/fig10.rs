//! Regenerates the paper's fig10 on the simulated device.
//!
//! Usage: `cargo run --release -p flashmem-bench --bin fig10 [-- --quick]`
//! The `--quick` flag restricts the sweep to a reduced model set.

use flashmem_bench::experiments::fig10;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let result = fig10::run(quick);
    println!("{result}");
}
