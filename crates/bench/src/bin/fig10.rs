//! Regenerates the `fig10` experiment on the simulated device.
//!
//! Usage: `cargo run --release -p flashmem-bench --bin fig10 [-- --quick] [--json PATH]`
//! The `--quick` flag restricts the sweep to a reduced set; `--json`
//! additionally writes the result as machine-readable JSON.

use flashmem_bench::experiments::fig10;

fn main() {
    flashmem_bench::run_bin_with_json(fig10::run, fig10::Fig10::to_json);
}
