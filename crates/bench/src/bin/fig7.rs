//! Regenerates the paper's fig7 on the simulated device.
//!
//! Usage: `cargo run --release -p flashmem-bench --bin fig7 [-- --quick]`
//! The `--quick` flag restricts the sweep to a reduced model set.

use flashmem_bench::experiments::fig7;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let result = fig7::run(quick);
    println!("{result}");
}
