//! Minimal plain-text table rendering for the experiment binaries.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (shorter rows are padded with empty cells).
    pub fn row(&mut self, cells: &[String]) {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Append a row of string slices.
    pub fn row_strs(&mut self, cells: &[&str]) {
        self.row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.chars().count());
                }
            }
        }
        widths
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let widths = self.widths();
        let render = |cells: &[String], f: &mut std::fmt::Formatter<'_>| -> std::fmt::Result {
            let mut parts = Vec::new();
            for (i, cell) in cells.iter().enumerate() {
                parts.push(format!("{cell:<width$}", width = widths[i]));
            }
            writeln!(f, "| {} |", parts.join(" | "))
        };
        render(&self.header, f)?;
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "|-{}-|", sep.join("-|-"))?;
        for row in &self.rows {
            render(row, f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["Model", "Latency (ms)"]);
        t.row_strs(&["GPTN-S", "577"]);
        t.row_strs(&["SD-UNet", "3212"]);
        let text = t.to_string();
        assert!(text.contains("| GPTN-S "));
        assert!(text.contains("| SD-UNet "));
        assert!(text.lines().count() >= 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(&["a", "b", "c"]);
        t.row(&["x".to_string()]);
        let text = t.to_string();
        assert!(text.lines().last().unwrap().matches('|').count() >= 4);
    }
}
