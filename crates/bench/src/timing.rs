//! Minimal wall-clock benchmark harness.
//!
//! Criterion is unavailable offline, so the `benches/` targets are plain
//! `harness = false` binaries built on this module: warm up once, time a
//! fixed number of iterations, print mean and best. The numbers are
//! indicative (no outlier rejection or statistical analysis) — good enough
//! to catch order-of-magnitude regressions in the planner and simulator hot
//! paths.

use std::hint::black_box;
use std::time::Instant;

/// Time `iters` runs of `f` (after one warm-up run) and print a summary line
/// under `name`.
pub fn bench<T>(name: &str, iters: usize, mut f: impl FnMut() -> T) {
    assert!(iters > 0, "bench needs at least one iteration");
    black_box(f());
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..iters {
        let start = Instant::now();
        black_box(f());
        let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
        best = best.min(elapsed_ms);
        total += elapsed_ms;
    }
    println!(
        "{name:<45} mean {:>9.3} ms   best {:>9.3} ms   ({iters} iters)",
        total / iters as f64,
        best
    );
}

/// Print a group header, mirroring Criterion's `benchmark_group` output
/// structure so the bench logs stay scannable.
pub fn group(name: &str) {
    println!("\n== {name} ==");
}
