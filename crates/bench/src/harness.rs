//! The shared engine × model × device sweep harness.
//!
//! Every comparison experiment in this crate used to wire its frameworks by
//! hand; they now assemble an [`EngineRegistry`] and call [`run_matrix`],
//! which produces one [`MatrixCell`] per combination. Unsupported models and
//! simulator failures (most importantly out-of-memory on small devices) are
//! recorded as `None` reports — the "–" cells and empty bars of the paper's
//! tables and figures.

use std::sync::OnceLock;

use flashmem_baselines::{baseline_registry, flashmem_engine};
use flashmem_core::cache::{run_cached, ArtifactCache, CacheStats};
use flashmem_core::engine::{EngineRegistry, FrameworkKind, InferenceEngine};
use flashmem_core::pool::{self, ThreadPool};
use flashmem_core::ExecutionReport;
use flashmem_gpu_sim::DeviceSpec;
use flashmem_graph::ModelSpec;

use crate::json::Json;

/// Result of one engine on one model on one device.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// Engine display name (distinguishes config variants of one kind).
    pub engine: String,
    /// Engine identity.
    pub kind: FrameworkKind,
    /// Model abbreviation.
    pub model: String,
    /// Device name.
    pub device: String,
    /// Whether the engine claims to support the model at all. A supported
    /// cell with no report is a *runtime* failure (out-of-memory), which the
    /// paper's figures distinguish from operator-gap dashes.
    pub supported: bool,
    /// The run's report; `None` when the engine does not support the model
    /// or the simulator failed (out-of-memory).
    pub report: Option<ExecutionReport>,
}

/// The full sweep result, with lookup helpers shaped after how the
/// experiment drivers consume it.
#[derive(Debug, Clone, Default)]
pub struct BenchMatrix {
    /// All cells, ordered device-major, then model, then engine in
    /// registration order.
    pub cells: Vec<MatrixCell>,
}

impl BenchMatrix {
    /// The report of `engine` (by display name) on `model`, on the sweep's
    /// first device.
    pub fn report(&self, engine: &str, model: &str) -> Option<&ExecutionReport> {
        self.cells
            .iter()
            .find(|c| c.engine == engine && c.model == model)
            .and_then(|c| c.report.as_ref())
    }

    /// The report of `engine` on `model` on a specific `device`.
    pub fn report_on(&self, engine: &str, model: &str, device: &str) -> Option<&ExecutionReport> {
        self.cell_on(engine, model, device)
            .and_then(|c| c.report.as_ref())
    }

    /// The cell (present even for failed runs) of `engine` on `model` on
    /// `device`.
    pub fn cell_on(&self, engine: &str, model: &str, device: &str) -> Option<&MatrixCell> {
        self.cells
            .iter()
            .find(|c| c.engine == engine && c.model == model && c.device == device)
    }

    /// The report of the first engine of `kind` on `model` (first device).
    pub fn report_by_kind(&self, kind: FrameworkKind, model: &str) -> Option<&ExecutionReport> {
        self.cells
            .iter()
            .find(|c| c.kind == kind && c.model == model)
            .and_then(|c| c.report.as_ref())
    }

    /// All cells of one model on the sweep's first device, in engine
    /// registration order.
    pub fn cells_for_model<'a>(&'a self, model: &'a str) -> impl Iterator<Item = &'a MatrixCell> {
        // Cells are device-major, so the first cell carries the first device.
        let first_device = self.cells.first().map(|c| c.device.as_str());
        self.cells
            .iter()
            .filter(move |c| c.model == model && Some(c.device.as_str()) == first_device)
    }

    /// All cells of one engine (by display name), in sweep order.
    pub fn cells_for_engine<'a>(&'a self, engine: &'a str) -> impl Iterator<Item = &'a MatrixCell> {
        self.cells.iter().filter(move |c| c.engine == engine)
    }

    /// Engine display names, in registration order.
    pub fn engine_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        for cell in &self.cells {
            if !names.contains(&cell.engine) {
                names.push(cell.engine.clone());
            }
        }
        names
    }

    /// Model abbreviations, in sweep order.
    pub fn model_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        for cell in &self.cells {
            if !names.contains(&cell.model) {
                names.push(cell.model.clone());
            }
        }
        names
    }

    /// Device names, in sweep order.
    pub fn device_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        for cell in &self.cells {
            if !names.contains(&cell.device) {
                names.push(cell.device.clone());
            }
        }
        names
    }
}

/// The process-wide plan cache every `run_matrix` sweep compiles through.
///
/// Different experiments revisit the same (engine, model, device) cells —
/// Table 7 and Table 8 sweep the identical comparison matrix, `bin/all` runs
/// them back to back — so artifacts are memoised for the process lifetime.
/// Compilation is deterministic; caching changes when LC-OPG solves happen,
/// never their results.
pub fn plan_cache() -> &'static ArtifactCache {
    static CACHE: OnceLock<ArtifactCache> = OnceLock::new();
    CACHE.get_or_init(ArtifactCache::new)
}

/// Counter snapshot of the shared plan cache (`bin/all` prints this at the
/// end of a full regeneration).
pub fn plan_cache_stats() -> CacheStats {
    plan_cache().stats()
}

/// Run one engine on one model/device through the shared plan cache,
/// flattening "unsupported" and simulator failures (OOM) into `None` — how
/// the paper's tables render those cells.
fn run_cell(
    engine: &dyn InferenceEngine,
    model: &ModelSpec,
    device: &DeviceSpec,
) -> Option<ExecutionReport> {
    if !engine.supports(model) {
        return None;
    }
    run_cached(plan_cache(), engine, model, device).ok()
}

/// Run every registered engine on every model on every device, fanning the
/// cells out on the process-wide [`pool::global`] thread pool.
///
/// This is the uniform sweep behind Tables 1/7/8/9, Figures 6/7/8/9/10 and
/// the ablation sweeps: one loop, no per-framework branches. Cells are
/// ordered device-major, then by model, then by engine registration order.
/// Compilation goes through the shared [`plan_cache`], so cells revisited by
/// other experiments in the same process skip their LC-OPG solves.
pub fn run_matrix(
    engines: &EngineRegistry,
    models: &[ModelSpec],
    devices: &[DeviceSpec],
) -> BenchMatrix {
    run_matrix_on(pool::global(), engines, models, devices)
}

/// [`run_matrix`] on an explicit pool. Each (engine, model, device) cell is
/// one pool job; results are reassembled in deterministic input order
/// (device-major, then model, then engine registration order), so the
/// returned matrix — and its JSON — is byte-identical to a `--threads 1`
/// serial run. The engines race on the shared [`plan_cache`], whose per-key
/// in-flight deduplication keeps the LC-OPG solve count identical to the
/// serial sweep's.
pub fn run_matrix_on(
    pool: &ThreadPool,
    engines: &EngineRegistry,
    models: &[ModelSpec],
    devices: &[DeviceSpec],
) -> BenchMatrix {
    let mut combos: Vec<(&dyn InferenceEngine, &ModelSpec, &DeviceSpec)> =
        Vec::with_capacity(engines.len() * models.len() * devices.len());
    for device in devices {
        for model in models {
            for engine in engines.iter() {
                combos.push((engine, model, device));
            }
        }
    }
    let cells = pool.parallel_map(combos, |(engine, model, device)| MatrixCell {
        engine: engine.name(),
        kind: engine.kind(),
        model: model.abbr.clone(),
        device: device.name.clone(),
        supported: engine.supports(model),
        report: run_cell(engine, model, device),
    });
    BenchMatrix { cells }
}

/// Per-cell machine-readable view of a sweep: one object per
/// engine × model × device cell with the headline metrics (null for the
/// dash cells), ready to be diffed across PRs.
pub fn matrix_to_json(matrix: &BenchMatrix) -> Json {
    let cells: Vec<Json> = matrix
        .cells
        .iter()
        .map(|cell| {
            let mut doc = Json::obj()
                .field("engine", cell.engine.as_str())
                .field("model", cell.model.as_str())
                .field("device", cell.device.as_str())
                .field("supported", cell.supported)
                // A supported model with no report failed at runtime (OOM) —
                // a different signal than an operator-gap dash.
                .field("failed", cell.supported && cell.report.is_none());
            if let Some(r) = &cell.report {
                doc = doc
                    .field("init_latency_ms", r.init_latency_ms)
                    .field("exec_latency_ms", r.exec_latency_ms)
                    .field("integrated_latency_ms", r.integrated_latency_ms)
                    .field("peak_memory_mb", r.peak_memory_mb)
                    .field("average_memory_mb", r.average_memory_mb)
                    .field("average_power_w", r.average_power_w)
                    .field("energy_j", r.energy_j)
                    .field("overlap_fraction", r.overlap_fraction)
                    .field("streamed_weight_fraction", r.streamed_weight_fraction);
            }
            doc
        })
        .collect();
    Json::obj().field("cells", Json::Arr(cells))
}

/// The registry behind Tables 7/8/9: the six preloading baselines in table
/// order, then FlashMem with the paper's memory-priority configuration.
pub fn comparison_registry() -> EngineRegistry {
    let mut registry = baseline_registry();
    registry.register(flashmem_engine());
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashmem_graph::ModelZoo;

    #[test]
    fn matrix_covers_the_full_cross_product() {
        let registry = comparison_registry();
        let models = [ModelZoo::resnet50()];
        let devices = [DeviceSpec::oneplus_12()];
        let matrix = run_matrix(&registry, &models, &devices);
        assert_eq!(matrix.cells.len(), registry.len());
        assert_eq!(matrix.engine_names().len(), 7);
        assert_eq!(matrix.model_names(), vec!["ResNet".to_string()]);
        assert_eq!(matrix.device_names().len(), 1);
        // Every baseline supports ResNet-50, so no cell is a dash.
        assert!(matrix.cells.iter().all(|c| c.report.is_some()));
    }

    #[test]
    fn unsupported_models_become_dashes_not_errors() {
        let registry = comparison_registry();
        // NCNN has no GPU LayerNorm, so ViT is a dash for it.
        let matrix = run_matrix(&registry, &[ModelZoo::vit()], &[DeviceSpec::oneplus_12()]);
        assert!(matrix.report("NCNN", "ViT").is_none());
        assert!(matrix.report("FlashMem", "ViT").is_some());
        assert!(matrix
            .report_by_kind(FrameworkKind::SmartMem, "ViT")
            .is_some());
    }

    #[test]
    fn repeated_sweeps_hit_the_shared_plan_cache() {
        let registry = EngineRegistry::new().with(super::flashmem_engine());
        let models = [ModelZoo::resnet50()];
        let devices = [DeviceSpec::oneplus_12()];
        let first = run_matrix(&registry, &models, &devices);
        let hits_before = plan_cache_stats().hits;
        let second = run_matrix(&registry, &models, &devices);
        assert!(plan_cache_stats().hits > hits_before);
        // Caching must not change results: identical reports on both sweeps.
        assert_eq!(
            first.report("FlashMem", "ResNet"),
            second.report("FlashMem", "ResNet")
        );
    }

    #[test]
    fn matrix_json_has_one_object_per_cell() {
        let registry = comparison_registry();
        let matrix = run_matrix(&registry, &[ModelZoo::vit()], &[DeviceSpec::oneplus_12()]);
        let json = matrix_to_json(&matrix).pretty();
        assert!(json.contains("\"engine\": \"FlashMem\""));
        assert!(json.contains("\"integrated_latency_ms\""));
        // NCNN's dash cell is present but marked unsupported (an operator
        // gap, not a runtime failure).
        assert!(json.contains("\"supported\": false"));
        assert!(!json.contains("\"failed\": true"));
    }

    #[test]
    fn parallel_matrix_is_byte_identical_to_serial() {
        // The acceptance bar for the parallel sweep: the full comparison
        // registry over several models and devices, once on a 1-wide pool
        // (the exact serial code path) and once on a 4-wide pool, must
        // produce byte-identical JSON.
        let registry = comparison_registry();
        let models = [
            ModelZoo::gptneo_small(),
            ModelZoo::resnet50(),
            ModelZoo::vit(),
        ];
        let devices = [DeviceSpec::oneplus_12(), DeviceSpec::xiaomi_mi_6()];
        let serial = run_matrix_on(&ThreadPool::with_threads(1), &registry, &models, &devices);
        let parallel = run_matrix_on(&ThreadPool::with_threads(4), &registry, &models, &devices);
        assert_eq!(
            matrix_to_json(&serial).pretty(),
            matrix_to_json(&parallel).pretty(),
            "parallel run_matrix diverged from the serial sweep"
        );
        // Cell order is the deterministic input order, not completion order.
        for (a, b) in serial.cells.iter().zip(&parallel.cells) {
            assert_eq!(
                (&a.engine, &a.model, &a.device),
                (&b.engine, &b.model, &b.device)
            );
            assert_eq!(a.report, b.report);
        }
    }

    #[test]
    fn lookups_distinguish_devices() {
        let registry = EngineRegistry::new().with(super::flashmem_engine());
        let devices = [DeviceSpec::oneplus_12(), DeviceSpec::xiaomi_mi_6()];
        let matrix = run_matrix(&registry, &[ModelZoo::gptneo_small()], &devices);
        assert_eq!(matrix.cells.len(), 2);
        let flagship = matrix
            .report_on("FlashMem", "GPTN-S", &devices[0].name)
            .expect("runs on the flagship");
        assert!(flagship.integrated_latency_ms > 0.0);
        assert_eq!(matrix.device_names().len(), 2);
    }
}
