//! # flashmem-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! FlashMem paper's evaluation (Section 5) on the simulated mobile GPU.
//!
//! Comparison experiments assemble an
//! [`EngineRegistry`](flashmem_core::EngineRegistry) and sweep it through
//! [`harness::run_matrix`]; each experiment module in [`experiments`] exposes
//! `run(quick) -> <Result>` plus a `Display` implementation that prints the
//! same rows/series the paper reports. The `src/bin/` binaries print the full
//! tables; the `benches/` binaries exercise reduced (`quick = true`) variants
//! so `cargo bench` finishes in reasonable time.
//!
//! Absolute numbers come from a simulator, not the authors' phones; the
//! claim being reproduced is the *shape* of each result (who wins, by roughly
//! what factor, where crossovers and out-of-memory cases appear).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod harness;
pub mod json;
pub mod table;
pub mod timing;

pub use harness::{
    comparison_registry, matrix_to_json, plan_cache, plan_cache_stats, run_matrix, BenchMatrix,
    MatrixCell,
};
pub use json::{json_path_from_args, write_json, Json};

/// Shared main body for the experiment binaries: parse `--quick`, run the
/// experiment, print its text table, and honour `--json PATH` /
/// `--json=PATH` by writing the experiment's machine-readable form. Keeps
/// the per-table binaries to one line so flag handling cannot drift between
/// them.
pub fn run_bin_with_json<T: std::fmt::Display>(
    run: impl FnOnce(bool) -> T,
    to_json: impl FnOnce(&T) -> Json,
) {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let result = run(quick);
    println!("{result}");
    if let Some(path) = json_path_from_args(&args) {
        write_json(&path, &to_json(&result)).expect("write bench JSON");
        println!("\nwrote {}", path.display());
    }
}

use flashmem_graph::{ModelSpec, ModelZoo};

/// The models used by a sweep.
///
/// `quick = true` restricts sweeps to three small models so unit tests and
/// the bench binaries stay fast; `quick = false` uses the full Table 6 zoo.
pub fn evaluated_models(quick: bool) -> Vec<ModelSpec> {
    if quick {
        vec![
            ModelZoo::gptneo_small(),
            ModelZoo::resnet50(),
            ModelZoo::vit(),
        ]
    } else {
        ModelZoo::all_evaluated()
    }
}

/// Format an optional millisecond figure, rendering `None` as the paper's "–".
pub fn fmt_ms(value: Option<f64>) -> String {
    match value {
        Some(v) => format!("{v:.0}"),
        None => "–".to_string(),
    }
}

/// Format an optional ratio like `8.4×`, rendering `None` as "–".
pub fn fmt_ratio(value: Option<f64>) -> String {
    match value {
        Some(v) if v.is_finite() => format!("{v:.1}×"),
        _ => "–".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashmem_gpu_sim::DeviceSpec;

    #[test]
    fn quick_model_set_is_small_and_full_set_is_table_6() {
        assert_eq!(evaluated_models(true).len(), 3);
        assert_eq!(evaluated_models(false).len(), 11);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ms(Some(1234.4)), "1234");
        assert_eq!(fmt_ms(None), "–");
        assert_eq!(fmt_ratio(Some(8.44)), "8.4×");
        assert_eq!(fmt_ratio(Some(f64::INFINITY)), "–");
        assert_eq!(fmt_ratio(None), "–");
    }

    #[test]
    fn comparison_registry_produces_reports_for_a_small_model() {
        let device = DeviceSpec::oneplus_12();
        let model = ModelZoo::resnet50();
        let matrix = run_matrix(&comparison_registry(), &[model], &[device]);
        // Six baselines + FlashMem, and every one of them supports ResNet-50.
        assert_eq!(matrix.cells.len(), 7);
        assert!(matrix.cells.iter().all(|c| c.report.is_some()));
        let ours = matrix
            .report("FlashMem", "ResNet")
            .expect("flashmem runs resnet");
        assert!(ours.integrated_latency_ms > 0.0);
    }
}
