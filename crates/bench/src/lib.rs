//! # flashmem-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! FlashMem paper's evaluation (Section 5) on the simulated mobile GPU.
//!
//! Each experiment lives in [`experiments`] as a module exposing
//! `run(quick) -> <Result>` plus a `Display` implementation that prints the
//! same rows/series the paper reports. The `src/bin/` binaries print the full
//! tables; the Criterion benches exercise reduced (`quick = true`) variants so
//! `cargo bench` finishes in reasonable time.
//!
//! Absolute numbers come from a simulator, not the authors' phones; the
//! claim being reproduced is the *shape* of each result (who wins, by roughly
//! what factor, where crossovers and out-of-memory cases appear).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod table;

use flashmem_baselines::{Framework, PreloadFramework};
use flashmem_core::{ExecutionReport, FlashMem, FlashMemConfig};
use flashmem_gpu_sim::DeviceSpec;
use flashmem_graph::{ModelSpec, ModelZoo};

/// The models used by a sweep.
///
/// `quick = true` restricts sweeps to three small models so unit tests and
/// Criterion benches stay fast; `quick = false` uses the full Table 6 zoo.
pub fn evaluated_models(quick: bool) -> Vec<ModelSpec> {
    if quick {
        vec![ModelZoo::gptneo_small(), ModelZoo::resnet50(), ModelZoo::vit()]
    } else {
        ModelZoo::all_evaluated()
    }
}

/// Run FlashMem on a model with the paper's memory-priority configuration.
/// Returns `None` if the device runs out of memory (used for the Figure 10
/// "empty bar" cells).
pub fn flashmem_report(model: &ModelSpec, device: &DeviceSpec) -> Option<ExecutionReport> {
    flashmem_report_with(model, device, FlashMemConfig::memory_priority())
}

/// Run FlashMem on a model with an explicit configuration.
pub fn flashmem_report_with(
    model: &ModelSpec,
    device: &DeviceSpec,
    config: FlashMemConfig,
) -> Option<ExecutionReport> {
    FlashMem::new(device.clone())
        .with_config(config)
        .run(model)
        .ok()
}

/// Run every baseline framework of Tables 7/8 on a model. Unsupported models
/// and out-of-memory runs yield `None` (rendered as "–").
pub fn baseline_reports(
    model: &ModelSpec,
    device: &DeviceSpec,
) -> Vec<(String, Option<ExecutionReport>)> {
    PreloadFramework::all_baselines()
        .iter()
        .map(|fw| {
            let report = if fw.supports(model) {
                fw.run(model, device).ok()
            } else {
                None
            };
            (fw.name().to_string(), report)
        })
        .collect()
}

/// Format an optional millisecond figure, rendering `None` as the paper's "–".
pub fn fmt_ms(value: Option<f64>) -> String {
    match value {
        Some(v) => format!("{v:.0}"),
        None => "–".to_string(),
    }
}

/// Format an optional ratio like `8.4×`, rendering `None` as "–".
pub fn fmt_ratio(value: Option<f64>) -> String {
    match value {
        Some(v) if v.is_finite() => format!("{v:.1}×"),
        _ => "–".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_model_set_is_small_and_full_set_is_table_6() {
        assert_eq!(evaluated_models(true).len(), 3);
        assert_eq!(evaluated_models(false).len(), 11);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ms(Some(1234.4)), "1234");
        assert_eq!(fmt_ms(None), "–");
        assert_eq!(fmt_ratio(Some(8.44)), "8.4×");
        assert_eq!(fmt_ratio(Some(f64::INFINITY)), "–");
        assert_eq!(fmt_ratio(None), "–");
    }

    #[test]
    fn flashmem_and_baselines_produce_reports_for_a_small_model() {
        let device = DeviceSpec::oneplus_12();
        let model = ModelZoo::resnet50();
        let ours = flashmem_report(&model, &device).expect("flashmem runs resnet");
        assert!(ours.integrated_latency_ms > 0.0);
        let baselines = baseline_reports(&model, &device);
        assert_eq!(baselines.len(), 6);
        // Every baseline supports ResNet-50.
        assert!(baselines.iter().all(|(_, r)| r.is_some()));
    }
}
