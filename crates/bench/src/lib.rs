//! # flashmem-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! FlashMem paper's evaluation (Section 5) on the simulated mobile GPU.
//!
//! Comparison experiments assemble an
//! [`EngineRegistry`](flashmem_core::EngineRegistry) and sweep it through
//! [`harness::run_matrix`]; each experiment module in [`experiments`] exposes
//! `run(quick) -> <Result>` plus a `Display` implementation that prints the
//! same rows/series the paper reports. The `src/bin/` binaries print the full
//! tables; the `benches/` binaries exercise reduced (`quick = true`) variants
//! so `cargo bench` finishes in reasonable time.
//!
//! Absolute numbers come from a simulator, not the authors' phones; the
//! claim being reproduced is the *shape* of each result (who wins, by roughly
//! what factor, where crossovers and out-of-memory cases appear).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod harness;
pub mod json;
pub mod table;
pub mod timing;

pub use harness::{
    comparison_registry, matrix_to_json, plan_cache, plan_cache_stats, run_matrix, run_matrix_on,
    BenchMatrix, MatrixCell,
};
pub use json::{json_path_from_args, write_json, Json};

use flashmem_core::pool::{self, ThreadPool};

/// Parse a `--threads N` or `--threads=N` flag from a binary's argument
/// list. `--threads 1` pins every sweep to the exact serial code path (for
/// bisection); without the flag the pool width falls back to the
/// `FLASHMEM_THREADS` environment variable, then to the machine's available
/// parallelism.
///
/// A present-but-invalid value (`--threads 0`, `--threads=1x`, a missing
/// argument) exits with an error rather than silently falling back to full
/// machine width — a typo must never turn a "serial" bisection run into a
/// parallel one.
pub fn threads_from_args(args: &[String]) -> Option<usize> {
    fn invalid(value: &str) -> ! {
        eprintln!("error: --threads requires a positive integer, got `{value}`");
        std::process::exit(2);
    }
    for (i, arg) in args.iter().enumerate() {
        if let Some(value) = arg.strip_prefix("--threads=") {
            return Some(
                value
                    .trim()
                    .parse()
                    .ok()
                    .filter(|n| *n >= 1)
                    .unwrap_or_else(|| invalid(value)),
            );
        }
        if arg == "--threads" {
            let value = args
                .get(i + 1)
                .unwrap_or_else(|| invalid("nothing"))
                .as_str();
            return Some(
                value
                    .trim()
                    .parse()
                    .ok()
                    .filter(|n| *n >= 1)
                    .unwrap_or_else(|| invalid(value)),
            );
        }
    }
    None
}

/// Resolve the pool every sweep in this process fans out on: `--threads N`
/// when present (pinned into [`pool::configure_global`] before any sweep
/// touches the pool), else the [`pool::global`] default
/// (`FLASHMEM_THREADS` / available parallelism).
pub fn configure_pool_from_args(args: &[String]) -> &'static ThreadPool {
    match threads_from_args(args) {
        Some(threads) => pool::configure_global(threads),
        None => pool::global(),
    }
}

/// Append the wall-clock / pool-width telemetry fields every bench JSON
/// emitter carries: `elapsed_ms` (how long the experiment took on the wall)
/// and `threads` (the pool width that produced it). These are the only
/// schedule-dependent fields in the output — CI's serial-vs-parallel diff
/// strips exactly these two before requiring byte-identical trees.
pub fn with_timing(json: Json, elapsed_ms: f64, threads: usize) -> Json {
    json.field("elapsed_ms", elapsed_ms)
        .field("threads", threads)
}

/// Shared main body for the experiment binaries: parse `--quick` and
/// `--threads N`, run the experiment (its sweeps fan out on the global
/// pool), print its text table plus a wall-clock line, and honour
/// `--json PATH` / `--json=PATH` by writing the experiment's
/// machine-readable form with `elapsed_ms`/`threads` appended. Keeps the
/// per-table binaries to one line so flag handling cannot drift between
/// them.
pub fn run_bin_with_json<T: std::fmt::Display>(
    run: impl FnOnce(bool) -> T,
    to_json: impl FnOnce(&T) -> Json,
) {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let pool = configure_pool_from_args(&args);
    let start = std::time::Instant::now();
    let result = run(quick);
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    println!("{result}");
    println!(
        "\n({elapsed_ms:.0} ms wall clock on {} pool thread{})",
        pool.threads(),
        if pool.threads() == 1 { "" } else { "s" }
    );
    if let Some(path) = json_path_from_args(&args) {
        let doc = with_timing(to_json(&result), elapsed_ms, pool.threads());
        write_json(&path, &doc).expect("write bench JSON");
        println!("wrote {}", path.display());
    }
}

/// Parse a `--trace-out PATH` or `--trace-out=PATH` flag from a binary's
/// argument list: where to write the Chrome trace-event JSON of the
/// experiment's traced showcase run (open the file in Perfetto or
/// `chrome://tracing`). Absent flag means no trace is recorded at all —
/// tracing stays disabled and the showcase run never happens.
pub fn trace_out_from_args(args: &[String]) -> Option<std::path::PathBuf> {
    for (i, arg) in args.iter().enumerate() {
        if let Some(path) = arg.strip_prefix("--trace-out=") {
            return Some(path.into());
        }
        if arg == "--trace-out" {
            return Some(
                args.get(i + 1)
                    .unwrap_or_else(|| {
                        eprintln!("error: --trace-out requires a path");
                        std::process::exit(2);
                    })
                    .into(),
            );
        }
    }
    None
}

/// [`run_bin_with_json`] for experiments that can also export a
/// deterministic fleet trace: when `--trace-out PATH` is present, `traced`
/// re-runs the experiment's showcase cell with recording enabled and the
/// merged [`FleetTrace`](flashmem_serve::FleetTrace) is written to `PATH`
/// as Chrome trace-event JSON. The trace is a pure function of the
/// workload, so the file is byte-identical at every `--threads` width —
/// CI's trace-smoke step relies on that.
pub fn run_bin_with_json_and_trace<T: std::fmt::Display>(
    run: impl FnOnce(bool) -> T,
    to_json: impl FnOnce(&T) -> Json,
    traced: impl FnOnce(bool) -> flashmem_serve::FleetTrace,
) {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let pool = configure_pool_from_args(&args);
    let start = std::time::Instant::now();
    let result = run(quick);
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    println!("{result}");
    println!(
        "\n({elapsed_ms:.0} ms wall clock on {} pool thread{})",
        pool.threads(),
        if pool.threads() == 1 { "" } else { "s" }
    );
    if let Some(path) = json_path_from_args(&args) {
        let doc = with_timing(to_json(&result), elapsed_ms, pool.threads());
        write_json(&path, &doc).expect("write bench JSON");
        println!("wrote {}", path.display());
    }
    if let Some(path) = trace_out_from_args(&args) {
        let trace = traced(quick);
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).expect("create trace output directory");
            }
        }
        std::fs::write(&path, flashmem_serve::chrome_trace(&trace)).expect("write trace JSON");
        println!(
            "wrote {} ({} events across {} devices, {} dropped)",
            path.display(),
            trace.total_events(),
            trace.processes.len(),
            trace.dropped_events()
        );
    }
}

use flashmem_graph::{ModelSpec, ModelZoo};

/// The models used by a sweep.
///
/// `quick = true` restricts sweeps to three small models so unit tests and
/// the bench binaries stay fast; `quick = false` uses the full Table 6 zoo.
pub fn evaluated_models(quick: bool) -> Vec<ModelSpec> {
    if quick {
        vec![
            ModelZoo::gptneo_small(),
            ModelZoo::resnet50(),
            ModelZoo::vit(),
        ]
    } else {
        ModelZoo::all_evaluated()
    }
}

/// Format an optional millisecond figure, rendering `None` as the paper's "–".
pub fn fmt_ms(value: Option<f64>) -> String {
    match value {
        Some(v) => format!("{v:.0}"),
        None => "–".to_string(),
    }
}

/// Format an optional ratio like `8.4×`, rendering `None` as "–".
pub fn fmt_ratio(value: Option<f64>) -> String {
    match value {
        Some(v) if v.is_finite() => format!("{v:.1}×"),
        _ => "–".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashmem_gpu_sim::DeviceSpec;

    #[test]
    fn quick_model_set_is_small_and_full_set_is_table_6() {
        assert_eq!(evaluated_models(true).len(), 3);
        assert_eq!(evaluated_models(false).len(), 11);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ms(Some(1234.4)), "1234");
        assert_eq!(fmt_ms(None), "–");
        assert_eq!(fmt_ratio(Some(8.44)), "8.4×");
        assert_eq!(fmt_ratio(Some(f64::INFINITY)), "–");
        assert_eq!(fmt_ratio(None), "–");
    }

    #[test]
    fn comparison_registry_produces_reports_for_a_small_model() {
        let device = DeviceSpec::oneplus_12();
        let model = ModelZoo::resnet50();
        let matrix = run_matrix(&comparison_registry(), &[model], &[device]);
        // Six baselines + FlashMem, and every one of them supports ResNet-50.
        assert_eq!(matrix.cells.len(), 7);
        assert!(matrix.cells.iter().all(|c| c.report.is_some()));
        let ours = matrix
            .report("FlashMem", "ResNet")
            .expect("flashmem runs resnet");
        assert!(ours.integrated_latency_ms > 0.0);
    }
}
