//! Concurrency oracles for the sharded [`ArtifactCache`] and the
//! work-stealing [`ThreadPool`].
//!
//! The bar the parallel sweeps are held to: N threads racing on one
//! uncompiled key must run **exactly one** compile (no double LC-OPG solve,
//! hit/miss counters exact for any interleaving), and a pool-parallel sweep
//! must be byte-identical to its serial twin.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use flashmem_core::cache::ArtifactCache;
use flashmem_core::engine::{CompiledArtifact, FlashMemVariant, FrameworkKind, InferenceEngine};
use flashmem_core::pool::ThreadPool;
use flashmem_core::{ExecutionReport, FlashMemConfig};
use flashmem_gpu_sim::error::SimResult;
use flashmem_gpu_sim::DeviceSpec;
use flashmem_graph::{ModelSpec, ModelZoo};

/// An engine decorator that counts compiles and stretches each one out, so
/// racing threads genuinely overlap inside `compile` unless the cache's
/// in-flight deduplication collapses them.
struct CountingEngine {
    inner: FlashMemVariant,
    compiles: AtomicUsize,
    delay: Duration,
}

impl CountingEngine {
    fn new(delay: Duration) -> Self {
        CountingEngine {
            inner: FlashMemVariant::new("FlashMem", FlashMemConfig::memory_priority()),
            compiles: AtomicUsize::new(0),
            delay,
        }
    }

    fn compiles(&self) -> usize {
        self.compiles.load(Ordering::SeqCst)
    }
}

impl InferenceEngine for CountingEngine {
    fn kind(&self) -> FrameworkKind {
        self.inner.kind()
    }

    fn name(&self) -> String {
        self.inner.name()
    }

    fn cache_salt(&self) -> u64 {
        self.inner.cache_salt()
    }

    fn compile(&self, model: &ModelSpec, device: &DeviceSpec) -> SimResult<CompiledArtifact> {
        self.compiles.fetch_add(1, Ordering::SeqCst);
        std::thread::sleep(self.delay);
        self.inner.compile(model, device)
    }

    fn execute(
        &self,
        model: &ModelSpec,
        artifact: &CompiledArtifact,
        device: &DeviceSpec,
    ) -> SimResult<ExecutionReport> {
        self.inner.execute(model, artifact, device)
    }
}

#[test]
fn n_threads_on_one_key_compile_exactly_once_with_exact_counters() {
    const THREADS: usize = 8;
    let cache = Arc::new(ArtifactCache::new());
    let engine = Arc::new(CountingEngine::new(Duration::from_millis(30)));
    let model = ModelZoo::gptneo_small();
    let device = DeviceSpec::oneplus_12();
    // A barrier (not the pool) so all eight lookups are provably in flight
    // at once: whoever wins the race solves, the rest must block and reuse.
    let barrier = Arc::new(Barrier::new(THREADS));
    let mut handles = Vec::new();
    for _ in 0..THREADS {
        let cache = Arc::clone(&cache);
        let engine = Arc::clone(&engine);
        let barrier = Arc::clone(&barrier);
        let model = model.clone();
        let device = device.clone();
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            cache
                .compile(engine.as_ref(), &model, &device)
                .expect("compile succeeds")
        }));
    }
    let results: Vec<(CompiledArtifact, bool)> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Exactly one LC-OPG solve ran; the other seven threads waited on the
    // in-flight marker and were served the finished artifact as hits.
    assert_eq!(engine.compiles(), 1, "the same key was solved twice");
    let stats = cache.stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, (THREADS - 1) as u64);
    assert_eq!(stats.entries, 1);
    assert_eq!(results.iter().filter(|(_, hit)| !hit).count(), 1);
    // Every thread got a behaviourally identical artifact.
    let fractions: Vec<f64> = results.iter().map(|(a, _)| a.streamed_fraction()).collect();
    assert!(fractions.iter().all(|f| (f - fractions[0]).abs() == 0.0));
}

#[test]
fn distinct_keys_compile_independently_under_the_pool() {
    let cache = Arc::new(ArtifactCache::new());
    let engine = CountingEngine::new(Duration::from_millis(1));
    let device = DeviceSpec::oneplus_12();
    let models = [
        ModelZoo::gptneo_small(),
        ModelZoo::resnet50(),
        ModelZoo::vit(),
    ];
    let pool = ThreadPool::with_threads(4);
    // Each model looked up three times concurrently: 3 solves total.
    let lookups: Vec<ModelSpec> = (0..9).map(|i| models[i % 3].clone()).collect();
    let hits = pool.parallel_map(lookups, |model| {
        let (_, hit) = cache
            .compile(&engine, &model, &device)
            .expect("compile succeeds");
        hit
    });
    assert_eq!(engine.compiles(), 3);
    let stats = cache.stats();
    assert_eq!(stats.misses, 3);
    assert_eq!(stats.hits, 6);
    assert_eq!(stats.entries, 3);
    assert_eq!(hits.iter().filter(|hit| !**hit).count(), 3);
}

#[test]
fn pool_cache_stress_matches_serial_counters_and_artifacts() {
    // A seeded stress mix of repeated keys through a wide pool: totals must
    // equal the serial run's (first touch = miss, everything else = hit),
    // independent of interleaving.
    let models = [ModelZoo::gptneo_small(), ModelZoo::vit()];
    let devices = [DeviceSpec::oneplus_12(), DeviceSpec::xiaomi_mi_6()];
    let mut mix: Vec<(usize, usize)> = Vec::new();
    let mut state = 0x5EED_5EEDu64;
    for _ in 0..24 {
        // SplitMix64 step, inlined: deterministic lookup order.
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        mix.push(((z as usize) % 2, ((z >> 8) as usize) % 2));
    }

    let run = |threads: usize| {
        let cache = ArtifactCache::new();
        let engine = CountingEngine::new(Duration::from_millis(2));
        let pool = ThreadPool::with_threads(threads);
        let fractions = pool.parallel_map(mix.clone(), |(m, d)| {
            let (artifact, _) = cache
                .compile(&engine, &models[m], &devices[d])
                .expect("compile succeeds");
            artifact.streamed_fraction()
        });
        (cache.stats(), engine.compiles(), fractions)
    };

    let (serial_stats, serial_compiles, serial_fractions) = run(1);
    let (parallel_stats, parallel_compiles, parallel_fractions) = run(6);
    assert_eq!(serial_stats, parallel_stats);
    assert_eq!(serial_compiles, parallel_compiles);
    // Deterministic compilation + order-stable pool: identical outputs.
    assert_eq!(serial_fractions, parallel_fractions);
}
