//! Adaptive fusion (Section 4.3).
//!
//! Operator fusion shrinks kernel-launch overhead and intermediate tensors,
//! but fusing `k` operators into one kernel collapses their `k` scheduling
//! slots into one, shrinking the schedulable load capacity from `ΣC_i` to
//! roughly `min(C_1..C_k)`. When the OPG solver runs out of capacity it forces
//! weights into the preload set `W`, which is exactly what FlashMem is trying
//! to avoid. Adaptive fusion therefore scores fused kernels by the capacity
//! they destroy and selectively splits the worst offenders — but only when the
//! split recovers at least `(1 + α)` times the fused capacity, and never for
//! hierarchical fusions.

use flashmem_gpu_sim::DeviceSpec;
use flashmem_graph::{FusionGroup, FusionPlan, Graph, OpCategory};
use flashmem_profiler::{CapacityProfiler, LoadCapacity, LoweringOptions};
use serde::{Deserialize, Serialize};

use crate::config::FlashMemConfig;

/// Summary of one adaptive-fusion pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdaptiveFusionReport {
    /// Number of fused kernels that were split.
    pub splits: usize,
    /// Number of split candidates examined.
    pub candidates: usize,
    /// Total schedulable capacity (bytes) before the pass.
    pub capacity_before: u64,
    /// Total schedulable capacity (bytes) after the pass.
    pub capacity_after: u64,
}

impl AdaptiveFusionReport {
    /// Relative capacity gain achieved by the pass.
    pub fn capacity_gain(&self) -> f64 {
        if self.capacity_before == 0 {
            return 0.0;
        }
        self.capacity_after as f64 / self.capacity_before as f64 - 1.0
    }
}

/// The adaptive-fusion pass.
#[derive(Debug, Clone)]
pub struct AdaptiveFusion {
    device: DeviceSpec,
    config: FlashMemConfig,
    options: LoweringOptions,
}

impl AdaptiveFusion {
    /// Create a pass for `device` under `config`.
    pub fn new(device: DeviceSpec, config: FlashMemConfig) -> Self {
        let options = if config.enable_kernel_rewriting {
            LoweringOptions::flashmem()
        } else {
            LoweringOptions::texture_framework()
        };
        AdaptiveFusion {
            device,
            config,
            options,
        }
    }

    /// Refine `plan`: split fused kernels whose members would, as separate
    /// kernels, offer at least `(1 + α)` times the fused load capacity.
    /// Returns the refined plan and a report.
    pub fn refine(&self, graph: &Graph, plan: &FusionPlan) -> (FusionPlan, AdaptiveFusionReport) {
        let profiler = CapacityProfiler::new(self.device.clone()).with_options(self.options);
        let capacity_before = total_capacity(&profiler.capacities(graph, plan));

        let mut refined = plan.clone();
        let mut candidates = 0usize;
        let mut splits = 0usize;

        // Work over a snapshot of group indices; splits shift indices, so walk
        // from the end to keep earlier indices stable.
        let mut index = refined.len();
        while index > 0 {
            index -= 1;
            let group = refined.groups()[index].clone();
            if group.is_singleton() {
                continue;
            }
            // Rule 2: hierarchical fusions are retained intact.
            if group.dominant_category(graph) == OpCategory::Hierarchical {
                continue;
            }
            candidates += 1;

            let Some(split_after) = split_point(graph, &group) else {
                continue;
            };
            let Some((left, right)) = group.split_at(split_after) else {
                continue;
            };

            // Capacity check: C_v1 + C_v2 ≥ (1 + α) · C_fused.
            let fused_capacity = group_capacity(&profiler, graph, &group);
            let split_capacity =
                group_capacity(&profiler, graph, &left) + group_capacity(&profiler, graph, &right);
            if (split_capacity as f64) >= (1.0 + self.config.alpha) * fused_capacity as f64 {
                refined.split_group(index, split_after);
                splits += 1;
            }
        }

        let capacity_after = total_capacity(&profiler.capacities(graph, &refined));
        (
            refined,
            AdaptiveFusionReport {
                splits,
                candidates,
                capacity_before,
                capacity_after,
            },
        )
    }
}

/// Capacity of a single group evaluated in isolation (a one-group plan is not
/// a valid partition of the graph; it is only used to price that kernel).
fn group_capacity(profiler: &CapacityProfiler, graph: &Graph, group: &FusionGroup) -> u64 {
    let plan = FusionPlan::from_groups(vec![group.clone()]);
    profiler
        .capacities(graph, &plan)
        .first()
        .map(|c| c.capacity_bytes)
        .unwrap_or(0)
}

/// Operator-specific splitting rule (Section 4.3): split a reusable+elemental
/// fusion right after its last reusable member (e.g. `MatMul+Add` | `GeLU`).
/// Returns `None` when no useful split point exists.
fn split_point(graph: &Graph, group: &FusionGroup) -> Option<usize> {
    let categories: Vec<OpCategory> = group
        .nodes
        .iter()
        .filter_map(|id| graph.node(*id).map(|n| n.category()))
        .collect();
    let has_reusable = categories.contains(&OpCategory::Reusable);
    let has_elemental = categories.contains(&OpCategory::Elemental);
    if !has_reusable || !has_elemental {
        return None;
    }
    let last_reusable = categories
        .iter()
        .rposition(|c| *c == OpCategory::Reusable)?;
    let split_after = last_reusable + 1;
    if split_after == 0 || split_after >= group.len() {
        return None;
    }
    Some(split_after)
}

fn total_capacity(capacities: &[LoadCapacity]) -> u64 {
    capacities.iter().map(|c| c.capacity_bytes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashmem_graph::{GraphBuilder, ModelZoo, OpKind};

    fn ffn_graph() -> Graph {
        let mut b = GraphBuilder::new("ffn");
        let x = b.input("x", &[128, 768]);
        let m1 = b.matmul("fc1", x, 3072);
        let a1 = b.bias_add("bias1", m1);
        let g1 = b.unary("gelu", OpKind::GeLU, a1);
        let m2 = b.matmul("fc2", g1, 768);
        let a2 = b.bias_add("bias2", m2);
        b.norm("ln", OpKind::LayerNorm, a2);
        b.build()
    }

    #[test]
    fn refinement_increases_total_capacity() {
        let graph = ffn_graph();
        let plan = FusionPlan::default_fusion(&graph);
        let pass = AdaptiveFusion::new(DeviceSpec::oneplus_12(), FlashMemConfig::memory_priority());
        let (refined, report) = pass.refine(&graph, &plan);
        assert!(refined.is_valid_partition(&graph));
        assert!(report.capacity_after >= report.capacity_before);
        if report.splits > 0 {
            assert!(refined.len() > plan.len());
            assert!(report.capacity_gain() > 0.0);
        }
    }

    #[test]
    fn splits_separate_reusable_from_elemental() {
        let graph = ffn_graph();
        let plan = FusionPlan::default_fusion(&graph);
        let pass = AdaptiveFusion::new(
            DeviceSpec::oneplus_12(),
            FlashMemConfig::memory_priority().with_alpha(0.05),
        );
        let (refined, report) = pass.refine(&graph, &plan);
        assert!(report.candidates > 0);
        // After splitting, no group mixes a MatMul with a trailing GeLU.
        if report.splits > 0 {
            for group in refined.groups() {
                let kinds: Vec<OpKind> = group
                    .nodes
                    .iter()
                    .map(|id| graph.node(*id).unwrap().kind)
                    .collect();
                let has_matmul = kinds.contains(&OpKind::MatMul);
                let has_gelu = kinds.contains(&OpKind::GeLU);
                assert!(!(has_matmul && has_gelu), "group still mixes {kinds:?}");
            }
        }
    }

    #[test]
    fn hierarchical_fusions_are_never_split() {
        // Build a graph whose default fusion would put an elemental op with a
        // hierarchical op — then verify the pass leaves such groups alone.
        let graph = ffn_graph();
        let plan = FusionPlan::default_fusion(&graph);
        let hierarchical_groups_before = plan
            .groups()
            .iter()
            .filter(|g| g.dominant_category(&graph) == OpCategory::Hierarchical)
            .count();
        let pass = AdaptiveFusion::new(
            DeviceSpec::oneplus_12(),
            FlashMemConfig::memory_priority().with_alpha(0.0),
        );
        let (refined, _) = pass.refine(&graph, &plan);
        let hierarchical_groups_after = refined
            .groups()
            .iter()
            .filter(|g| g.dominant_category(&graph) == OpCategory::Hierarchical)
            .count();
        assert_eq!(hierarchical_groups_before, hierarchical_groups_after);
    }

    #[test]
    fn large_alpha_suppresses_splits() {
        let graph = ffn_graph();
        let plan = FusionPlan::default_fusion(&graph);
        let pass = AdaptiveFusion::new(
            DeviceSpec::oneplus_12(),
            FlashMemConfig::memory_priority().with_alpha(1_000.0),
        );
        let (refined, report) = pass.refine(&graph, &plan);
        assert_eq!(report.splits, 0);
        assert_eq!(refined.len(), plan.len());
    }

    #[test]
    fn refinement_on_a_real_model_preserves_partition() {
        let model = ModelZoo::vit();
        let plan = FusionPlan::default_fusion(model.graph());
        let pass = AdaptiveFusion::new(DeviceSpec::oneplus_12(), FlashMemConfig::memory_priority());
        let (refined, report) = pass.refine(model.graph(), &plan);
        assert!(refined.is_valid_partition(model.graph()));
        assert!(report.capacity_after >= report.capacity_before);
    }
}
