//! The unified inference-engine abstraction.
//!
//! The paper's evaluation (Tables 7–9, Figures 6–10) runs many frameworks —
//! FlashMem itself, the commercial preloading frameworks, SmartMem and the
//! naive overlap strawmen — over the same model × device matrix. This module
//! is the seam that makes that uniform: every runtime implements
//! [`InferenceEngine`] (`compile` → [`CompiledArtifact`] → `execute` →
//! [`ExecutionReport`]) and the benchmark harness enumerates them through an
//! [`EngineRegistry`] instead of wiring each framework by hand.
//!
//! FlashMem's own engine implementations live here; the baseline frameworks
//! implement the trait in `flashmem-baselines`, which also assembles the full
//! standard registry.

use flashmem_gpu_sim::engine::{CommandStream, GpuSimulator, SimConfig};
use flashmem_gpu_sim::error::SimResult;
use flashmem_gpu_sim::{DeviceSpec, SimError};
use flashmem_graph::{FusionPlan, ModelSpec};
use serde::{Deserialize, Serialize};

use crate::config::FlashMemConfig;
use crate::executor::StreamingExecutor;
use crate::metrics::ExecutionReport;
use crate::plan::OverlapPlan;
use crate::runtime::{CompiledModel, FlashMem};

/// Identity of a mobile DNN framework appearing in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameworkKind {
    /// Alibaba MNN.
    Mnn,
    /// Tencent NCNN.
    Ncnn,
    /// Apache TVM.
    Tvm,
    /// LiteRT (formerly TensorFlow Lite).
    LiteRt,
    /// PyTorch ExecuTorch.
    ExecuTorch,
    /// SmartMem (the precursor research prototype FlashMem builds on).
    SmartMem,
    /// FlashMem itself.
    FlashMem,
    /// The Always-Next naive overlap strategy (Figure 9).
    AlwaysNext,
    /// The Same-Op-Type prefetching strategy (Figure 9).
    SameOpType,
}

impl FrameworkKind {
    /// Display name used in the tables.
    pub fn name(&self) -> &'static str {
        match self {
            FrameworkKind::Mnn => "MNN",
            FrameworkKind::Ncnn => "NCNN",
            FrameworkKind::Tvm => "TVM",
            FrameworkKind::LiteRt => "LiteRT",
            FrameworkKind::ExecuTorch => "ExecuTorch",
            FrameworkKind::SmartMem => "SmartMem",
            FrameworkKind::FlashMem => "FlashMem",
            FrameworkKind::AlwaysNext => "Always-Next",
            FrameworkKind::SameOpType => "Same-Op-Type",
        }
    }

    /// The baseline frameworks compared in Tables 7 and 8, in table order.
    pub fn baselines() -> [FrameworkKind; 6] {
        [
            FrameworkKind::Mnn,
            FrameworkKind::Ncnn,
            FrameworkKind::Tvm,
            FrameworkKind::LiteRt,
            FrameworkKind::ExecuTorch,
            FrameworkKind::SmartMem,
        ]
    }

    /// Every framework kind, in evaluation order (baselines, FlashMem, then
    /// the naive overlap strawmen).
    pub fn all() -> [FrameworkKind; 9] {
        [
            FrameworkKind::Mnn,
            FrameworkKind::Ncnn,
            FrameworkKind::Tvm,
            FrameworkKind::LiteRt,
            FrameworkKind::ExecuTorch,
            FrameworkKind::SmartMem,
            FrameworkKind::FlashMem,
            FrameworkKind::AlwaysNext,
            FrameworkKind::SameOpType,
        ]
    }

    /// True for the engines that stream weights during execution (FlashMem
    /// and the naive overlap strawmen); false for preloading frameworks.
    pub fn is_streaming(&self) -> bool {
        matches!(
            self,
            FrameworkKind::FlashMem | FrameworkKind::AlwaysNext | FrameworkKind::SameOpType
        )
    }
}

impl std::fmt::Display for FrameworkKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The device-ready output of [`InferenceEngine::compile`].
///
/// Engines lower models very differently — FlashMem produces a streaming
/// overlap plan, preloading frameworks a flat command stream, the naive
/// strawmen a fusion plan plus a capacity-oblivious overlap plan — so the
/// artifact is an enum rather than a trait object: `execute` implementations
/// match on the variant they produced, and the harness can still inspect
/// common properties such as [`streamed_fraction`](Self::streamed_fraction).
#[derive(Debug, Clone)]
pub enum CompiledArtifact {
    /// A FlashMem compilation: refined fusion, overlap plan and reports.
    Streaming(CompiledModel),
    /// A preloading framework's full load → transform → execute schedule.
    Preload(CommandStream),
    /// A naive streaming plan sharing FlashMem's executor.
    NaivePlan {
        /// The fusion plan the naive strategy executes.
        fusion: FusionPlan,
        /// The capacity-oblivious overlap plan.
        plan: OverlapPlan,
    },
}

impl CompiledArtifact {
    /// Fraction of weight bytes streamed rather than preloaded (0 for
    /// preloading frameworks).
    pub fn streamed_fraction(&self) -> f64 {
        match self {
            CompiledArtifact::Streaming(compiled) => compiled.streamed_fraction(),
            CompiledArtifact::Preload(_) => 0.0,
            CompiledArtifact::NaivePlan { plan, .. } => plan.streamed_fraction(),
        }
    }

    /// The FlashMem compilation, if this is a [`Streaming`](Self::Streaming)
    /// artifact.
    pub fn as_streaming(&self) -> Option<&CompiledModel> {
        match self {
            CompiledArtifact::Streaming(compiled) => Some(compiled),
            _ => None,
        }
    }

    /// Error used by `execute` implementations handed an artifact produced by
    /// a different engine.
    pub fn mismatch(engine: &str) -> SimError {
        SimError::InvalidParameter {
            message: format!("artifact was not compiled by {engine}"),
        }
    }
}

/// A DNN runtime that can compile and execute the evaluation models on a
/// simulated device.
///
/// This is the uniform entry point the benchmark harness drives: FlashMem,
/// every preloading baseline and the naive overlap strawmen all implement it,
/// so experiment code sweeps `engines × models × devices` without
/// per-framework wiring.
pub trait InferenceEngine: Send + Sync {
    /// The engine's identity.
    fn kind(&self) -> FrameworkKind;

    /// Display name. Engines representing configuration variants (ablations,
    /// trade-off sweeps) override this with a distinguishing label.
    fn name(&self) -> String {
        self.kind().name().to_string()
    }

    /// Whether the engine supports the model at all (the "–" cells of
    /// Tables 7/8 come from operator gaps and model-scale limits).
    fn supports(&self, _model: &ModelSpec) -> bool {
        true
    }

    /// Fingerprint of the engine's *configuration*, mixed into
    /// [`ArtifactCache`](crate::cache::ArtifactCache) keys so two engines
    /// sharing a display name but differing in configuration never alias.
    /// Engines without tunable configuration keep the default.
    fn cache_salt(&self) -> u64 {
        0
    }

    /// Compile `model` for `device`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for unsupported models.
    fn compile(&self, model: &ModelSpec, device: &DeviceSpec) -> SimResult<CompiledArtifact>;

    /// Execute a previously compiled artifact on `device`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] if `artifact` was produced by a
    /// different engine, and propagates simulator errors (most importantly
    /// out-of-memory on constrained devices).
    fn execute(
        &self,
        model: &ModelSpec,
        artifact: &CompiledArtifact,
        device: &DeviceSpec,
    ) -> SimResult<ExecutionReport>;

    /// Compile and execute in one call.
    ///
    /// # Errors
    ///
    /// Propagates compile and execution errors.
    fn run(&self, model: &ModelSpec, device: &DeviceSpec) -> SimResult<ExecutionReport> {
        let artifact = self.compile(model, device)?;
        self.execute(model, &artifact, device)
    }
}

/// Run an engine and flatten "unsupported" and simulator failures (OOM) into
/// `None` — how the paper's tables render those cells.
pub fn run_or_dash(
    engine: &dyn InferenceEngine,
    model: &ModelSpec,
    device: &DeviceSpec,
) -> Option<ExecutionReport> {
    if !engine.supports(model) {
        return None;
    }
    engine.run(model, device).ok()
}

/// An ordered collection of [`InferenceEngine`]s, resolvable by
/// [`FrameworkKind`].
///
/// The registry is what experiment drivers iterate: `flashmem-baselines`
/// assembles the standard one (every framework of the evaluation), and
/// ablation/trade-off experiments build ad-hoc registries of
/// [`FlashMemVariant`]s.
#[derive(Default)]
pub struct EngineRegistry {
    engines: Vec<Box<dyn InferenceEngine>>,
}

impl EngineRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        EngineRegistry::default()
    }

    /// Append an engine (builder style).
    pub fn with(mut self, engine: Box<dyn InferenceEngine>) -> Self {
        self.engines.push(engine);
        self
    }

    /// Append an engine in place.
    pub fn register(&mut self, engine: Box<dyn InferenceEngine>) {
        self.engines.push(engine);
    }

    /// Iterate the engines in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn InferenceEngine> {
        self.engines.iter().map(|e| e.as_ref())
    }

    /// The first engine of `kind`, if registered.
    pub fn get(&self, kind: FrameworkKind) -> Option<&dyn InferenceEngine> {
        self.iter().find(|e| e.kind() == kind)
    }

    /// Every engine of `kind`, in registration order (several config variants
    /// of one kind may coexist, e.g. in ablation registries).
    pub fn by_kind(&self, kind: FrameworkKind) -> Vec<&dyn InferenceEngine> {
        self.iter().filter(|e| e.kind() == kind).collect()
    }

    /// The distinct kinds present, in registration order.
    pub fn kinds(&self) -> Vec<FrameworkKind> {
        let mut kinds = Vec::new();
        for engine in self.iter() {
            if !kinds.contains(&engine.kind()) {
                kinds.push(engine.kind());
            }
        }
        kinds
    }

    /// Engine display names, in registration order.
    pub fn names(&self) -> Vec<String> {
        self.iter().map(|e| e.name()).collect()
    }

    /// Number of registered engines.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// True if no engine is registered.
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }
}

impl std::fmt::Debug for EngineRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineRegistry")
            .field("engines", &self.names())
            .finish()
    }
}

/// Compile through a fresh FlashMem runtime pinned to `device` — shared by
/// the [`FlashMem`] and [`FlashMemVariant`] engine impls, which differ only
/// in labelling.
fn compile_streaming(
    config: &FlashMemConfig,
    model: &ModelSpec,
    device: &DeviceSpec,
) -> SimResult<CompiledArtifact> {
    let runtime = FlashMem::new(device.clone()).with_config(config.clone());
    Ok(CompiledArtifact::Streaming(runtime.compile(model.graph())))
}

/// Execute a [`CompiledArtifact::Streaming`] artifact under `label` —
/// companion to [`compile_streaming`].
fn execute_streaming(
    label: &str,
    config: &FlashMemConfig,
    model: &ModelSpec,
    artifact: &CompiledArtifact,
    device: &DeviceSpec,
) -> SimResult<ExecutionReport> {
    let compiled = artifact
        .as_streaming()
        .ok_or_else(|| CompiledArtifact::mismatch(label))?;
    let runtime = FlashMem::new(device.clone()).with_config(config.clone());
    let mut report = runtime.run_compiled(model.graph(), compiled)?;
    report.framework = label.to_string();
    report.model = model.abbr.clone();
    Ok(report)
}

impl InferenceEngine for FlashMem {
    fn kind(&self) -> FrameworkKind {
        FrameworkKind::FlashMem
    }

    fn cache_salt(&self) -> u64 {
        self.config().fingerprint()
    }

    fn compile(&self, model: &ModelSpec, device: &DeviceSpec) -> SimResult<CompiledArtifact> {
        // The runtime is pinned to one device at construction; the engine
        // interface targets whichever device the matrix sweep asks for.
        compile_streaming(self.config(), model, device)
    }

    fn execute(
        &self,
        model: &ModelSpec,
        artifact: &CompiledArtifact,
        device: &DeviceSpec,
    ) -> SimResult<ExecutionReport> {
        execute_streaming("FlashMem", self.config(), model, artifact, device)
    }
}

/// A named FlashMem configuration variant.
///
/// Ablation and trade-off experiments (Figures 7/8, the design-choice
/// sweeps) compare FlashMem against itself under different configurations;
/// each variant registers as its own engine so the shared matrix harness can
/// sweep them like any other framework.
#[derive(Debug, Clone)]
pub struct FlashMemVariant {
    label: String,
    config: FlashMemConfig,
}

impl FlashMemVariant {
    /// A variant running `config` under the display name `label`.
    pub fn new(label: impl Into<String>, config: FlashMemConfig) -> Self {
        FlashMemVariant {
            label: label.into(),
            config,
        }
    }

    /// The variant's configuration.
    pub fn config(&self) -> &FlashMemConfig {
        &self.config
    }
}

impl InferenceEngine for FlashMemVariant {
    fn kind(&self) -> FrameworkKind {
        FrameworkKind::FlashMem
    }

    fn name(&self) -> String {
        self.label.clone()
    }

    fn cache_salt(&self) -> u64 {
        self.config.fingerprint()
    }

    fn compile(&self, model: &ModelSpec, device: &DeviceSpec) -> SimResult<CompiledArtifact> {
        compile_streaming(&self.config, model, device)
    }

    fn execute(
        &self,
        model: &ModelSpec,
        artifact: &CompiledArtifact,
        device: &DeviceSpec,
    ) -> SimResult<ExecutionReport> {
        execute_streaming(&self.label, &self.config, model, artifact, device)
    }
}

/// Execute a preload-style [`CommandStream`] artifact and summarise it as an
/// [`ExecutionReport`] — shared by every preloading framework's `execute`.
///
/// # Errors
///
/// Propagates simulator errors (most importantly out-of-memory).
pub fn execute_command_stream(
    framework: &str,
    model: &ModelSpec,
    stream: &CommandStream,
    device: &DeviceSpec,
) -> SimResult<ExecutionReport> {
    let mut sim = GpuSimulator::new(device.clone(), SimConfig::default());
    let outcome = sim.execute(stream)?;
    Ok(ExecutionReport::from_outcome(
        framework,
        &model.abbr,
        &outcome,
        0.0,
    ))
}

/// Execute a [`CompiledArtifact::NaivePlan`] through FlashMem's streaming
/// executor without load-capacity awareness or rewritten kernels — shared by
/// the naive overlap strawmen.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn execute_naive_plan(
    framework: &str,
    model: &ModelSpec,
    fusion: &FusionPlan,
    plan: &OverlapPlan,
    device: &DeviceSpec,
) -> SimResult<ExecutionReport> {
    let executor = StreamingExecutor::new(
        device.clone(),
        flashmem_profiler::LoweringOptions::texture_framework(),
    )
    .with_embedded_transforms(false);
    let outcome = executor.execute(model.graph(), fusion, plan)?;
    Ok(ExecutionReport::from_outcome(
        framework,
        &model.abbr,
        &outcome,
        plan.streamed_fraction(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashmem_graph::ModelZoo;

    #[test]
    fn names_are_unique_and_nonempty() {
        let names: Vec<&str> = FrameworkKind::all().iter().map(|k| k.name()).collect();
        assert!(names.iter().all(|n| !n.is_empty()));
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }

    #[test]
    fn baseline_list_matches_table_order() {
        let b = FrameworkKind::baselines();
        assert_eq!(b[0], FrameworkKind::Mnn);
        assert_eq!(b[5], FrameworkKind::SmartMem);
    }

    #[test]
    fn streaming_split_covers_all_kinds() {
        let streaming: Vec<_> = FrameworkKind::all()
            .into_iter()
            .filter(FrameworkKind::is_streaming)
            .collect();
        assert_eq!(
            streaming,
            vec![
                FrameworkKind::FlashMem,
                FrameworkKind::AlwaysNext,
                FrameworkKind::SameOpType
            ]
        );
    }

    #[test]
    fn flashmem_engine_round_trips_through_the_trait() {
        let device = DeviceSpec::oneplus_12();
        let engine = FlashMem::new(device.clone()).with_config(FlashMemConfig::memory_priority());
        let model = ModelZoo::gptneo_small();
        assert_eq!(engine.kind(), FrameworkKind::FlashMem);
        assert_eq!(InferenceEngine::name(&engine), "FlashMem");
        // UFCS: `FlashMem` also has an inherent graph-level `compile`.
        let artifact = InferenceEngine::compile(&engine, &model, &device).unwrap();
        assert!(artifact.streamed_fraction() > 0.0);
        let report = engine.execute(&model, &artifact, &device).unwrap();
        assert_eq!(report.framework, "FlashMem");
        assert_eq!(report.model, "GPTN-S");
        assert!(report.integrated_latency_ms > 0.0);
    }

    #[test]
    fn variant_reports_its_label() {
        let device = DeviceSpec::oneplus_12();
        let variant = FlashMemVariant::new(
            "FlashMem (no rewriting)",
            FlashMemConfig::memory_priority().with_kernel_rewriting(false),
        );
        let report = variant.run(&ModelZoo::gptneo_small(), &device).unwrap();
        assert_eq!(report.framework, "FlashMem (no rewriting)");
        assert_eq!(variant.kind(), FrameworkKind::FlashMem);
    }

    #[test]
    fn executing_a_mismatched_artifact_fails() {
        let device = DeviceSpec::oneplus_12();
        let engine = FlashMem::new(device.clone());
        let model = ModelZoo::gptneo_small();
        let bogus = CompiledArtifact::Preload(CommandStream::new());
        assert!(matches!(
            engine.execute(&model, &bogus, &device),
            Err(SimError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn registry_resolves_by_kind_and_preserves_order() {
        let device = DeviceSpec::oneplus_12();
        let registry = EngineRegistry::new()
            .with(Box::new(FlashMem::new(device.clone())))
            .with(Box::new(FlashMemVariant::new(
                "FlashMem (full preload)",
                FlashMemConfig::memory_priority().with_opg(false),
            )));
        assert_eq!(registry.len(), 2);
        assert!(!registry.is_empty());
        assert_eq!(registry.kinds(), vec![FrameworkKind::FlashMem]);
        assert_eq!(
            registry.names(),
            vec![
                "FlashMem".to_string(),
                "FlashMem (full preload)".to_string()
            ]
        );
        assert!(registry.get(FrameworkKind::FlashMem).is_some());
        assert!(registry.get(FrameworkKind::Mnn).is_none());
        assert_eq!(registry.by_kind(FrameworkKind::FlashMem).len(), 2);
    }

    #[test]
    fn run_or_dash_flattens_failures() {
        let device = DeviceSpec::oneplus_12();
        let engine = FlashMem::new(device.clone());
        let report = run_or_dash(&engine, &ModelZoo::gptneo_small(), &device);
        assert!(report.is_some());
    }
}
