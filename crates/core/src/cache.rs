//! The keyed compilation-artifact cache.
//!
//! FlashMem's offline stage — adaptive fusion, capacity profiling and the
//! LC-OPG solve — is by far the most expensive part of `compile`, and both
//! the benchmark matrix and a multi-tenant server ask for the *same*
//! (engine, model, device) combination over and over. [`ArtifactCache`] sits
//! in front of [`InferenceEngine::compile`] and memoises the
//! [`CompiledArtifact`] under a fingerprint of the engine configuration, the
//! model and the device, with hit/miss counters that experiment drivers
//! surface in their reports.
//!
//! Compilation is deterministic, so a cached artifact is byte-identical to a
//! cold compile; the cache changes *when* planning work happens, never what
//! executes.
//!
//! The cache is built for concurrent use by the
//! [`pool`](crate::pool)-parallel sweeps: entries live in [`SHARD_COUNT`]
//! independently locked shards (threads compiling *different* keys contend
//! only when their keys collide on a shard), and each shard tracks **per-key
//! in-flight compiles** — when N threads race on one uncompiled key, exactly
//! one runs the LC-OPG solve while the others block on a condvar and then
//! read the finished artifact. That keeps the hit/miss counters exact and
//! schedule-independent: for any interleaving, a key's first successful
//! compile is the one miss and every other lookup is a hit, the same totals
//! a serial run produces.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use flashmem_gpu_sim::error::SimResult;
use flashmem_gpu_sim::DeviceSpec;
use flashmem_graph::ModelSpec;
use flashmem_trace::{TraceKind, TraceLane, TraceRecorder};

use crate::engine::{CompiledArtifact, InferenceEngine};
use crate::metrics::ExecutionReport;

/// 64-bit FNV-1a, the workspace's stand-in for a hasher with a stable,
/// documented output (we key a cache with it, so stability across runs and
/// platforms matters more than speed).
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    /// Fold raw bytes into the state.
    pub fn write(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Fold a string (length-prefixed so `"ab" + "c"` ≠ `"a" + "bc"`).
    pub fn write_str(self, s: &str) -> Self {
        self.write_u64(s.len() as u64).write(s.as_bytes())
    }

    /// Fold a `u64`.
    pub fn write_u64(self, v: u64) -> Self {
        self.write(&v.to_le_bytes())
    }

    /// Fold an `f64` by bit pattern.
    pub fn write_f64(self, v: f64) -> Self {
        self.write_u64(v.to_bits())
    }

    /// The current hash value.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// Fingerprint of the device parameters that influence compilation.
fn device_fingerprint(device: &DeviceSpec) -> u64 {
    Fnv1a::new()
        .write_str(&device.name)
        .write_str(&device.gpu)
        .write_u64(device.ram_bytes)
        .write_u64(device.app_budget_bytes)
        .write_u64(device.texture_budget_bytes)
        .write_f64(device.disk_bw)
        .write_f64(device.unified_bw)
        .write_f64(device.texture_bw)
        .write_f64(device.texture_cache_bw)
        .write_f64(device.fp16_flops)
        .write_f64(device.fp32_flops)
        .write_u64(u64::from(device.num_sms))
        .write_f64(device.kernel_launch_overhead_ms)
        .finish()
}

/// Fingerprint of the model identity (name, abbreviation and graph shape).
fn model_fingerprint(model: &ModelSpec) -> u64 {
    let graph = model.graph();
    Fnv1a::new()
        .write_str(&model.name)
        .write_str(&model.abbr)
        .write_str(graph.name())
        .write_u64(graph.len() as u64)
        .finish()
}

/// Snapshot of a cache's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Distinct artifacts currently held.
    pub entries: usize,
}

impl CacheStats {
    /// Hits over total lookups (0.0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.0}% hit rate, {} entries)",
            self.hits,
            self.misses,
            100.0 * self.hit_rate(),
            self.entries
        )
    }
}

/// Number of independently locked shards. A power of two so shard selection
/// is a mask over the (well-mixed) FNV key; 16 keeps lock contention
/// negligible for any realistic pool width while costing nothing when the
/// cache is used serially.
pub const SHARD_COUNT: usize = 16;

const POISONED: &str = "artifact cache poisoned";

/// Rendezvous for threads waiting on another thread's in-flight compile of
/// the same key.
#[derive(Debug, Default)]
struct InFlightCompile {
    done: Mutex<bool>,
    finished: Condvar,
}

impl InFlightCompile {
    fn finish(&self) {
        *self.done.lock().expect(POISONED) = true;
        self.finished.notify_all();
    }

    fn wait(&self) {
        let mut done = self.done.lock().expect(POISONED);
        while !*done {
            done = self.finished.wait(done).expect(POISONED);
        }
    }
}

/// One shard entry: a finished artifact, or a marker that some thread is
/// compiling this key right now.
// The size skew (a full artifact vs one `Arc`) is fine: slots live in the
// shard map, not on the stack, and `InFlight` exists only for the duration
// of one compile.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum Slot {
    Ready(CompiledArtifact),
    InFlight(Arc<InFlightCompile>),
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<u64, Slot>,
    hits: u64,
    misses: u64,
}

/// Removes a key's in-flight marker (and wakes its waiters) if the owning
/// compile unwinds, so a panicking engine cannot strand waiters forever.
struct FlightGuard<'a> {
    shard: &'a Mutex<Shard>,
    key: u64,
    flight: Arc<InFlightCompile>,
    armed: bool,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut shard = self.shard.lock().expect(POISONED);
        // Only remove *our* marker: `clear()` may have dropped it already
        // and another thread may have started a fresh compile since.
        if let Some(Slot::InFlight(current)) = shard.map.get(&self.key) {
            if Arc::ptr_eq(current, &self.flight) {
                shard.map.remove(&self.key);
            }
        }
        drop(shard);
        self.flight.finish();
    }
}

/// A thread-safe artifact cache keyed by engine × model × device fingerprint.
///
/// The engine part of the key combines [`InferenceEngine::name`] (which
/// already distinguishes configuration variants in every registry the
/// workspace builds) with [`InferenceEngine::cache_salt`], a fingerprint of
/// the engine's configuration, so two engines that happen to share a display
/// name but differ in configuration can never alias.
///
/// The cache is `Sync` by lock sharding (see the [module docs](self)):
/// concurrent compiles of the same key collapse onto one LC-OPG solve, so a
/// pool-parallel sweep does exactly the set of solves its serial twin does.
#[derive(Debug)]
pub struct ArtifactCache {
    shards: Box<[Mutex<Shard>]>,
}

impl Default for ArtifactCache {
    fn default() -> Self {
        ArtifactCache {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
        }
    }
}

impl ArtifactCache {
    /// An empty cache.
    pub fn new() -> Self {
        ArtifactCache::default()
    }

    fn shard_for(&self, key: u64) -> &Mutex<Shard> {
        &self.shards[(key as usize) & (SHARD_COUNT - 1)]
    }

    /// The cache key for an (engine, model, device) combination.
    pub fn key_for(engine: &dyn InferenceEngine, model: &ModelSpec, device: &DeviceSpec) -> u64 {
        Fnv1a::new()
            .write_str(engine.kind().name())
            .write_str(&engine.name())
            .write_u64(engine.cache_salt())
            .write_u64(model_fingerprint(model))
            .write_u64(device_fingerprint(device))
            .finish()
    }

    /// Probe whether `key` (from [`Self::key_for`]) already holds a finished
    /// artifact, without counting a hit and without blocking on an in-flight
    /// compile. This is the "was the plan warm?" snapshot the serving layer
    /// takes in its sequential prologue before fanning a fleet out, so
    /// per-request `cache_hit` telemetry stays schedule-independent instead
    /// of recording which worker happened to win an intra-run compile race.
    pub fn is_warm(&self, key: u64) -> bool {
        let shard = self.shard_for(key).lock().expect(POISONED);
        matches!(shard.map.get(&key), Some(Slot::Ready(_)))
    }

    /// Compile through the cache: returns the artifact plus `true` when it
    /// was served from the cache, `false` on a cold compile.
    ///
    /// When another thread is already compiling the same key, this blocks on
    /// its in-flight marker and then returns the finished artifact as a hit
    /// — never a second LC-OPG solve for the same key.
    ///
    /// # Errors
    ///
    /// Propagates [`InferenceEngine::compile`] errors; failures are not
    /// cached (a thread waiting on a compile that fails retries the lookup
    /// and surfaces its own error).
    pub fn compile(
        &self,
        engine: &dyn InferenceEngine,
        model: &ModelSpec,
        device: &DeviceSpec,
    ) -> SimResult<(CompiledArtifact, bool)> {
        let key = Self::key_for(engine, model, device);
        let shard = self.shard_for(key);
        let flight = loop {
            let waiter = {
                let mut shard = shard.lock().expect(POISONED);
                match shard.map.get(&key) {
                    Some(Slot::Ready(artifact)) => {
                        let artifact = artifact.clone();
                        shard.hits += 1;
                        return Ok((artifact, true));
                    }
                    Some(Slot::InFlight(flight)) => Arc::clone(flight),
                    None => {
                        let flight = Arc::new(InFlightCompile::default());
                        shard.map.insert(key, Slot::InFlight(Arc::clone(&flight)));
                        break flight;
                    }
                }
            };
            // Another thread owns this key's compile: park until it finishes,
            // then re-probe. On success the slot is `Ready` (counted as a
            // hit, exactly as a serial second lookup would be); on failure
            // the slot is gone and this thread takes the compile over.
            waiter.wait();
        };
        // This thread owns the compile for `key`. Solve outside the shard
        // lock: LC-OPG is the expensive part and other threads must be able
        // to hit unrelated keys meanwhile.
        let mut guard = FlightGuard {
            shard,
            key,
            flight,
            armed: true,
        };
        let artifact = engine.compile(model, device)?; // guard cleans up on Err/panic
        {
            let mut shard = shard.lock().expect(POISONED);
            shard.misses += 1;
            shard.map.insert(key, Slot::Ready(artifact.clone()));
            guard.armed = false;
        }
        guard.flight.finish();
        Ok((artifact, false))
    }

    /// [`compile`](Self::compile) that additionally records the cache probe
    /// and any compile into `trace` at sim time `now_ms` on `lane`.
    ///
    /// The recorded hit/miss comes from `warm_hint` — the caller's
    /// schedule-independent [`is_warm`](Self::is_warm) snapshot — not from
    /// the returned flag, which at pool width > 1 records whichever worker
    /// won an intra-run compile race and would make traces
    /// schedule-dependent. Counters are untouched by tracing.
    ///
    /// # Errors
    ///
    /// Exactly [`compile`](Self::compile)'s errors; nothing is recorded on
    /// the failure path.
    #[allow(clippy::too_many_arguments)]
    pub fn compile_traced(
        &self,
        engine: &dyn InferenceEngine,
        model: &ModelSpec,
        device: &DeviceSpec,
        now_ms: f64,
        warm_hint: bool,
        lane: TraceLane,
        trace: &mut TraceRecorder,
    ) -> SimResult<(CompiledArtifact, bool)> {
        let result = self.compile(engine, model, device)?;
        if trace.enabled() {
            if warm_hint {
                trace.instant(
                    TraceKind::CacheHit,
                    lane,
                    &format!("cache hit {}", model.abbr),
                    now_ms,
                );
            } else {
                trace.instant(
                    TraceKind::CacheMiss,
                    lane,
                    &format!("cache miss {}", model.abbr),
                    now_ms,
                );
                // Plan compilation (the LC-OPG solve) is instantaneous on
                // the simulated clock — the cost model charges it to host
                // wall time, not device time — so the solve lands as an
                // instant, not a span.
                trace.instant(
                    TraceKind::Compile,
                    lane,
                    &format!("compile {}", model.abbr),
                    now_ms,
                );
            }
        }
        Ok(result)
    }

    /// Counter snapshot, summed over the shards.
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats::default();
        for shard in &self.shards {
            let shard = shard.lock().expect(POISONED);
            stats.hits += shard.hits;
            stats.misses += shard.misses;
            stats.entries += shard
                .map
                .values()
                .filter(|slot| matches!(slot, Slot::Ready(_)))
                .count();
        }
        stats
    }

    /// Number of cached artifacts (in-flight compiles are not counted).
    pub fn len(&self) -> usize {
        self.stats().entries
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every finished artifact and reset the counters. In-flight
    /// markers are left in place so racing compiles complete cleanly.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().expect(POISONED);
            shard
                .map
                .retain(|_, slot| matches!(slot, Slot::InFlight(_)));
            shard.hits = 0;
            shard.misses = 0;
        }
    }
}

/// Run `engine` on `model`/`device`, compiling through `cache`.
///
/// # Errors
///
/// Propagates compile and execution errors.
pub fn run_cached(
    cache: &ArtifactCache,
    engine: &dyn InferenceEngine,
    model: &ModelSpec,
    device: &DeviceSpec,
) -> SimResult<ExecutionReport> {
    let (artifact, _) = cache.compile(engine, model, device)?;
    engine.execute(model, &artifact, device)
}

/// An [`InferenceEngine`] decorator that routes `compile` through a shared
/// [`ArtifactCache`] and forwards everything else.
pub struct CachedEngine<E> {
    inner: E,
    cache: std::sync::Arc<ArtifactCache>,
}

impl<E: InferenceEngine> CachedEngine<E> {
    /// Wrap `inner`, sharing `cache`.
    pub fn new(inner: E, cache: std::sync::Arc<ArtifactCache>) -> Self {
        CachedEngine { inner, cache }
    }

    /// The shared cache.
    pub fn cache(&self) -> &ArtifactCache {
        &self.cache
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }
}

impl<E: InferenceEngine> InferenceEngine for CachedEngine<E> {
    fn kind(&self) -> crate::engine::FrameworkKind {
        self.inner.kind()
    }

    fn name(&self) -> String {
        self.inner.name()
    }

    fn supports(&self, model: &ModelSpec) -> bool {
        self.inner.supports(model)
    }

    fn cache_salt(&self) -> u64 {
        self.inner.cache_salt()
    }

    fn compile(&self, model: &ModelSpec, device: &DeviceSpec) -> SimResult<CompiledArtifact> {
        self.cache
            .compile(&self.inner, model, device)
            .map(|(artifact, _)| artifact)
    }

    fn execute(
        &self,
        model: &ModelSpec,
        artifact: &CompiledArtifact,
        device: &DeviceSpec,
    ) -> SimResult<ExecutionReport> {
        self.inner.execute(model, artifact, device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlashMemConfig;
    use crate::engine::FlashMemVariant;
    use flashmem_graph::ModelZoo;
    use std::sync::Arc;

    fn engine() -> FlashMemVariant {
        FlashMemVariant::new("FlashMem", FlashMemConfig::memory_priority())
    }

    #[test]
    fn second_compile_hits_and_returns_an_identical_artifact() {
        let cache = ArtifactCache::new();
        let model = ModelZoo::gptneo_small();
        let device = DeviceSpec::oneplus_12();
        let engine = engine();
        let (cold, hit0) = cache.compile(&engine, &model, &device).unwrap();
        let (warm, hit1) = cache.compile(&engine, &model, &device).unwrap();
        assert!(!hit0);
        assert!(hit1);
        // Artifacts must behave identically: same streamed fraction and the
        // same execution report on replay.
        assert_eq!(cold.streamed_fraction(), warm.streamed_fraction());
        let a = engine.execute(&model, &cold, &device).unwrap();
        let b = engine.execute(&model, &warm, &device).unwrap();
        assert_eq!(a, b);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn is_warm_probes_without_counting_a_hit() {
        let cache = ArtifactCache::new();
        let model = ModelZoo::gptneo_small();
        let device = DeviceSpec::oneplus_12();
        let engine = engine();
        let key = ArtifactCache::key_for(&engine, &model, &device);
        assert!(!cache.is_warm(key));
        cache.compile(&engine, &model, &device).unwrap();
        assert!(cache.is_warm(key));
        // Probing is telemetry-neutral: the compile above is still the only
        // counted event.
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 1));
    }

    #[test]
    fn keys_distinguish_model_device_and_config() {
        let model_a = ModelZoo::gptneo_small();
        let model_b = ModelZoo::vit();
        let dev_a = DeviceSpec::oneplus_12();
        let dev_b = DeviceSpec::xiaomi_mi_6();
        let capped = dev_a.clone().with_app_budget_bytes(1 << 30);
        let e1 = engine();
        let e2 = FlashMemVariant::new("FlashMem", FlashMemConfig::latency_priority());
        let base = ArtifactCache::key_for(&e1, &model_a, &dev_a);
        assert_ne!(base, ArtifactCache::key_for(&e1, &model_b, &dev_a));
        assert_ne!(base, ArtifactCache::key_for(&e1, &model_a, &dev_b));
        assert_ne!(base, ArtifactCache::key_for(&e1, &model_a, &capped));
        // Same display name, different configuration: the salt must split them.
        assert_ne!(base, ArtifactCache::key_for(&e2, &model_a, &dev_a));
    }

    #[test]
    fn cached_engine_decorator_shares_one_cache() {
        let cache = Arc::new(ArtifactCache::new());
        let wrapped = CachedEngine::new(engine(), Arc::clone(&cache));
        let model = ModelZoo::gptneo_small();
        let device = DeviceSpec::oneplus_12();
        use crate::engine::InferenceEngine as _;
        let report_a = wrapped.run(&model, &device).unwrap();
        let report_b = wrapped.run(&model, &device).unwrap();
        assert_eq!(report_a, report_b);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert!(stats.hit_rate() > 0.49 && stats.hit_rate() < 0.51);
    }

    #[test]
    fn clear_resets_counters_and_entries() {
        let cache = ArtifactCache::new();
        let model = ModelZoo::gptneo_small();
        let device = DeviceSpec::oneplus_12();
        cache.compile(&engine(), &model, &device).unwrap();
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }
}
