//! The keyed compilation-artifact cache.
//!
//! FlashMem's offline stage — adaptive fusion, capacity profiling and the
//! LC-OPG solve — is by far the most expensive part of `compile`, and both
//! the benchmark matrix and a multi-tenant server ask for the *same*
//! (engine, model, device) combination over and over. [`ArtifactCache`] sits
//! in front of [`InferenceEngine::compile`] and memoises the
//! [`CompiledArtifact`] under a fingerprint of the engine configuration, the
//! model and the device, with hit/miss counters that experiment drivers
//! surface in their reports.
//!
//! Compilation is deterministic, so a cached artifact is byte-identical to a
//! cold compile; the cache changes *when* planning work happens, never what
//! executes.

use std::collections::HashMap;
use std::sync::Mutex;

use flashmem_gpu_sim::error::SimResult;
use flashmem_gpu_sim::DeviceSpec;
use flashmem_graph::ModelSpec;

use crate::engine::{CompiledArtifact, InferenceEngine};
use crate::metrics::ExecutionReport;

/// 64-bit FNV-1a, the workspace's stand-in for a hasher with a stable,
/// documented output (we key a cache with it, so stability across runs and
/// platforms matters more than speed).
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    /// Fold raw bytes into the state.
    pub fn write(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Fold a string (length-prefixed so `"ab" + "c"` ≠ `"a" + "bc"`).
    pub fn write_str(self, s: &str) -> Self {
        self.write_u64(s.len() as u64).write(s.as_bytes())
    }

    /// Fold a `u64`.
    pub fn write_u64(self, v: u64) -> Self {
        self.write(&v.to_le_bytes())
    }

    /// Fold an `f64` by bit pattern.
    pub fn write_f64(self, v: f64) -> Self {
        self.write_u64(v.to_bits())
    }

    /// The current hash value.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// Fingerprint of the device parameters that influence compilation.
fn device_fingerprint(device: &DeviceSpec) -> u64 {
    Fnv1a::new()
        .write_str(&device.name)
        .write_str(&device.gpu)
        .write_u64(device.ram_bytes)
        .write_u64(device.app_budget_bytes)
        .write_u64(device.texture_budget_bytes)
        .write_f64(device.disk_bw)
        .write_f64(device.unified_bw)
        .write_f64(device.texture_bw)
        .write_f64(device.texture_cache_bw)
        .write_f64(device.fp16_flops)
        .write_f64(device.fp32_flops)
        .write_u64(u64::from(device.num_sms))
        .write_f64(device.kernel_launch_overhead_ms)
        .finish()
}

/// Fingerprint of the model identity (name, abbreviation and graph shape).
fn model_fingerprint(model: &ModelSpec) -> u64 {
    let graph = model.graph();
    Fnv1a::new()
        .write_str(&model.name)
        .write_str(&model.abbr)
        .write_str(graph.name())
        .write_u64(graph.len() as u64)
        .finish()
}

/// Snapshot of a cache's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Distinct artifacts currently held.
    pub entries: usize,
}

impl CacheStats {
    /// Hits over total lookups (0.0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.0}% hit rate, {} entries)",
            self.hits,
            self.misses,
            100.0 * self.hit_rate(),
            self.entries
        )
    }
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<u64, CompiledArtifact>,
    hits: u64,
    misses: u64,
}

/// A thread-safe artifact cache keyed by engine × model × device fingerprint.
///
/// The engine part of the key combines [`InferenceEngine::name`] (which
/// already distinguishes configuration variants in every registry the
/// workspace builds) with [`InferenceEngine::cache_salt`], a fingerprint of
/// the engine's configuration, so two engines that happen to share a display
/// name but differ in configuration can never alias.
#[derive(Debug, Default)]
pub struct ArtifactCache {
    inner: Mutex<CacheInner>,
}

impl ArtifactCache {
    /// An empty cache.
    pub fn new() -> Self {
        ArtifactCache::default()
    }

    /// The cache key for an (engine, model, device) combination.
    pub fn key_for(engine: &dyn InferenceEngine, model: &ModelSpec, device: &DeviceSpec) -> u64 {
        Fnv1a::new()
            .write_str(engine.kind().name())
            .write_str(&engine.name())
            .write_u64(engine.cache_salt())
            .write_u64(model_fingerprint(model))
            .write_u64(device_fingerprint(device))
            .finish()
    }

    /// Compile through the cache: returns the artifact plus `true` when it
    /// was served from the cache, `false` on a cold compile.
    ///
    /// # Errors
    ///
    /// Propagates [`InferenceEngine::compile`] errors; failures are not
    /// cached.
    pub fn compile(
        &self,
        engine: &dyn InferenceEngine,
        model: &ModelSpec,
        device: &DeviceSpec,
    ) -> SimResult<(CompiledArtifact, bool)> {
        let key = Self::key_for(engine, model, device);
        {
            let mut inner = self.inner.lock().expect("artifact cache poisoned");
            if let Some(artifact) = inner.map.get(&key) {
                let artifact = artifact.clone();
                inner.hits += 1;
                return Ok((artifact, true));
            }
        }
        // Compile outside the lock: LC-OPG solves are the expensive part and
        // other threads should be able to hit on unrelated keys meanwhile.
        let artifact = engine.compile(model, device)?;
        let mut inner = self.inner.lock().expect("artifact cache poisoned");
        inner.misses += 1;
        inner.map.entry(key).or_insert_with(|| artifact.clone());
        Ok((artifact, false))
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("artifact cache poisoned");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.map.len(),
        }
    }

    /// Number of cached artifacts.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("artifact cache poisoned")
            .map
            .len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every artifact and reset the counters.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("artifact cache poisoned");
        inner.map.clear();
        inner.hits = 0;
        inner.misses = 0;
    }
}

/// Run `engine` on `model`/`device`, compiling through `cache`.
///
/// # Errors
///
/// Propagates compile and execution errors.
pub fn run_cached(
    cache: &ArtifactCache,
    engine: &dyn InferenceEngine,
    model: &ModelSpec,
    device: &DeviceSpec,
) -> SimResult<ExecutionReport> {
    let (artifact, _) = cache.compile(engine, model, device)?;
    engine.execute(model, &artifact, device)
}

/// An [`InferenceEngine`] decorator that routes `compile` through a shared
/// [`ArtifactCache`] and forwards everything else.
pub struct CachedEngine<E> {
    inner: E,
    cache: std::sync::Arc<ArtifactCache>,
}

impl<E: InferenceEngine> CachedEngine<E> {
    /// Wrap `inner`, sharing `cache`.
    pub fn new(inner: E, cache: std::sync::Arc<ArtifactCache>) -> Self {
        CachedEngine { inner, cache }
    }

    /// The shared cache.
    pub fn cache(&self) -> &ArtifactCache {
        &self.cache
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }
}

impl<E: InferenceEngine> InferenceEngine for CachedEngine<E> {
    fn kind(&self) -> crate::engine::FrameworkKind {
        self.inner.kind()
    }

    fn name(&self) -> String {
        self.inner.name()
    }

    fn supports(&self, model: &ModelSpec) -> bool {
        self.inner.supports(model)
    }

    fn cache_salt(&self) -> u64 {
        self.inner.cache_salt()
    }

    fn compile(&self, model: &ModelSpec, device: &DeviceSpec) -> SimResult<CompiledArtifact> {
        self.cache
            .compile(&self.inner, model, device)
            .map(|(artifact, _)| artifact)
    }

    fn execute(
        &self,
        model: &ModelSpec,
        artifact: &CompiledArtifact,
        device: &DeviceSpec,
    ) -> SimResult<ExecutionReport> {
        self.inner.execute(model, artifact, device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlashMemConfig;
    use crate::engine::FlashMemVariant;
    use flashmem_graph::ModelZoo;
    use std::sync::Arc;

    fn engine() -> FlashMemVariant {
        FlashMemVariant::new("FlashMem", FlashMemConfig::memory_priority())
    }

    #[test]
    fn second_compile_hits_and_returns_an_identical_artifact() {
        let cache = ArtifactCache::new();
        let model = ModelZoo::gptneo_small();
        let device = DeviceSpec::oneplus_12();
        let engine = engine();
        let (cold, hit0) = cache.compile(&engine, &model, &device).unwrap();
        let (warm, hit1) = cache.compile(&engine, &model, &device).unwrap();
        assert!(!hit0);
        assert!(hit1);
        // Artifacts must behave identically: same streamed fraction and the
        // same execution report on replay.
        assert_eq!(cold.streamed_fraction(), warm.streamed_fraction());
        let a = engine.execute(&model, &cold, &device).unwrap();
        let b = engine.execute(&model, &warm, &device).unwrap();
        assert_eq!(a, b);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn keys_distinguish_model_device_and_config() {
        let model_a = ModelZoo::gptneo_small();
        let model_b = ModelZoo::vit();
        let dev_a = DeviceSpec::oneplus_12();
        let dev_b = DeviceSpec::xiaomi_mi_6();
        let capped = dev_a.clone().with_app_budget_bytes(1 << 30);
        let e1 = engine();
        let e2 = FlashMemVariant::new("FlashMem", FlashMemConfig::latency_priority());
        let base = ArtifactCache::key_for(&e1, &model_a, &dev_a);
        assert_ne!(base, ArtifactCache::key_for(&e1, &model_b, &dev_a));
        assert_ne!(base, ArtifactCache::key_for(&e1, &model_a, &dev_b));
        assert_ne!(base, ArtifactCache::key_for(&e1, &model_a, &capped));
        // Same display name, different configuration: the salt must split them.
        assert_ne!(base, ArtifactCache::key_for(&e2, &model_a, &dev_a));
    }

    #[test]
    fn cached_engine_decorator_shares_one_cache() {
        let cache = Arc::new(ArtifactCache::new());
        let wrapped = CachedEngine::new(engine(), Arc::clone(&cache));
        let model = ModelZoo::gptneo_small();
        let device = DeviceSpec::oneplus_12();
        use crate::engine::InferenceEngine as _;
        let report_a = wrapped.run(&model, &device).unwrap();
        let report_b = wrapped.run(&model, &device).unwrap();
        assert_eq!(report_a, report_b);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert!(stats.hit_rate() > 0.49 && stats.hit_rate() < 0.51);
    }

    #[test]
    fn clear_resets_counters_and_entries() {
        let cache = ArtifactCache::new();
        let model = ModelZoo::gptneo_small();
        let device = DeviceSpec::oneplus_12();
        cache.compile(&engine(), &model, &device).unwrap();
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }
}
