//! The Load-Capacity-aware OPG solver (LC-OPG, Section 3.2).
//!
//! LC-OPG drives the per-weight window models of [`crate::opg`] over the whole
//! model in execution order, maintaining the shared per-kernel load capacities
//! (C3) and the in-flight memory budget `M_peak` (C2) between windows — the
//! paper's *incremental scheduling over a rolling window*. When a window is
//! infeasible or low-quality, the tiered fallback of Section 3.2 kicks in:
//!
//! 1. **soft thresholding** — retry with the load capacities relaxed by 25%,
//! 2. **greedy heuristic backup** — fill the window back-to-front within the
//!    remaining capacity,
//! 3. **incremental preloading** — put the weight into the preload set `W`.
//!
//! The solver also honours a total wall-clock budget (the paper's 150 s
//! offline limit): once exhausted, remaining weights are scheduled greedily
//! and the final status degrades from `OPTIMAL` to `FEASIBLE`, matching the
//! behaviour reported in Table 4.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use flashmem_gpu_sim::DeviceSpec;
use flashmem_graph::{FusionPlan, Graph, NodeId, WeightInventory};
use flashmem_profiler::{CapacityProfiler, LoadCapacity, LoweringOptions};
use flashmem_solver::{CpSolver, SolveStatus, SolverConfig};
use serde::{Deserialize, Serialize};

use crate::config::FlashMemConfig;
use crate::opg::{build_weight_window_model, extract_decision, greedy_hint, CandidateSlot};
use crate::plan::OverlapPlan;

/// Timing and quality report of one LC-OPG run — the columns of Table 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LcOpgReport {
    /// Time spent preparing the graph, fusion plan and capacities
    /// ("Process nodes" in Table 4).
    pub process_nodes: Duration,
    /// Time spent building CP models ("Build model").
    pub build_model: Duration,
    /// Time spent in the CP solver ("Solve model").
    pub solve_model: Duration,
    /// Final status: `Optimal` when every window solved to optimality within
    /// budget, otherwise `Feasible`.
    pub status: SolveStatus,
    /// Number of weight windows processed.
    pub windows: usize,
    /// Windows that needed the soft-threshold retry.
    pub fallback_soft: usize,
    /// Windows resolved by the greedy backup.
    pub fallback_greedy: usize,
    /// Weights pushed into the preload set by the fallback chain.
    pub fallback_preload: usize,
    /// Weights preloaded in total (including structural preloads).
    pub preloaded_weights: usize,
    /// Weights streamed during execution.
    pub streamed_weights: usize,
}

impl LcOpgReport {
    /// Total planner wall-clock time.
    pub fn total_time(&self) -> Duration {
        self.process_nodes + self.build_model + self.solve_model
    }
}

/// How the planner schedules weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlannerMode {
    /// CP-SAT windows with the tiered fallback (the full LC-OPG).
    Hybrid,
    /// Pure greedy heuristic (the "greedy heuristic backup" run standalone —
    /// used for ablations and as the exhausted-budget path).
    GreedyOnly,
    /// Preload everything (OPG disabled; the ablation baseline).
    FullPreload,
}

/// The LC-OPG planner.
#[derive(Debug, Clone)]
pub struct LcOpgSolver {
    device: DeviceSpec,
    config: FlashMemConfig,
    mode: PlannerMode,
}

impl LcOpgSolver {
    /// Create a planner for `device` with `config` in hybrid (CP + fallback)
    /// mode.
    pub fn new(device: DeviceSpec, config: FlashMemConfig) -> Self {
        LcOpgSolver {
            device,
            config,
            mode: PlannerMode::Hybrid,
        }
    }

    /// Select the planning mode.
    pub fn with_mode(mut self, mode: PlannerMode) -> Self {
        self.mode = mode;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &FlashMemConfig {
        &self.config
    }

    /// Plan the given graph with an externally supplied fusion plan and
    /// capacity profile (the runtime passes the adaptively refined ones).
    pub fn plan_with(
        &self,
        graph: &Graph,
        fusion: &FusionPlan,
        capacities: &[LoadCapacity],
    ) -> (OverlapPlan, LcOpgReport) {
        let started = Instant::now();

        let inventory = WeightInventory::with_chunk_size(graph, self.config.chunk_bytes);
        let node_to_kernel = node_to_kernel_map(fusion);
        let chunk_bytes = self.config.chunk_bytes;
        let num_kernels = fusion.len();

        let mut remaining_capacity: Vec<u64> = capacities
            .iter()
            .map(|c| c.capacity_bytes / chunk_bytes)
            .collect();
        remaining_capacity.resize(num_kernels, 0);
        let mut inflight_bytes: Vec<u64> = vec![0; num_kernels];

        let mut plan = OverlapPlan::new(num_kernels, chunk_bytes);
        let mut report = LcOpgReport {
            process_nodes: started.elapsed(),
            build_model: Duration::ZERO,
            solve_model: Duration::ZERO,
            status: SolveStatus::Optimal,
            windows: 0,
            fallback_soft: 0,
            fallback_greedy: 0,
            fallback_preload: 0,
            preloaded_weights: 0,
            streamed_weights: 0,
        };

        if self.mode == PlannerMode::FullPreload || !self.config.enable_opg {
            for w in inventory.weights() {
                let kernel = node_to_kernel.get(&w.consumer).copied().unwrap_or(0);
                plan.add_preload(w.consumer, kernel, w.bytes);
                report.preloaded_weights += 1;
            }
            return (plan, report);
        }

        let budget = Duration::from_millis(self.config.total_solver_budget_ms);
        let solver = CpSolver::with_config(SolverConfig::with_time_limit_ms(
            self.config.solver_time_limit_ms,
        ));

        for weight in inventory.weights() {
            let consumer_kernel = node_to_kernel.get(&weight.consumer).copied().unwrap_or(0);
            let total_chunks = weight.chunk_count(chunk_bytes);
            report.windows += 1;

            // Structural preloads: first-kernel weights (nothing precedes
            // them), explicitly pinned weights, and convolution weights whose
            // Winograd/im2col transformation cannot be overlapped (the paper's
            // explanation for SD-UNet's smaller savings).
            let pinned = self.config.explicit_preload.contains(&weight.name);
            if consumer_kernel == 0 || pinned || weight.needs_transform || total_chunks == 0 {
                plan.add_preload(weight.consumer, consumer_kernel, weight.bytes);
                report.preloaded_weights += 1;
                continue;
            }

            let window_start = consumer_kernel.saturating_sub(self.config.window);
            let make_candidates = |capacity_scale: f64,
                                   remaining_capacity: &[u64],
                                   inflight_bytes: &[u64]| {
                (window_start..consumer_kernel)
                    .map(|k| {
                        let headroom = self.config.m_peak_bytes.saturating_sub(inflight_bytes[k])
                            / chunk_bytes;
                        CandidateSlot {
                            kernel: k,
                            capacity_chunks: (remaining_capacity[k] as f64 * capacity_scale) as u64,
                            memory_headroom_chunks: headroom,
                        }
                    })
                    .collect::<Vec<_>>()
            };

            let budget_exhausted = started.elapsed() > budget;
            let use_cp = self.mode == PlannerMode::Hybrid && !budget_exhausted;
            if budget_exhausted {
                report.status = SolveStatus::Feasible;
            }

            let candidates = make_candidates(1.0, &remaining_capacity, &inflight_bytes);
            let window_capacity: u64 = candidates
                .iter()
                .map(|c| c.capacity_chunks.min(c.memory_headroom_chunks))
                .sum();
            if window_capacity == 0 {
                plan.add_preload(weight.consumer, consumer_kernel, weight.bytes);
                report.preloaded_weights += 1;
                report.fallback_preload += 1;
                continue;
            }

            // --- Tier 0: plain CP window ---------------------------------
            let mut decision = None;
            if use_cp {
                let build_started = Instant::now();
                let window = build_weight_window_model(
                    consumer_kernel,
                    total_chunks,
                    &candidates,
                    &self.config,
                );
                let hint = greedy_hint(&window);
                report.build_model += build_started.elapsed();

                let solve_started = Instant::now();
                let outcome = solver.solve_with_hint(&window.model, Some(&hint));
                report.solve_model += solve_started.elapsed();
                if outcome.status == SolveStatus::Feasible {
                    report.status = SolveStatus::Feasible;
                }
                if let Some(solution) = outcome.solution {
                    let d = extract_decision(&window, &solution);
                    if !d.preload {
                        decision = Some(d);
                    }
                }
            }

            // --- Tier 1: soft thresholding (relax capacities by 25%) ------
            if decision.is_none() && use_cp {
                report.fallback_soft += 1;
                report.status = SolveStatus::Feasible;
                let relaxed = make_candidates(1.25, &remaining_capacity, &inflight_bytes);
                let build_started = Instant::now();
                let window = build_weight_window_model(
                    consumer_kernel,
                    total_chunks,
                    &relaxed,
                    &self.config,
                );
                let hint = greedy_hint(&window);
                report.build_model += build_started.elapsed();
                let solve_started = Instant::now();
                let outcome = solver.solve_with_hint(&window.model, Some(&hint));
                report.solve_model += solve_started.elapsed();
                if let Some(solution) = outcome.solution {
                    let d = extract_decision(&window, &solution);
                    if !d.preload {
                        decision = Some(d);
                    }
                }
            }

            // --- Tier 2: greedy heuristic backup --------------------------
            if decision.is_none() {
                if use_cp {
                    report.fallback_greedy += 1;
                    report.status = SolveStatus::Feasible;
                }
                decision = greedy_fill(total_chunks, &candidates);
            }

            // --- Tier 3: incremental preloading ----------------------------
            match decision {
                Some(d) if !d.preload => {
                    // Commit: update shared capacity and in-flight state.
                    for (kernel, chunks) in &d.assignments {
                        let used = (*chunks).min(remaining_capacity[*kernel]);
                        remaining_capacity[*kernel] -= used;
                        for slot in inflight_bytes
                            .iter_mut()
                            .take(consumer_kernel)
                            .skip(*kernel)
                        {
                            *slot = slot.saturating_add(chunks * chunk_bytes);
                        }
                    }
                    plan.add_streamed(
                        weight.consumer,
                        consumer_kernel,
                        d.disk_load_kernel,
                        weight.bytes,
                        &d.assignments,
                    );
                    report.streamed_weights += 1;
                }
                _ => {
                    plan.add_preload(weight.consumer, consumer_kernel, weight.bytes);
                    report.preloaded_weights += 1;
                    report.fallback_preload += 1;
                    report.status = SolveStatus::Feasible;
                }
            }
        }

        (plan, report)
    }

    /// Plan the graph end to end: default fusion, static-threshold capacities,
    /// then the window sweep.
    pub fn plan(&self, graph: &Graph) -> (OverlapPlan, LcOpgReport) {
        let started = Instant::now();
        let fusion = FusionPlan::default_fusion(graph);
        let options = if self.config.enable_kernel_rewriting {
            LoweringOptions::flashmem()
        } else {
            LoweringOptions::texture_framework()
        };
        let capacities = CapacityProfiler::new(self.device.clone())
            .with_options(options)
            .capacities(graph, &fusion);
        let prep = started.elapsed();
        let (plan, mut report) = self.plan_with(graph, &fusion, &capacities);
        report.process_nodes += prep;
        (plan, report)
    }
}

/// Map every node to the index of the fusion group (kernel) containing it.
pub fn node_to_kernel_map(fusion: &FusionPlan) -> HashMap<NodeId, usize> {
    let mut map = HashMap::new();
    for (idx, group) in fusion.groups().iter().enumerate() {
        for node in &group.nodes {
            map.insert(*node, idx);
        }
    }
    map
}

/// Greedy back-to-front fill of a candidate window. Returns `None` if the
/// window cannot hold the weight (caller then preloads).
fn greedy_fill(
    total_chunks: u64,
    candidates: &[CandidateSlot],
) -> Option<crate::opg::WindowDecision> {
    let mut remaining = total_chunks;
    let mut assignments = Vec::new();
    // C2 bookkeeping: chunks placed at kernel ℓ stay in flight at every kernel
    // in [ℓ, consumer), so placing at an *earlier* slot raises the prefix of
    // every already-filled later slot. Walking back-to-front, the safe amount
    // for the current slot is the minimum headroom over the suffix (this slot
    // and all later ones) minus what the suffix already holds.
    let mut placed_in_suffix: u64 = 0;
    let mut min_suffix_headroom = u64::MAX;
    for slot in candidates.iter().rev() {
        min_suffix_headroom = min_suffix_headroom.min(slot.memory_headroom_chunks);
        if remaining == 0 {
            continue;
        }
        let memory_room = min_suffix_headroom.saturating_sub(placed_in_suffix);
        let take = slot.capacity_chunks.min(memory_room).min(remaining);
        if take > 0 {
            assignments.push((slot.kernel, take));
            remaining -= take;
            placed_in_suffix += take;
        }
    }
    if remaining > 0 {
        return None;
    }
    assignments.sort_by_key(|(k, _)| *k);
    let disk_load_kernel = assignments.first().map(|(k, _)| *k).unwrap_or(0);
    Some(crate::opg::WindowDecision {
        preload: false,
        assignments,
        disk_load_kernel,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashmem_graph::ModelZoo;

    fn small_model() -> Graph {
        ModelZoo::gptneo_small().build()
    }

    #[test]
    fn hybrid_plan_is_valid_and_streams_a_majority_of_weights() {
        let graph = small_model();
        let config = FlashMemConfig::memory_priority();
        let solver = LcOpgSolver::new(DeviceSpec::oneplus_12(), config.clone());
        let (plan, report) = solver.plan(&graph);
        let inventory = WeightInventory::with_chunk_size(&graph, config.chunk_bytes);
        plan.validate(&inventory, None).unwrap();
        assert!(
            plan.streamed_fraction() > 0.3,
            "{}",
            plan.streamed_fraction()
        );
        assert!(report.windows > 0);
        assert!(report.status.has_solution());
        assert_eq!(
            report.preloaded_weights + report.streamed_weights,
            inventory.len()
        );
    }

    #[test]
    fn peak_inflight_respects_m_peak_budget() {
        let graph = small_model();
        let config = FlashMemConfig::memory_priority();
        let solver = LcOpgSolver::new(DeviceSpec::oneplus_12(), config.clone());
        let (plan, _) = solver.plan(&graph);
        // Allow one chunk of slack for the final short chunk of each weight.
        assert!(
            plan.peak_inflight_bytes() <= config.m_peak_bytes + config.chunk_bytes,
            "inflight {} budget {}",
            plan.peak_inflight_bytes(),
            config.m_peak_bytes
        );
    }

    #[test]
    fn full_preload_mode_streams_nothing() {
        let graph = small_model();
        let solver = LcOpgSolver::new(DeviceSpec::oneplus_12(), FlashMemConfig::memory_priority())
            .with_mode(PlannerMode::FullPreload);
        let (plan, report) = solver.plan(&graph);
        assert_eq!(plan.streamed_bytes(), 0);
        assert_eq!(report.streamed_weights, 0);
    }

    #[test]
    fn greedy_only_mode_also_produces_valid_plans() {
        let graph = small_model();
        let config = FlashMemConfig::memory_priority();
        let solver = LcOpgSolver::new(DeviceSpec::oneplus_12(), config.clone())
            .with_mode(PlannerMode::GreedyOnly);
        let (plan, _) = solver.plan(&graph);
        let inventory = WeightInventory::with_chunk_size(&graph, config.chunk_bytes);
        plan.validate(&inventory, None).unwrap();
        assert!(plan.streamed_fraction() > 0.0);
    }

    #[test]
    fn hybrid_streams_at_least_as_much_as_it_preloads_on_transformers() {
        // Transformer weights are MatMul-dominated (no conv transform), so the
        // planner should stream the bulk of them under memory priority.
        let graph = ModelZoo::vit().build();
        let solver = LcOpgSolver::new(DeviceSpec::oneplus_12(), FlashMemConfig::memory_priority());
        let (plan, _) = solver.plan(&graph);
        assert!(plan.streamed_bytes() > plan.preload_bytes() / 2);
    }

    #[test]
    fn latency_priority_preloads_more_than_memory_priority() {
        let graph = small_model();
        let device = DeviceSpec::oneplus_12();
        let (mem_plan, _) =
            LcOpgSolver::new(device.clone(), FlashMemConfig::memory_priority()).plan(&graph);
        let (lat_plan, _) =
            LcOpgSolver::new(device, FlashMemConfig::latency_priority()).plan(&graph);
        assert!(lat_plan.preload_bytes() >= mem_plan.preload_bytes());
    }

    #[test]
    fn explicit_preload_list_is_honoured() {
        let graph = small_model();
        // Pin one of the feed-forward weights by name.
        let pinned = graph
            .nodes()
            .iter()
            .find(|n| n.name.contains("mlp.fc1") && n.weight_bytes() > 0)
            .map(|n| format!("{}.weight", n.name))
            .expect("an mlp weight exists");
        let config = FlashMemConfig::memory_priority().with_explicit_preload(&pinned);
        let solver = LcOpgSolver::new(DeviceSpec::oneplus_12(), config);
        let (plan, _) = solver.plan(&graph);
        let node = graph
            .nodes()
            .iter()
            .find(|n| format!("{}.weight", n.name) == pinned)
            .unwrap();
        assert!(plan.schedule_for(node.id).unwrap().preloaded);
    }

    #[test]
    fn convolution_weights_are_preloaded() {
        let graph = ModelZoo::resnet50().build();
        let solver = LcOpgSolver::new(DeviceSpec::oneplus_12(), FlashMemConfig::memory_priority());
        let (plan, _) = solver.plan(&graph);
        for node in graph.nodes() {
            if node.kind.needs_weight_transform() && node.weight_bytes() > 0 {
                assert!(
                    plan.schedule_for(node.id).unwrap().preloaded,
                    "conv weight {} should be preloaded",
                    node.name
                );
            }
        }
    }

    #[test]
    fn exhausted_budget_degrades_to_feasible() {
        let graph = small_model();
        let mut config = FlashMemConfig::memory_priority();
        config.total_solver_budget_ms = 0;
        let solver = LcOpgSolver::new(DeviceSpec::oneplus_12(), config);
        let (plan, report) = solver.plan(&graph);
        assert_eq!(report.status, SolveStatus::Feasible);
        assert!(plan.total_weight_bytes() > 0);
    }

    #[test]
    fn node_to_kernel_map_covers_every_node() {
        let graph = small_model();
        let fusion = FusionPlan::default_fusion(&graph);
        let map = node_to_kernel_map(&fusion);
        assert_eq!(map.len(), graph.len());
        for node in graph.nodes() {
            assert!(map.contains_key(&node.id));
        }
    }

    #[test]
    fn report_total_time_is_sum_of_phases() {
        let graph = small_model();
        let solver = LcOpgSolver::new(DeviceSpec::oneplus_12(), FlashMemConfig::memory_priority());
        let (_, report) = solver.plan(&graph);
        let total = report.total_time();
        assert!(total >= report.solve_model);
        assert!(total >= report.build_model);
    }
}
