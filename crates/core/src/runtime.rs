//! The top-level FlashMem runtime.
//!
//! [`FlashMem`] ties the pipeline of Figure 3 together: default fusion →
//! adaptive fusion → load-capacity profiling → LC-OPG planning → kernel
//! rewriting → streaming execution on the simulated device, producing an
//! [`ExecutionReport`] comparable with the baseline frameworks.

use flashmem_gpu_sim::error::SimResult;
use flashmem_gpu_sim::memory::MemoryTracker;
use flashmem_gpu_sim::DeviceSpec;
use flashmem_graph::{FusionPlan, Graph, ModelSpec};
use flashmem_profiler::CapacityProfiler;

use crate::config::FlashMemConfig;
use crate::executor::StreamingExecutor;
use crate::fusion::{AdaptiveFusion, AdaptiveFusionReport};
use crate::kernel_rewrite::KernelRewriter;
use crate::lc_opg::{LcOpgReport, LcOpgSolver, PlannerMode};
use crate::metrics::ExecutionReport;
use crate::plan::OverlapPlan;

/// Everything FlashMem produced while compiling one model: the refined fusion
/// plan, the overlap plan and the planning/adaptive-fusion reports.
#[derive(Debug, Clone)]
pub struct CompiledModel {
    /// Name of the compiled model.
    pub model_name: String,
    /// The (possibly adaptively split) fusion plan.
    pub fusion: FusionPlan,
    /// The overlap plan produced by LC-OPG.
    pub plan: OverlapPlan,
    /// The LC-OPG timing/status report (Table 4 columns).
    pub planner_report: LcOpgReport,
    /// The adaptive-fusion report, if the pass ran.
    pub fusion_report: Option<AdaptiveFusionReport>,
}

impl CompiledModel {
    /// Fraction of weight bytes streamed rather than preloaded.
    pub fn streamed_fraction(&self) -> f64 {
        self.plan.streamed_fraction()
    }
}

/// The FlashMem runtime for one device.
#[derive(Debug, Clone)]
pub struct FlashMem {
    device: DeviceSpec,
    config: FlashMemConfig,
}

impl FlashMem {
    /// Create a runtime for `device` with the balanced default configuration.
    pub fn new(device: DeviceSpec) -> Self {
        FlashMem {
            device,
            config: FlashMemConfig::default(),
        }
    }

    /// Replace the configuration (builder style).
    pub fn with_config(mut self, config: FlashMemConfig) -> Self {
        self.config = config;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &FlashMemConfig {
        &self.config
    }

    /// The target device.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// The kernel rewriter implied by the configuration.
    pub fn rewriter(&self) -> KernelRewriter {
        if self.config.enable_kernel_rewriting {
            KernelRewriter::pipelined()
        } else {
            KernelRewriter::naive()
        }
    }

    /// Compile a graph: fusion, adaptive fusion, capacity profiling and
    /// LC-OPG planning (the offline stage).
    pub fn compile(&self, graph: &Graph) -> CompiledModel {
        let mut fusion = FusionPlan::default_fusion(graph);
        let mut fusion_report = None;
        if self.config.enable_adaptive_fusion {
            let pass = AdaptiveFusion::new(self.device.clone(), self.config.clone());
            let (refined, report) = pass.refine(graph, &fusion);
            fusion = refined;
            fusion_report = Some(report);
        }

        let options = self.rewriter().lowering_options();
        let capacities = CapacityProfiler::new(self.device.clone())
            .with_options(options)
            .capacities(graph, &fusion);

        let mode = if self.config.enable_opg {
            PlannerMode::Hybrid
        } else {
            PlannerMode::FullPreload
        };
        let solver = LcOpgSolver::new(self.device.clone(), self.config.clone()).with_mode(mode);
        let (plan, planner_report) = solver.plan_with(graph, &fusion, &capacities);

        CompiledModel {
            model_name: graph.name().to_string(),
            fusion,
            plan,
            planner_report,
            fusion_report,
        }
    }

    /// Run a compiled model on the simulated device.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (most importantly out-of-memory on
    /// constrained devices).
    pub fn run_compiled(
        &self,
        graph: &Graph,
        compiled: &CompiledModel,
    ) -> SimResult<ExecutionReport> {
        let executor =
            StreamingExecutor::new(self.device.clone(), self.rewriter().lowering_options())
                .with_embedded_transforms(self.config.enable_kernel_rewriting);
        let outcome = executor.execute(graph, &compiled.fusion, &compiled.plan)?;
        Ok(ExecutionReport::from_outcome(
            "FlashMem",
            &compiled.model_name,
            &outcome,
            compiled.streamed_fraction(),
        ))
    }

    /// Run a compiled model against a shared memory tracker (used by the
    /// multi-model runner so memory accumulates across models).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn run_compiled_with_tracker(
        &self,
        graph: &Graph,
        compiled: &CompiledModel,
        tracker: &mut MemoryTracker,
    ) -> SimResult<ExecutionReport> {
        let executor =
            StreamingExecutor::new(self.device.clone(), self.rewriter().lowering_options())
                .with_embedded_transforms(self.config.enable_kernel_rewriting);
        let outcome =
            executor.execute_with_tracker(graph, &compiled.fusion, &compiled.plan, tracker)?;
        Ok(ExecutionReport::from_outcome(
            "FlashMem",
            &compiled.model_name,
            &outcome,
            compiled.streamed_fraction(),
        ))
    }

    /// Compile and run a graph in one call.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn run_graph(&self, graph: &Graph) -> SimResult<ExecutionReport> {
        let compiled = self.compile(graph);
        self.run_compiled(graph, &compiled)
    }

    /// Compile and run one of the model-zoo specs.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn run(&self, model: &ModelSpec) -> SimResult<ExecutionReport> {
        let mut report = self.run_graph(model.graph())?;
        report.model = model.abbr.clone();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashmem_graph::ModelZoo;

    #[test]
    fn end_to_end_run_produces_sensible_report() {
        let runtime =
            FlashMem::new(DeviceSpec::oneplus_12()).with_config(FlashMemConfig::memory_priority());
        let model = ModelZoo::gptneo_small();
        let report = runtime.run(&model).unwrap();
        assert_eq!(report.framework, "FlashMem");
        assert_eq!(report.model, "GPTN-S");
        assert!(report.integrated_latency_ms > 0.0);
        assert!(report.peak_memory_mb > 0.0);
        assert!(report.average_memory_mb <= report.peak_memory_mb + 1e-9);
        assert!(report.energy_j > 0.0);
        assert!(report.streamed_weight_fraction > 0.0);
    }

    #[test]
    fn compile_reports_planner_and_fusion_activity() {
        let runtime =
            FlashMem::new(DeviceSpec::oneplus_12()).with_config(FlashMemConfig::memory_priority());
        let model = ModelZoo::vit();
        let compiled = runtime.compile(model.graph());
        assert!(compiled.planner_report.windows > 0);
        assert!(compiled.fusion_report.is_some());
        assert!(compiled.fusion.is_valid_partition(model.graph()));
        assert!(compiled.streamed_fraction() > 0.0);
    }

    #[test]
    fn disabling_opg_preloads_everything() {
        let runtime = FlashMem::new(DeviceSpec::oneplus_12())
            .with_config(FlashMemConfig::memory_priority().with_opg(false));
        let model = ModelZoo::gptneo_small();
        let compiled = runtime.compile(model.graph());
        assert_eq!(compiled.plan.streamed_bytes(), 0);
        let report = runtime.run_compiled(model.graph(), &compiled).unwrap();
        assert_eq!(report.streamed_weight_fraction, 0.0);
    }

    #[test]
    fn full_feature_set_beats_ablated_configurations() {
        // The Figure 7 direction: enabling OPG + fusion + rewriting must not
        // be slower or more memory hungry than the all-disabled configuration.
        let device = DeviceSpec::oneplus_12();
        let model = ModelZoo::vit();
        let full = FlashMem::new(device.clone())
            .with_config(FlashMemConfig::memory_priority())
            .run(&model)
            .unwrap();
        let ablated = FlashMem::new(device)
            .with_config(
                FlashMemConfig::memory_priority()
                    .with_opg(false)
                    .with_adaptive_fusion(false)
                    .with_kernel_rewriting(false),
            )
            .run(&model)
            .unwrap();
        assert!(full.integrated_latency_ms < ablated.integrated_latency_ms);
        assert!(full.average_memory_mb < ablated.average_memory_mb);
    }

    #[test]
    fn memory_priority_uses_less_memory_than_latency_priority() {
        let device = DeviceSpec::oneplus_12();
        let model = ModelZoo::gptneo_small();
        let mem = FlashMem::new(device.clone())
            .with_config(FlashMemConfig::memory_priority())
            .run(&model)
            .unwrap();
        let lat = FlashMem::new(device)
            .with_config(FlashMemConfig::latency_priority())
            .run(&model)
            .unwrap();
        assert!(mem.average_memory_mb <= lat.average_memory_mb + 1.0);
    }

    #[test]
    fn rewriter_follows_configuration() {
        let on = FlashMem::new(DeviceSpec::oneplus_12())
            .with_config(FlashMemConfig::default().with_kernel_rewriting(true));
        let off = FlashMem::new(DeviceSpec::oneplus_12())
            .with_config(FlashMemConfig::default().with_kernel_rewriting(false));
        assert!(on.rewriter().lowering_options().pipelined);
        assert!(!off.rewriter().lowering_options().pipelined);
    }
}
