//! Template-based kernel rewriting (Section 4.4).
//!
//! FlashMem rewrites GPU kernels so that weight loading for *future* layers is
//! embedded directly into the computation: each loop iteration prefetches the
//! next tile of the pipelined tensor list `L` and then computes on the current
//! tile, with no per-thread conditionals (branch divergence kills SIMT
//! efficiency on mobile GPUs). The real system instantiates OpenCL sources
//! from Jinja templates; here the same decision is captured by
//! [`KernelTemplate`], which (a) selects the lowering options the simulator
//! prices and (b) renders an illustrative pseudo-kernel source mirroring
//! Figure 5, so the transformation stays inspectable.

use flashmem_profiler::LoweringOptions;
use serde::{Deserialize, Serialize};

/// The kernel template used for a (fused) operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelTemplate {
    /// Figure 5 (a): load inputs, loop over tiles, compute. No streaming.
    Naive,
    /// A naive attempt at interleaving loads with compute using per-thread
    /// `if (tid < ws)` guards — functional but divergent.
    NaiveInterleaved,
    /// Figure 5 (b): the branch-free pipelined template — every iteration
    /// prefetches the next tile of the pipelined tensor list, then computes
    /// the current tile; a tail loop finishes leftover arithmetic.
    PipelinedBranchFree,
}

impl KernelTemplate {
    /// The lowering options the simulator should price for this template.
    pub fn lowering_options(&self) -> LoweringOptions {
        match self {
            KernelTemplate::Naive => LoweringOptions::texture_framework(),
            KernelTemplate::NaiveInterleaved => {
                let mut o = LoweringOptions::texture_framework();
                o.divergence_penalty = 0.25;
                o
            }
            KernelTemplate::PipelinedBranchFree => LoweringOptions::flashmem(),
        }
    }

    /// Human readable template name.
    pub fn name(&self) -> &'static str {
        match self {
            KernelTemplate::Naive => "naive",
            KernelTemplate::NaiveInterleaved => "naive_interleaved",
            KernelTemplate::PipelinedBranchFree => "pipelined_branch_free",
        }
    }
}

impl std::fmt::Display for KernelTemplate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Instantiates kernel templates for operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelRewriter {
    template: KernelTemplate,
}

impl KernelRewriter {
    /// A rewriter that emits the branch-free pipelined template (FlashMem's
    /// default when kernel rewriting is enabled).
    pub fn pipelined() -> Self {
        KernelRewriter {
            template: KernelTemplate::PipelinedBranchFree,
        }
    }

    /// A rewriter that leaves kernels in their naive form.
    pub fn naive() -> Self {
        KernelRewriter {
            template: KernelTemplate::Naive,
        }
    }

    /// A rewriter using the divergent interleaving strawman.
    pub fn naive_interleaved() -> Self {
        KernelRewriter {
            template: KernelTemplate::NaiveInterleaved,
        }
    }

    /// The template this rewriter instantiates.
    pub fn template(&self) -> KernelTemplate {
        self.template
    }

    /// The lowering options the executor should use for rewritten kernels.
    pub fn lowering_options(&self) -> LoweringOptions {
        self.template.lowering_options()
    }

    /// Render an illustrative pseudo-OpenCL source for `op_name`, streaming
    /// `pipeline_tensors` weight tensors for future layers. Mirrors the
    /// pseudo-code of Figure 5; used for documentation, debugging and tests —
    /// the simulator prices the template via
    /// [`lowering_options`](Self::lowering_options), not by parsing this text.
    pub fn render(&self, op_name: &str, pipeline_tensors: usize) -> String {
        match self.template {
            KernelTemplate::Naive => format!(
                "// kernel: {op_name} (naive)\n\
                 kernel void {op_name}(global const half* A, global const half* B, global half* C) {{\n\
                 \x20   int tid = get_global_id(0);\n\
                 \x20   load_tile(A, B);\n\
                 \x20   for (int i = 0; i < K_TILES; ++i) {{\n\
                 \x20       compute_tile(C, i);\n\
                 \x20   }}\n\
                 }}\n"
            ),
            KernelTemplate::NaiveInterleaved => format!(
                "// kernel: {op_name} (naive interleaved, divergent)\n\
                 kernel void {op_name}(global const half* A, global const half* B, global half* C,\n\
                 \x20                   global const half* L[{pipeline_tensors}]) {{\n\
                 \x20   int tid = get_global_id(0);\n\
                 \x20   load_tile(A, B);\n\
                 \x20   if (tid < COMP_SIZE) {{\n\
                 \x20       for (int i = 0; i < K_TILES; ++i) compute_tile(C, i);\n\
                 \x20       if (tid < WS) pipeline_load(L);\n\
                 \x20   }} else {{\n\
                 \x20       if (tid < WS) pipeline_load(L);\n\
                 \x20   }}\n\
                 }}\n"
            ),
            KernelTemplate::PipelinedBranchFree => format!(
                "// kernel: {op_name} (branch-free pipelined, {pipeline_tensors} streamed tensors)\n\
                 kernel void {op_name}(global const half* A, global const half* B, global half* C,\n\
                 \x20                   global const half* L[{pipeline_tensors}], read_write image2d_t tex_out) {{\n\
                 \x20   int tid = get_global_id(0);\n\
                 \x20   int ws = tensor_size(L);\n\
                 \x20   int c = ws / get_global_size(0);\n\
                 \x20   load_tile(A, B);\n\
                 \x20   for (int i = 0; i < c; ++i) {{\n\
                 \x20       compute_tile(C, i);\n\
                 \x20       float4 v = vload4(i, L[tid]);\n\
                 \x20       write_imagef(tex_out, tex_coord(tid, i), v);   // pipeline_load\n\
                 \x20   }}\n\
                 \x20   for (int i = c; i < K_TILES; ++i) {{\n\
                 \x20       compute_tile(C, i);                            // tail: leftover arithmetic\n\
                 \x20   }}\n\
                 }}\n"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_template_has_no_thread_branches() {
        let src = KernelRewriter::pipelined().render("matmul_fused", 3);
        assert!(
            !src.contains("if (tid"),
            "branch-free template must not guard on tid:\n{src}"
        );
        assert!(src.contains("pipeline_load"));
        assert!(src.contains("write_imagef"));
        assert!(src.contains("tail"));
    }

    #[test]
    fn naive_interleaved_template_is_divergent() {
        let src = KernelRewriter::naive_interleaved().render("matmul", 1);
        assert!(src.contains("if (tid"));
        let opts = KernelRewriter::naive_interleaved().lowering_options();
        assert!(opts.divergence_penalty > 0.0);
        assert!(!opts.pipelined);
    }

    #[test]
    fn naive_template_does_not_stream() {
        let src = KernelRewriter::naive().render("conv", 0);
        assert!(!src.contains("pipeline_load"));
        let opts = KernelRewriter::naive().lowering_options();
        assert!(!opts.pipelined);
        assert_eq!(opts.divergence_penalty, 0.0);
    }

    #[test]
    fn pipelined_options_enable_pipelining_without_divergence() {
        let opts = KernelRewriter::pipelined().lowering_options();
        assert!(opts.pipelined);
        assert_eq!(opts.divergence_penalty, 0.0);
    }

    #[test]
    fn render_mentions_operator_name_and_tensor_count() {
        let src = KernelRewriter::pipelined().render("attn_qkv", 7);
        assert!(src.contains("attn_qkv"));
        assert!(src.contains('7'));
    }

    #[test]
    fn template_names_are_distinct() {
        let names = [
            KernelTemplate::Naive.name(),
            KernelTemplate::NaiveInterleaved.name(),
            KernelTemplate::PipelinedBranchFree.name(),
        ];
        let mut unique = names.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }
}
