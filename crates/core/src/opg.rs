//! The Overlap Plan Generation (OPG) constraint model.
//!
//! Section 3.1 of the paper formalises OPG with three groups of decision
//! variables — the preload set `W`, the earliest-load indices `z_w` and the
//! per-layer chunk allocations `x_{w,ℓ}` — under constraints C0 (completeness),
//! C1 (loading-distance implication), C2 (peak transformation memory) and, in
//! the LC-OPG extension, C3 (per-layer load capacity). The objective balances
//! preload volume against loading distance with the weights `λ` and `μ`.
//!
//! Following the paper's *incremental scheduling* implementation note, the
//! model is built per weight over a rolling window of candidate kernels; the
//! [`crate::lc_opg::LcOpgSolver`] drives the windows in execution order and
//! maintains the shared capacity / memory state between them.

use flashmem_solver::{CpModel, LinearExpr, Solution, VarId};
use serde::{Deserialize, Serialize};

use crate::config::FlashMemConfig;

/// A candidate kernel slot for transforming chunks of one weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CandidateSlot {
    /// Kernel index (fusion-group execution order).
    pub kernel: usize,
    /// Remaining load capacity at this kernel, in chunks.
    pub capacity_chunks: u64,
    /// Remaining `M_peak` headroom if chunks become in-flight starting at this
    /// kernel, in chunks (already accounts for other weights' in-flight data).
    pub memory_headroom_chunks: u64,
}

/// The per-weight OPG window model plus handles to its decision variables.
#[derive(Debug, Clone)]
pub struct WeightWindowModel {
    /// The CP model (constraints C0–C3 restricted to this weight's window).
    pub model: CpModel,
    /// `x_{w,ℓ}` variables, parallel to the candidate list.
    pub x_vars: Vec<(usize, VarId)>,
    /// The earliest-load variable `z_w` (kernel index).
    pub z_var: VarId,
    /// The preload indicator (1 ⇒ the weight joins `W`).
    pub preload_var: VarId,
    /// Total chunks `T(w)` of the weight.
    pub total_chunks: u64,
}

/// The outcome of solving one weight window, extracted from a CP solution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowDecision {
    /// True if the weight should be preloaded (joins `W`).
    pub preload: bool,
    /// Chunk allocations `(kernel, chunks)` for streamed weights.
    pub assignments: Vec<(usize, u64)>,
    /// The earliest-load kernel `z_w`.
    pub disk_load_kernel: usize,
}

/// Build the CP model for scheduling one weight's chunks over its candidate
/// window.
///
/// `consumer_kernel` is `i_w`; `candidates` lists the kernels `ℓ < i_w` that
/// may transform chunks, with their remaining capacity (C3) and remaining
/// memory headroom (C2) already reduced by previously scheduled weights.
pub fn build_weight_window_model(
    consumer_kernel: usize,
    total_chunks: u64,
    candidates: &[CandidateSlot],
    config: &FlashMemConfig,
) -> WeightWindowModel {
    let mut model = CpModel::new();
    let t = total_chunks as i64;

    // Decision variables.
    let preload_var = model.new_bool_var("preload");
    // z_w ranges from 0 ("available before execution starts", the preload
    // convention) up to the consumer kernel.
    let z_var = model.new_int_var(0, consumer_kernel as i64, "z_w");
    let mut x_vars = Vec::with_capacity(candidates.len());
    for slot in candidates {
        let ub = slot
            .capacity_chunks
            .min(slot.memory_headroom_chunks)
            .min(total_chunks) as i64;
        let v = model.new_int_var(0, ub, &format!("x_l{}", slot.kernel));
        x_vars.push((slot.kernel, v));
    }

    // C0 — completeness: streamed chunks plus the preload escape hatch cover
    // the weight exactly: Σ x_ℓ + T(w)·preload = T(w).
    let mut completeness = LinearExpr::new();
    for (_, v) in &x_vars {
        completeness = completeness.plus(*v, 1);
    }
    completeness = completeness.plus(preload_var, t);
    model.add_eq(completeness, t);

    // C1 — loading-distance implication: x_{w,ℓ} ≥ 1 ⇒ z_w ≤ ℓ.
    for (kernel, v) in &x_vars {
        model.add_if_ge_then_le(*v, 1, z_var, *kernel as i64);
    }
    // A preloaded weight is loaded before kernel 0 by convention.
    model.add_if_ge_then_le(preload_var, 1, z_var, 0);

    // C2 — peak transformation memory: the running prefix of this weight's
    // in-flight chunks must fit the remaining headroom at every candidate.
    for (idx, slot) in candidates.iter().enumerate() {
        let mut prefix = LinearExpr::new();
        for (_, v) in x_vars.iter().take(idx + 1) {
            prefix = prefix.plus(*v, 1);
        }
        model.add_le(prefix, slot.memory_headroom_chunks as i64);
    }

    // (C3 — per-layer capacity — is enforced through the x-variable upper
    // bounds above.)

    // Objective: λ·T(w)·preload + (1−λ)·(i_w − z_w) + μ·Σ (i_w − 1 − ℓ)·x_ℓ.
    // Coefficients are scaled to integers; the constant i_w term is irrelevant
    // to the argmin but kept for interpretability of the objective value.
    let preload_cost = ((config.lambda * 1_000.0) as i64).max(1) * t.max(1);
    let distance_cost = (((1.0 - config.lambda) * 100.0) as i64).max(1);
    let chunk_distance_cost = (config.mu * 10.0) as i64;
    let mut objective = LinearExpr::new()
        .plus(preload_var, preload_cost)
        .plus(z_var, -distance_cost)
        .plus_const(distance_cost * consumer_kernel as i64);
    if chunk_distance_cost > 0 {
        for (kernel, v) in &x_vars {
            let dist = (consumer_kernel as i64 - 1 - *kernel as i64).max(0);
            objective = objective.plus(*v, chunk_distance_cost * dist);
        }
    }
    model.minimize(objective);

    WeightWindowModel {
        model,
        x_vars,
        z_var,
        preload_var,
        total_chunks,
    }
}

/// Extract the scheduling decision from a CP solution of a window model.
pub fn extract_decision(window: &WeightWindowModel, solution: &Solution) -> WindowDecision {
    let preload = solution.value(window.preload_var) >= 1;
    if preload {
        return WindowDecision {
            preload: true,
            assignments: Vec::new(),
            disk_load_kernel: 0,
        };
    }
    let assignments: Vec<(usize, u64)> = window
        .x_vars
        .iter()
        .filter_map(|(kernel, v)| {
            let chunks = solution.value(*v);
            if chunks > 0 {
                Some((*kernel, chunks as u64))
            } else {
                None
            }
        })
        .collect();
    let disk_load_kernel = assignments
        .iter()
        .map(|(k, _)| *k)
        .min()
        .unwrap_or(solution.value(window.z_var).max(0) as usize);
    WindowDecision {
        preload: false,
        assignments,
        disk_load_kernel,
    }
}

/// A greedy warm-start hint for a window model: fill candidates from the
/// closest to the consumer backwards, respecting capacity and memory bounds.
/// Returns a full assignment vector ordered by variable id, or `None` if the
/// greedy fill cannot cover the weight (the hint then falls back to preload).
pub fn greedy_hint(window: &WeightWindowModel) -> Vec<i64> {
    let num_vars = window.model.num_vars();
    let mut assignment = vec![0i64; num_vars];
    let mut remaining = window.total_chunks as i64;

    // Variable ids: 0 = preload, 1 = z, then x vars in candidate order.
    // Fill from the last candidate (closest to the consumer) backwards.
    for (idx, (_, v)) in window.x_vars.iter().enumerate().rev() {
        if remaining == 0 {
            break;
        }
        let ub = window.model.domain(*v).hi;
        // Respect the prefix memory constraints conservatively by never
        // exceeding the candidate's own headroom (already in the ub).
        let take = ub.min(remaining);
        assignment[v.0] = take;
        remaining -= take;
        let _ = idx;
    }

    // z = earliest kernel with a non-zero allocation.
    let z = window
        .x_vars
        .iter()
        .filter(|(_, v)| assignment[v.0] > 0)
        .map(|(k, _)| *k as i64)
        .min()
        .unwrap_or(0);
    assignment[window.z_var.0] = z;
    assignment[window.preload_var.0] = 0;

    // Backfilling from the consumer can still violate a prefix-memory bound
    // in pathological headroom profiles; the preload escape hatch is always
    // feasible, so fall back to it rather than hand the solver a bad hint.
    if remaining > 0 || !window.model.is_feasible(&assignment) {
        assignment = vec![0i64; num_vars];
        assignment[window.preload_var.0] = 1;
        assignment[window.z_var.0] = 0;
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashmem_solver::{CpSolver, SolveStatus, SolverConfig};

    fn candidates(caps: &[(usize, u64, u64)]) -> Vec<CandidateSlot> {
        caps.iter()
            .map(
                |&(kernel, capacity_chunks, memory_headroom_chunks)| CandidateSlot {
                    kernel,
                    capacity_chunks,
                    memory_headroom_chunks,
                },
            )
            .collect()
    }

    #[test]
    fn window_with_ample_capacity_streams_everything_close_to_consumer() {
        let config = FlashMemConfig::memory_priority();
        let slots = candidates(&[(5, 10, 100), (6, 10, 100), (7, 10, 100)]);
        let window = build_weight_window_model(8, 12, &slots, &config);
        let out = CpSolver::with_config(SolverConfig::with_time_limit_ms(2_000))
            .solve_with_hint(&window.model, Some(&greedy_hint(&window)));
        assert!(out.status.has_solution(), "{:?}", out.status);
        let decision = extract_decision(&window, &out.solution.unwrap());
        assert!(!decision.preload);
        let total: u64 = decision.assignments.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 12);
        // With μ > 0 the solver prefers the latest kernels.
        assert!(decision.assignments.iter().all(|(k, _)| *k >= 5));
        assert!(decision
            .assignments
            .iter()
            .any(|(k, c)| *k == 7 && *c == 10));
    }

    #[test]
    fn insufficient_capacity_forces_preload() {
        let config = FlashMemConfig::memory_priority();
        let slots = candidates(&[(2, 2, 100), (3, 3, 100)]);
        let window = build_weight_window_model(4, 40, &slots, &config);
        let out = CpSolver::with_config(SolverConfig::with_time_limit_ms(2_000))
            .solve_with_hint(&window.model, Some(&greedy_hint(&window)));
        assert!(out.status.has_solution());
        let decision = extract_decision(&window, &out.solution.unwrap());
        assert!(decision.preload, "only 5 chunks of capacity for 40 chunks");
    }

    #[test]
    fn memory_headroom_limits_prefix_allocations() {
        let config = FlashMemConfig::memory_priority();
        // Plenty of per-kernel capacity but almost no memory headroom early.
        let slots = candidates(&[(1, 50, 1), (2, 50, 1), (3, 50, 30)]);
        let window = build_weight_window_model(4, 20, &slots, &config);
        let out = CpSolver::with_config(SolverConfig::with_time_limit_ms(2_000))
            .solve_with_hint(&window.model, Some(&greedy_hint(&window)));
        let decision = extract_decision(&window, &out.solution.unwrap());
        assert!(!decision.preload);
        // The prefix ending at kernel 1 may hold at most 1 chunk.
        let at_1: u64 = decision
            .assignments
            .iter()
            .filter(|(k, _)| *k == 1)
            .map(|(_, c)| c)
            .sum();
        assert!(at_1 <= 1);
        let total: u64 = decision.assignments.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn c1_links_disk_load_to_earliest_assignment() {
        let config = FlashMemConfig::memory_priority();
        let slots = candidates(&[(3, 8, 100), (4, 8, 100)]);
        let window = build_weight_window_model(5, 10, &slots, &config);
        let out =
            CpSolver::with_config(SolverConfig::with_time_limit_ms(2_000)).solve(&window.model);
        assert_eq!(out.status, SolveStatus::Optimal);
        let solution = out.solution.unwrap();
        let decision = extract_decision(&window, &solution);
        let earliest = decision.assignments.iter().map(|(k, _)| *k).min().unwrap();
        assert!(solution.value(window.z_var) <= earliest as i64);
        assert_eq!(decision.disk_load_kernel, earliest);
    }

    #[test]
    fn greedy_hint_is_always_feasible() {
        let config = FlashMemConfig::balanced();
        for (total, caps) in [
            (
                12u64,
                vec![(5usize, 10u64, 100u64), (6, 10, 100), (7, 10, 100)],
            ),
            (40, vec![(2, 2, 100), (3, 3, 100)]),
            (20, vec![(1, 50, 1), (2, 50, 1), (3, 50, 30)]),
        ] {
            let slots = candidates(&caps);
            let window = build_weight_window_model(9, total, &slots, &config);
            let hint = greedy_hint(&window);
            assert!(
                window.model.is_feasible(&hint),
                "greedy hint infeasible for total={total}"
            );
        }
    }

    #[test]
    fn empty_candidate_window_can_only_preload() {
        let config = FlashMemConfig::memory_priority();
        let window = build_weight_window_model(0, 5, &[], &config);
        let out = CpSolver::new().solve(&window.model);
        assert!(out.status.has_solution());
        let decision = extract_decision(&window, &out.solution.unwrap());
        assert!(decision.preload);
    }

    #[test]
    fn lower_lambda_prefers_streaming_less_aggressively() {
        // With λ→0 the preload penalty vanishes, so a tight window may still
        // choose preload when distance costs dominate; with λ→1 the solver
        // avoids preload whenever the window fits the weight.
        let slots = candidates(&[(1, 20, 100), (2, 20, 100)]);
        let high = FlashMemConfig::memory_priority().with_lambda(0.95);
        let window_high = build_weight_window_model(3, 20, &slots, &high);
        let out_high = CpSolver::new().solve(&window_high.model);
        let d_high = extract_decision(&window_high, &out_high.solution.unwrap());
        assert!(!d_high.preload);
    }
}
