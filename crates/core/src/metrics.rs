//! Execution reports.
//!
//! Every run — FlashMem or a baseline framework — is summarised by an
//! [`ExecutionReport`] holding the quantities the paper's tables compare:
//! initialization latency, execution latency, integrated latency, peak and
//! average memory, power and energy, plus the memory trace needed for
//! Figure 6-style plots.

use flashmem_gpu_sim::engine::ExecutionOutcome;
use flashmem_gpu_sim::trace::{EventKind, MemoryTrace};
use serde::{Deserialize, Serialize};

/// Summary of one inference run on the simulated device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Name of the framework that produced the run (e.g. `"FlashMem"`).
    pub framework: String,
    /// Name of the model executed.
    pub model: String,
    /// Initialization latency in milliseconds (weight preload + transform).
    /// Zero-ish for FlashMem, whose loading is folded into execution.
    pub init_latency_ms: f64,
    /// Execution latency in milliseconds (kernel time after initialization).
    pub exec_latency_ms: f64,
    /// Integrated latency (init + exec) — the headline column of Table 7.
    pub integrated_latency_ms: f64,
    /// Busy time of disk/memory transfers over the whole run in milliseconds
    /// (the "Load" phase of Table 1).
    pub load_busy_ms: f64,
    /// Busy time of layout-transformation work in milliseconds (the "Trans."
    /// phase of Table 1).
    pub transform_busy_ms: f64,
    /// Busy time of compute kernels in milliseconds (the "Infer" phase of
    /// Table 1).
    pub kernel_busy_ms: f64,
    /// Peak memory footprint in MB.
    pub peak_memory_mb: f64,
    /// Time-weighted average memory footprint in MB — the Table 8 metric.
    pub average_memory_mb: f64,
    /// Average power draw in watts (Table 9).
    pub average_power_w: f64,
    /// Energy per inference in joules (Table 9).
    pub energy_j: f64,
    /// Fraction of the makespan during which transfers overlapped compute.
    pub overlap_fraction: f64,
    /// Fraction of weight bytes streamed during execution (vs preloaded).
    pub streamed_weight_fraction: f64,
    /// The memory usage trace over the run.
    pub memory_trace: MemoryTrace,
}

impl ExecutionReport {
    /// Build a report from a simulator outcome.
    pub fn from_outcome(
        framework: &str,
        model: &str,
        outcome: &ExecutionOutcome,
        streamed_weight_fraction: f64,
    ) -> Self {
        ExecutionReport {
            framework: framework.to_string(),
            model: model.to_string(),
            init_latency_ms: outcome.init_time_ms,
            exec_latency_ms: outcome.exec_time_ms,
            integrated_latency_ms: outcome.total_time_ms,
            load_busy_ms: outcome.timeline.busy_ms(EventKind::Transfer),
            transform_busy_ms: outcome.timeline.busy_ms(EventKind::Transform),
            kernel_busy_ms: outcome.timeline.busy_ms(EventKind::Kernel),
            peak_memory_mb: outcome.peak_memory_mib(),
            average_memory_mb: outcome.average_memory_mib(),
            average_power_w: outcome.energy.average_power_w,
            energy_j: outcome.energy.energy_j,
            overlap_fraction: outcome.timeline.overlap_fraction(),
            streamed_weight_fraction: streamed_weight_fraction.clamp(0.0, 1.0),
            memory_trace: outcome.memory_trace.clone(),
        }
    }

    /// Speedup of this run over `other` on integrated latency.
    pub fn speedup_over(&self, other: &ExecutionReport) -> f64 {
        if self.integrated_latency_ms <= 0.0 {
            return f64::INFINITY;
        }
        other.integrated_latency_ms / self.integrated_latency_ms
    }

    /// Memory-reduction factor of this run over `other` on average memory.
    pub fn memory_reduction_over(&self, other: &ExecutionReport) -> f64 {
        if self.average_memory_mb <= 0.0 {
            return f64::INFINITY;
        }
        other.average_memory_mb / self.average_memory_mb
    }
}

impl std::fmt::Display for ExecutionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} on {}: integrated {:.0} ms (init {:.0} + exec {:.0}), peak {:.0} MB, avg {:.0} MB, {:.1} J",
            self.framework,
            self.model,
            self.integrated_latency_ms,
            self.init_latency_ms,
            self.exec_latency_ms,
            self.peak_memory_mb,
            self.average_memory_mb,
            self.energy_j
        )
    }
}

/// Geometric mean of a slice of positive ratios — used for the "Geo-Mean"
/// rows of Tables 7 and 8. Returns 1.0 for an empty slice and ignores
/// non-finite or non-positive entries.
pub fn geo_mean(ratios: &[f64]) -> f64 {
    let valid: Vec<f64> = ratios
        .iter()
        .copied()
        .filter(|r| r.is_finite() && *r > 0.0)
        .collect();
    if valid.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = valid.iter().map(|r| r.ln()).sum();
    (log_sum / valid.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(framework: &str, integrated: f64, avg_mem: f64) -> ExecutionReport {
        ExecutionReport {
            framework: framework.to_string(),
            model: "m".to_string(),
            init_latency_ms: integrated * 0.6,
            exec_latency_ms: integrated * 0.4,
            integrated_latency_ms: integrated,
            load_busy_ms: integrated * 0.3,
            transform_busy_ms: integrated * 0.3,
            kernel_busy_ms: integrated * 0.4,
            peak_memory_mb: avg_mem * 1.5,
            average_memory_mb: avg_mem,
            average_power_w: 5.0,
            energy_j: 5.0 * integrated / 1000.0,
            overlap_fraction: 0.0,
            streamed_weight_fraction: 0.0,
            memory_trace: MemoryTrace::new(),
        }
    }

    #[test]
    fn speedup_and_memory_reduction() {
        let ours = report("FlashMem", 500.0, 100.0);
        let baseline = report("MNN", 4000.0, 600.0);
        assert!((ours.speedup_over(&baseline) - 8.0).abs() < 1e-9);
        assert!((ours.memory_reduction_over(&baseline) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn geo_mean_basics() {
        assert_eq!(geo_mean(&[]), 1.0);
        assert!((geo_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        // Non-finite and non-positive entries are ignored.
        assert!((geo_mean(&[2.0, 8.0, f64::INFINITY, 0.0]) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_framework_and_latency() {
        let r = report("FlashMem", 1234.0, 256.0);
        let text = r.to_string();
        assert!(text.contains("FlashMem"));
        assert!(text.contains("1234"));
    }

    #[test]
    fn zero_latency_speedup_is_infinite() {
        let zero = report("x", 0.0, 0.0);
        let other = report("y", 10.0, 10.0);
        assert!(zero.speedup_over(&other).is_infinite());
        assert!(zero.memory_reduction_over(&other).is_infinite());
    }
}
