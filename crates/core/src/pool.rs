//! A std-only work-stealing thread pool for embarrassingly parallel sweeps.
//!
//! Everything above the deterministic simulator — the benchmark matrix, the
//! serving sweep, the scheduler fuzz harness — is a pile of independent
//! (compile, execute) jobs that used to run on one OS thread, so wall-clock
//! time bounded how many scenarios a CI run could afford. This pool fans
//! those jobs out across OS threads with nothing but `std`: no tokio, no
//! rayon, no crossbeam.
//!
//! Design, in the order the constraints forced it:
//!
//! * **Scoped join** — jobs may borrow the caller's data (engine registries,
//!   model slices, device specs), so execution happens inside
//!   [`std::thread::scope`]: every worker is joined before [`ThreadPool::scope`]
//!   returns and borrows never outlive the call.
//! * **Work stealing via sharded `Mutex<VecDeque>`** — each worker owns one
//!   shard of the job queue; submission round-robins across shards, a worker
//!   pops its own shard from the front and, when empty, steals from the
//!   *back* of the other shards, so contention stays on distinct locks until
//!   the queues drain.
//! * **Condvar parking** — a worker that finds every shard empty while the
//!   scope is still submitting parks on a [`Condvar`] instead of spinning;
//!   each submission wakes one parked worker, and closing the scope wakes
//!   them all for the final drain.
//! * **Deterministic results** — [`ThreadPool::parallel_map`] and
//!   [`ThreadPool::run_jobs`] write each job's result into its
//!   submission-index slot, so the output order is the input order no matter
//!   how the jobs interleave. Combined with the deterministic simulator this
//!   is what keeps parallel bench JSON byte-identical to serial runs.
//!   [`ThreadPool::try_parallel_map`] extends the same guarantee to fallible
//!   jobs (the serve fleet's per-device timelines): every job completes, then
//!   the first failure *by submission index* is the one propagated, and a
//!   panicking job is caught and re-raised instead of hanging the scope.
//! * **Serial bisection path** — a pool of width 1 (`--threads 1`,
//!   `FLASHMEM_THREADS=1`) does not spawn a single thread: jobs run inline on
//!   the caller thread in submission order, the exact code path the serial
//!   harness always took.
//! * **No nested fan-out** — a pool call made *from inside a pool worker*
//!   (e.g. `run_matrix` invoked by a `bin/all` experiment job) runs inline
//!   serially rather than spawning `threads²` workers; the outer fan-out
//!   already owns the hardware.
//!
//! The process-wide pool used by the bench harness and the fuzz harness is
//! [`global`]; its width comes from the `FLASHMEM_THREADS` environment
//! variable when set (the bench binaries also accept `--threads N` and call
//! [`configure_global`] before first use), falling back to
//! [`std::thread::available_parallelism`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Environment variable overriding the [`global`] pool's worker count.
pub const THREADS_ENV: &str = "FLASHMEM_THREADS";

const POISONED: &str = "thread pool lock poisoned";

type Job<'env> = Box<dyn FnOnce() + Send + 'env>;

std::thread_local! {
    /// Set inside pool workers so nested pool calls run inline instead of
    /// spawning `threads²` threads (or deadlocking a future persistent pool).
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn in_worker() -> bool {
    IN_WORKER.with(std::cell::Cell::get)
}

/// Shared state of one [`ThreadPool::scope`] region.
struct ScopeState<'env> {
    /// One job shard per worker: owner pops the front, thieves pop the back.
    shards: Box<[Mutex<VecDeque<Job<'env>>>]>,
    /// `true` while the scope closure may still submit jobs. Workers park on
    /// [`Self::parked`] only while this is `true`; once it flips, an empty
    /// sweep over the shards means the region is drained.
    open: Mutex<bool>,
    parked: Condvar,
    /// Round-robin submission cursor.
    cursor: AtomicUsize,
}

impl<'env> ScopeState<'env> {
    fn new(workers: usize) -> Self {
        ScopeState {
            shards: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            open: Mutex::new(true),
            parked: Condvar::new(),
            cursor: AtomicUsize::new(0),
        }
    }

    /// Pop a job: own shard first (front), then steal from the back of the
    /// others, scanning outward from `home` so thieves spread over victims.
    fn grab(&self, home: usize) -> Option<Job<'env>> {
        if let Some(job) = self.shards[home].lock().expect(POISONED).pop_front() {
            return Some(job);
        }
        let n = self.shards.len();
        for offset in 1..n {
            let victim = (home + offset) % n;
            if let Some(job) = self.shards[victim].lock().expect(POISONED).pop_back() {
                return Some(job);
            }
        }
        None
    }

    fn any_queued(&self) -> bool {
        self.shards
            .iter()
            .any(|shard| !shard.lock().expect(POISONED).is_empty())
    }

    /// Flip the region closed and wake every parked worker for the final
    /// drain. Called when the scope closure returns — or unwinds, via
    /// [`CloseOnDrop`], so a panicking submitter cannot strand parked
    /// workers inside [`std::thread::scope`]'s join.
    fn close(&self) {
        let mut open = self.open.lock().expect(POISONED);
        *open = false;
        self.parked.notify_all();
    }

    fn worker(&self, home: usize) {
        IN_WORKER.with(|flag| flag.set(true));
        loop {
            if let Some(job) = self.grab(home) {
                job();
                continue;
            }
            // Nothing grabbable: park until a submission or the close signal.
            // The predicate re-check happens under `open`'s lock, and every
            // submitter takes that lock after pushing, so a wakeup can never
            // be missed between the failed grab and the wait.
            let mut open = self.open.lock().expect(POISONED);
            loop {
                if self.any_queued() {
                    break;
                }
                if !*open {
                    return;
                }
                open = self.parked.wait(open).expect(POISONED);
            }
        }
    }
}

/// Guard that closes a scope region even if the submitting closure panics.
struct CloseOnDrop<'scope, 'env>(&'scope ScopeState<'env>);

impl Drop for CloseOnDrop<'_, '_> {
    fn drop(&mut self) {
        self.0.close();
    }
}

/// Handle for submitting jobs into a [`ThreadPool::scope`] region.
///
/// Jobs may borrow anything that outlives the `scope` call (`'env`); every
/// job is guaranteed to have finished when `scope` returns.
pub struct Scope<'scope, 'env> {
    state: Option<&'scope ScopeState<'env>>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Submit a job.
    ///
    /// On a width-1 (or nested) pool this runs the job *immediately, inline,
    /// on the caller thread* — the exact serial code path — so submission
    /// order is execution order under `--threads 1`.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'env) {
        let Some(state) = self.state else {
            job();
            return;
        };
        let shard = state.cursor.fetch_add(1, Ordering::Relaxed) % state.shards.len();
        state.shards[shard]
            .lock()
            .expect(POISONED)
            .push_back(Box::new(job));
        // Wake one parked worker. Taking the `open` lock orders this wakeup
        // after any worker's empty-shard re-check, so the push above is
        // always visible to whoever wakes.
        let open = state.open.lock().expect(POISONED);
        state.parked.notify_one();
        drop(open);
    }
}

/// A fixed-width work-stealing thread pool. See the [module docs](self) for
/// the design.
///
/// The pool itself holds no threads: workers are spawned per
/// [`scope`](Self::scope) region inside [`std::thread::scope`] so jobs can
/// borrow caller data, and are all joined before the region returns.
#[derive(Debug, Clone, Copy)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// A pool as wide as the environment allows: `FLASHMEM_THREADS` when set
    /// to a positive integer, else [`std::thread::available_parallelism`].
    pub fn new() -> Self {
        ThreadPool {
            threads: default_threads(),
        }
    }

    /// A pool with exactly `threads` workers (clamped to at least 1).
    /// Width 1 never spawns a thread: see [`Scope::spawn`].
    pub fn with_threads(threads: usize) -> Self {
        ThreadPool {
            threads: threads.max(1),
        }
    }

    /// The pool's worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f` with a [`Scope`] handle for submitting jobs; returns only
    /// after every submitted job has finished. Jobs may borrow anything the
    /// caller can borrow.
    pub fn scope<'env, R>(&self, f: impl FnOnce(&Scope<'_, 'env>) -> R) -> R {
        self.scope_with(self.threads, f)
    }

    /// [`scope`](Self::scope) with the worker count capped at `width` — used
    /// by the batch helpers so a 2-job batch on a 16-wide pool spawns 2
    /// workers, not 16.
    fn scope_with<'env, R>(&self, width: usize, f: impl FnOnce(&Scope<'_, 'env>) -> R) -> R {
        let width = width.clamp(1, self.threads);
        if width == 1 || in_worker() {
            return f(&Scope { state: None });
        }
        let state = ScopeState::new(width);
        std::thread::scope(|s| {
            for home in 0..width {
                let state = &state;
                s.spawn(move || state.worker(home));
            }
            let guard = CloseOnDrop(&state);
            let result = f(&Scope {
                state: Some(guard.0),
            });
            drop(guard); // close + notify, then thread::scope joins the drain
            result
        })
    }

    /// Map `f` over `items` on the pool, returning results in input order.
    ///
    /// Width 1 (or a nested call) takes the exact serial path:
    /// `items.into_iter().map(f).collect()` on the caller thread.
    pub fn parallel_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        if self.threads == 1 || in_worker() || items.len() <= 1 {
            return items.into_iter().map(f).collect();
        }
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        let f = &f;
        self.scope_with(items.len(), |scope| {
            for (slot, item) in slots.iter().zip(items) {
                scope.spawn(move || {
                    *slot.lock().expect(POISONED) = Some(f(item));
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect(POISONED)
                    .expect("pool job completed")
            })
            .collect()
    }

    /// Map a *fallible* `f` over `items` on the pool, returning all results
    /// in input order or the first failure **by submission index**.
    ///
    /// Every job runs to completion before failures are examined (the jobs
    /// are independent; there is no cancellation), so which error surfaces is
    /// a function of the inputs alone, never of how the jobs interleaved —
    /// the property that keeps a parallel serve fleet's error behaviour
    /// byte-identical to `--threads 1`.
    ///
    /// Panic-safe: a job that panics is caught on its worker (it cannot hang
    /// the scope or strand parked siblings) and re-raised on the caller
    /// thread. Panics and `Err`s share one deterministic ordering: the
    /// earliest failing submission index wins, whichever kind it is.
    pub fn try_parallel_map<T, R, E, F>(&self, items: Vec<T>, f: F) -> Result<Vec<R>, E>
    where
        T: Send,
        R: Send,
        E: Send,
        F: Fn(T) -> Result<R, E> + Sync,
    {
        let attempts = self.parallel_map(items, |item| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item)))
        });
        let mut results = Vec::with_capacity(attempts.len());
        for attempt in attempts {
            match attempt {
                Ok(Ok(value)) => results.push(value),
                Ok(Err(error)) => return Err(error),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        Ok(results)
    }

    /// Run a batch of heterogeneous jobs, returning results in submission
    /// order. Width 1 (or a nested call) runs them inline in order.
    pub fn run_jobs<'env, R: Send>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> R + Send + 'env>>,
    ) -> Vec<R> {
        if self.threads == 1 || in_worker() || jobs.len() <= 1 {
            return jobs.into_iter().map(|job| job()).collect();
        }
        let slots: Vec<Mutex<Option<R>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
        self.scope_with(jobs.len(), |scope| {
            for (slot, job) in slots.iter().zip(jobs) {
                scope.spawn(move || {
                    *slot.lock().expect(POISONED) = Some(job());
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect(POISONED)
                    .expect("pool job completed")
            })
            .collect()
    }
}

impl Default for ThreadPool {
    fn default() -> Self {
        ThreadPool::new()
    }
}

/// The default worker count: `FLASHMEM_THREADS` when set to a positive
/// integer, else [`std::thread::available_parallelism`] (1 if unknown).
pub fn default_threads() -> usize {
    if let Ok(value) = std::env::var(THREADS_ENV) {
        if let Ok(threads) = value.trim().parse::<usize>() {
            if threads >= 1 {
                return threads;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// The process-wide pool every sweep fans out on (the bench harness, the
/// serve sweep, `bin/all`, the fuzz harness).
pub fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(ThreadPool::new)
}

/// Pin the [`global`] pool's width (the `--threads N` flag calls this before
/// any sweep runs). First call wins: if the global pool was already used at
/// a different width, that width is kept and returned — with a warning on
/// stderr, so a `--threads` flag that lost the race is observable instead of
/// silently becoming a no-op.
pub fn configure_global(threads: usize) -> &'static ThreadPool {
    let pool = GLOBAL.get_or_init(|| ThreadPool::with_threads(threads));
    if pool.threads() != threads.max(1) {
        eprintln!(
            "warning: thread pool already pinned to width {} before configure_global({threads}); \
             keeping {}",
            pool.threads(),
            pool.threads()
        );
    }
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn parallel_map_preserves_input_order() {
        let pool = ThreadPool::with_threads(4);
        let items: Vec<usize> = (0..64).collect();
        // Invert per-item cost so late items finish first under any fair
        // schedule: order must still come out by index.
        let out = pool.parallel_map(items, |i| {
            std::thread::sleep(Duration::from_micros(((64 - i) * 20) as u64));
            i * 2
        });
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn width_one_runs_inline_on_the_caller_thread_in_order() {
        let pool = ThreadPool::with_threads(1);
        let caller = std::thread::current().id();
        let seen = Mutex::new(Vec::new());
        pool.scope(|scope| {
            for i in 0..8 {
                let seen = &seen;
                scope.spawn(move || {
                    assert_eq!(std::thread::current().id(), caller);
                    seen.lock().unwrap().push(i);
                });
            }
        });
        // Inline execution == submission order: the serial bisection path.
        assert_eq!(*seen.lock().unwrap(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_actually_run_on_multiple_threads() {
        let pool = ThreadPool::with_threads(4);
        let distinct = Mutex::new(std::collections::HashSet::new());
        pool.parallel_map((0..32).collect::<Vec<_>>(), |_| {
            std::thread::sleep(Duration::from_millis(2));
            distinct.lock().unwrap().insert(std::thread::current().id());
        });
        // All four workers should have participated given 32 × 2 ms of work.
        assert!(distinct.lock().unwrap().len() > 1);
    }

    #[test]
    fn nested_pool_calls_run_inline_instead_of_fanning_out() {
        let outer = ThreadPool::with_threads(4);
        let nested_inline = AtomicUsize::new(0);
        outer.parallel_map((0..4).collect::<Vec<_>>(), |_| {
            let inner = ThreadPool::with_threads(4);
            let caller = std::thread::current().id();
            let out = inner.parallel_map((0..4).collect::<Vec<_>>(), |i| {
                if std::thread::current().id() == caller {
                    nested_inline.fetch_add(1, Ordering::Relaxed);
                }
                i
            });
            assert_eq!(out, vec![0, 1, 2, 3]);
        });
        // Every nested job ran inline on its outer worker.
        assert_eq!(nested_inline.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn workers_park_and_wake_for_trickled_submissions() {
        let pool = ThreadPool::with_threads(3);
        let done = AtomicUsize::new(0);
        pool.scope(|scope| {
            for _ in 0..9 {
                // Trickle jobs in slowly enough that workers drain the shards
                // and park between submissions: the condvar path must wake
                // them for each new job.
                std::thread::sleep(Duration::from_millis(2));
                let done = &done;
                scope.spawn(move || {
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(done.load(Ordering::Relaxed), 9);
    }

    #[test]
    fn try_parallel_map_collects_results_in_order_on_success() {
        let pool = ThreadPool::with_threads(4);
        let out: Result<Vec<usize>, String> =
            pool.try_parallel_map((0..16).collect::<Vec<_>>(), |i| Ok(i * 3));
        assert_eq!(out.unwrap(), (0..16).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn try_parallel_map_propagates_the_first_error_by_submission_index() {
        let pool = ThreadPool::with_threads(4);
        // Index 9 fails *fast*, index 2 fails *slow*: under any schedule the
        // index-9 error is available first, but index 2 must still win.
        let out: Result<Vec<usize>, String> =
            pool.try_parallel_map((0..16).collect::<Vec<_>>(), |i| {
                if i == 2 {
                    std::thread::sleep(Duration::from_millis(20));
                    Err(format!("job {i} failed"))
                } else if i == 9 {
                    Err(format!("job {i} failed"))
                } else {
                    Ok(i)
                }
            });
        assert_eq!(out.unwrap_err(), "job 2 failed");
    }

    #[test]
    fn try_parallel_map_reraises_a_panicking_job_instead_of_hanging() {
        let pool = ThreadPool::with_threads(4);
        let completed = AtomicUsize::new(0);
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.try_parallel_map::<_, usize, String, _>((0..8).collect::<Vec<_>>(), |i| {
                if i == 3 {
                    panic!("job {i} exploded");
                }
                completed.fetch_add(1, Ordering::Relaxed);
                Ok(i)
            })
        }));
        let payload = attempt.expect_err("panic must propagate to the caller");
        let message = payload
            .downcast_ref::<String>()
            .expect("panic payload is the formatted message");
        assert_eq!(message, "job 3 exploded");
        // Every sibling job still ran to completion: nothing was stranded.
        assert_eq!(completed.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn run_jobs_preserves_submission_order_for_heterogeneous_work() {
        let pool = ThreadPool::with_threads(4);
        let jobs: Vec<Box<dyn FnOnce() -> String + Send>> = vec![
            Box::new(|| {
                std::thread::sleep(Duration::from_millis(5));
                "slow".to_string()
            }),
            Box::new(|| "fast".to_string()),
            Box::new(|| format!("{}", 6 * 7)),
        ];
        assert_eq!(pool.run_jobs(jobs), vec!["slow", "fast", "42"]);
    }

    #[test]
    fn borrowed_data_flows_into_jobs_and_back() {
        let pool = ThreadPool::with_threads(2);
        let words = ["alpha".to_string(), "beta".to_string()];
        let lens = pool.parallel_map(words.iter().collect::<Vec<_>>(), |w| w.len());
        assert_eq!(lens, vec![5, 4]);
    }

    #[test]
    fn default_width_is_at_least_one() {
        assert!(ThreadPool::new().threads() >= 1);
        assert_eq!(ThreadPool::with_threads(0).threads(), 1);
        assert!(default_threads() >= 1);
    }

    #[test]
    fn global_pool_is_stable_across_calls() {
        let a = global() as *const ThreadPool;
        let b = global() as *const ThreadPool;
        assert_eq!(a, b);
        assert!(global().threads() >= 1);
    }
}
