//! # flashmem-core
//!
//! The FlashMem contribution itself (ASPLOS '26): a memory-streaming DNN
//! execution framework for mobile GPUs that, instead of preloading every
//! weight, *plans* when each weight is loaded from disk and when each of its
//! chunks is transformed into 2.5D texture memory, then overlaps that data
//! movement with kernel execution.
//!
//! The crate mirrors the paper's structure:
//!
//! * [`config`] — the `M_peak` / `λ` / `μ` / `S` / `α` hyper-parameters and
//!   ablation switches.
//! * [`opg`] — the Overlap Plan Generation constraint model (Section 3.1):
//!   variables `W`, `z_w`, `x_{w,ℓ}` under constraints C0–C3.
//! * [`lc_opg`] — the load-capacity-aware solver with rolling-window
//!   incremental scheduling and the tiered fallback (Section 3.2).
//! * [`fusion`] — adaptive fusion (Section 4.3).
//! * [`kernel_rewrite`] — branch-free pipelined kernel templates (Section 4.4).
//! * [`plan`] / [`executor`] — the overlap plan and the streaming executor
//!   that compiles it onto the simulated GPU's dual command queues.
//! * [`runtime`] — the end-to-end [`FlashMem`] API.
//! * [`metrics`] — [`ExecutionReport`], the unit of comparison in Tables 7–9.
//! * [`engine`] — the [`InferenceEngine`] trait and [`EngineRegistry`] that
//!   put FlashMem and every baseline framework behind one uniform
//!   compile/execute interface for the benchmark harness.
//! * [`cache`] — the keyed [`ArtifactCache`] fronting
//!   [`InferenceEngine::compile`] so sweeps and servers skip redundant
//!   LC-OPG solves; sharded locks plus per-key in-flight compile
//!   deduplication make it safe (and profitable) to share across threads.
//! * [`pool`] — a std-only work-stealing [`ThreadPool`] with a scoped-join
//!   API; every embarrassingly parallel sweep above the simulator (the bench
//!   matrix, the serving sweep, the fuzz harness) fans out through it with
//!   deterministic, input-ordered results.
//! * [`telemetry`] — the deterministic sim-clock event tracer (re-exported
//!   `flashmem-trace` crate): per-device ring-buffered recorders, the merged
//!   [`telemetry::FleetTrace`], Chrome trace-event export and per-request
//!   [`telemetry::PhaseBreakdown`] latency attribution.
//!
//! Multi-model FIFO execution, which lived here as `multi_model` through
//! PR 1, moved to the `flashmem-serve` crate where the general multi-tenant
//! scheduler subsumes it.
//!
//! ## Example
//!
//! ```rust
//! use flashmem_core::{FlashMem, FlashMemConfig};
//! use flashmem_gpu_sim::DeviceSpec;
//! use flashmem_graph::ModelZoo;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let runtime = FlashMem::new(DeviceSpec::oneplus_12())
//!     .with_config(FlashMemConfig::memory_priority());
//! let report = runtime.run(&ModelZoo::vit())?;
//! assert!(report.streamed_weight_fraction > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod config;
pub mod engine;
pub mod executor;
pub mod fusion;
pub mod kernel_rewrite;
pub mod lc_opg;
pub mod metrics;
pub mod opg;
pub mod plan;
pub mod pool;
pub mod runtime;

/// Deterministic cross-layer event tracing (the `flashmem-trace` crate).
pub use flashmem_trace as telemetry;

pub use cache::{run_cached, ArtifactCache, CacheStats, CachedEngine};
pub use config::FlashMemConfig;
pub use engine::{
    run_or_dash, CompiledArtifact, EngineRegistry, FlashMemVariant, FrameworkKind, InferenceEngine,
};
pub use executor::StreamingExecutor;
pub use fusion::{AdaptiveFusion, AdaptiveFusionReport};
pub use kernel_rewrite::{KernelRewriter, KernelTemplate};
pub use lc_opg::{LcOpgReport, LcOpgSolver, PlannerMode};
pub use metrics::{geo_mean, ExecutionReport};
pub use opg::{build_weight_window_model, CandidateSlot, WeightWindowModel, WindowDecision};
pub use plan::{ChunkAssignment, OverlapPlan, PlanError, WeightSchedule};
pub use pool::ThreadPool;
pub use runtime::{CompiledModel, FlashMem};
