//! The streaming executor: turning a graph + fusion plan + overlap plan into
//! a simulator command stream (the "Online Execution" half of Figure 3).
//!
//! * Preloaded weights (`W`) are loaded from disk, transformed into 2.5D
//!   texture memory by dedicated data-loading kernels *before* the first
//!   compute kernel, and stay resident for the whole run.
//! * Streamed weights have their disk → unified-memory load issued on the
//!   transfer queue at `z_w`, their chunks folded into earlier kernels as
//!   `extra_load_bytes` (the pipelined loading of Section 4.4), and their
//!   memory released right after the consuming kernel — which is where
//!   FlashMem's memory savings come from.

use flashmem_gpu_sim::bandwidth::MemoryTier;
use flashmem_gpu_sim::engine::{Command, CommandStream, GpuSimulator, QueueKind, SimConfig};
use flashmem_gpu_sim::error::SimResult;
use flashmem_gpu_sim::memory::MemoryTracker;
use flashmem_gpu_sim::DeviceSpec;
use flashmem_graph::{FusionPlan, Graph, NodeId};
use flashmem_profiler::{kernel_for_group, LoweringOptions};

use crate::lc_opg::node_to_kernel_map;
use crate::plan::OverlapPlan;

/// Fixed memory overhead charged for the framework runtime itself (graph
/// metadata, command buffers, JIT caches). Calibrated against the smallest
/// footprints reported in Table 8 (ResNet-class models sit near 80–150 MB on
/// every framework even though their weights are ~50 MB).
pub const RUNTIME_OVERHEAD_BYTES: u64 = 48 * 1024 * 1024;

/// The streaming executor.
#[derive(Debug, Clone)]
pub struct StreamingExecutor {
    device: DeviceSpec,
    options: LoweringOptions,
    runtime_overhead_bytes: u64,
    activation_slots: u64,
    embedded_transforms: bool,
}

/// Fixed cost (in milliseconds) of launching a dedicated layout-transform
/// kernel for a streamed chunk group when transforms are *not* embedded into
/// the consuming kernels (i.e. without Section 4.4's kernel rewriting).
const SEPARATE_TRANSFORM_OVERHEAD_MS: f64 = 0.35;

impl StreamingExecutor {
    /// Create an executor for `device` with the given kernel lowering options.
    pub fn new(device: DeviceSpec, options: LoweringOptions) -> Self {
        StreamingExecutor {
            device,
            options,
            runtime_overhead_bytes: RUNTIME_OVERHEAD_BYTES,
            activation_slots: 2,
            embedded_transforms: true,
        }
    }

    /// Override the fixed runtime overhead (useful for calibration tests).
    pub fn with_runtime_overhead(mut self, bytes: u64) -> Self {
        self.runtime_overhead_bytes = bytes;
        self
    }

    /// Choose whether streamed-chunk transformations are embedded into the
    /// consuming kernels (the branch-free pipelined templates of Section 4.4,
    /// default) or issued as dedicated transform kernels on the compute queue
    /// (what naive streaming without kernel rewriting has to do).
    pub fn with_embedded_transforms(mut self, embedded: bool) -> Self {
        self.embedded_transforms = embedded;
        self
    }

    /// The device this executor targets.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Compile the execution into a simulator command stream.
    pub fn compile(&self, graph: &Graph, fusion: &FusionPlan, plan: &OverlapPlan) -> CommandStream {
        let mut stream = CommandStream::new();
        let node_to_kernel = node_to_kernel_map(fusion);
        let transform_factor = self.options.weight_layout.transform_traffic_factor();

        // Framework runtime overhead + activation working set, held for the
        // whole run.
        stream.push(Command::alloc(
            "runtime_overhead",
            MemoryTier::UnifiedMemory,
            self.runtime_overhead_bytes,
            &[],
        ));
        let activation_bytes = graph.max_activation_bytes() * self.activation_slots;
        stream.push(Command::alloc(
            "activations",
            MemoryTier::UnifiedMemory,
            activation_bytes.max(1),
            &[],
        ));

        // ------------------------------------------------------------------
        // Initialization: preload set W.
        // ------------------------------------------------------------------
        let mut init_barrier_deps = Vec::new();
        for schedule in plan.weights().iter().filter(|w| w.preloaded) {
            let name = weight_label(graph, schedule.weight);
            let um = stream.push(Command::alloc(
                &format!("{name}.um"),
                MemoryTier::UnifiedMemory,
                schedule.bytes,
                &[],
            ));
            let load = stream.push(Command::transfer(
                &format!("{name}.load"),
                schedule.bytes,
                MemoryTier::Disk,
                MemoryTier::UnifiedMemory,
                &[um],
            ));
            let tm = stream.push(Command::alloc(
                &format!("{name}.tm"),
                MemoryTier::TextureMemory,
                schedule.bytes,
                &[load],
            ));
            // Preloaded weights are transformed by dedicated data-loading
            // kernels before execution; each pays a fixed launch/sync cost on
            // top of the data traversal.
            let overhead_bytes =
                (SEPARATE_TRANSFORM_OVERHEAD_MS * 1e-3 * self.device.texture_bw) as u64;
            let transform = stream.push(Command::transform(
                &format!("{name}.transform"),
                schedule.bytes + overhead_bytes,
                transform_factor.max(1.0),
                QueueKind::Compute,
                &[tm],
            ));
            // The unified-memory staging copy is dropped once the texture copy
            // exists; the texture copy persists for the whole run.
            let free_um = stream.push(Command::free(&format!("{name}.um_free"), um, &[transform]));
            init_barrier_deps.push(free_um);
        }
        let init_done = stream.push(Command::barrier("init_done", &init_barrier_deps));

        // ------------------------------------------------------------------
        // Streamed weights: disk loads on the transfer queue.
        // ------------------------------------------------------------------
        // kernel index -> list of (weight, load command) that must complete
        // before that kernel consumes the weight.
        let mut load_of_weight: std::collections::HashMap<NodeId, usize> =
            std::collections::HashMap::new();
        let mut um_alloc_of_weight: std::collections::HashMap<NodeId, usize> =
            std::collections::HashMap::new();
        let mut streamed: Vec<&crate::plan::WeightSchedule> =
            plan.weights().iter().filter(|w| !w.preloaded).collect();
        // Issue loads in the order their windows open so the transfer queue
        // works ahead of compute exactly as the plan intends.
        streamed.sort_by_key(|w| (w.disk_load_kernel, w.consumer_kernel));
        let mut kernel_cmd_of: Vec<Option<usize>> = vec![None; fusion.len()];

        // We interleave: walk kernels in order; before each kernel, issue the
        // disk loads whose z_w equals this kernel index, then the kernel
        // itself with its extra streamed bytes.
        let mut load_cursor = 0usize;
        let mut previous_kernel: Option<usize> = Some(init_done);
        // Texture-chunk allocations waiting to be freed once their consumer
        // kernel has run: consumer kernel index -> (label, alloc command id).
        let mut deferred_frees: std::collections::HashMap<usize, Vec<(String, usize)>> =
            std::collections::HashMap::new();

        for (kernel_idx, group) in fusion.groups().iter().enumerate() {
            // Disk loads scheduled to start at this kernel (`z_w`): both the
            // staging allocation and the transfer wait for execution to reach
            // the scheduled kernel, so memory occupancy and prefetch depth
            // track the plan rather than racing ahead at initialization time.
            let issue_dep = previous_kernel.unwrap_or(init_done);
            while load_cursor < streamed.len()
                && streamed[load_cursor].disk_load_kernel <= kernel_idx
            {
                let schedule = streamed[load_cursor];
                let name = weight_label(graph, schedule.weight);
                let um = stream.push(Command::alloc(
                    &format!("{name}.um"),
                    MemoryTier::UnifiedMemory,
                    schedule.bytes,
                    &[issue_dep],
                ));
                let load = stream.push(Command::transfer(
                    &format!("{name}.stream_load"),
                    schedule.bytes,
                    MemoryTier::Disk,
                    MemoryTier::UnifiedMemory,
                    &[um],
                ));
                load_of_weight.insert(schedule.weight, load);
                um_alloc_of_weight.insert(schedule.weight, um);
                load_cursor += 1;
            }

            // Texture allocations for chunks transformed during this kernel.
            let extra_bytes = if self.embedded_transforms {
                plan.extra_load_bytes_at(kernel_idx)
            } else {
                0
            };
            let mut deps: Vec<usize> = Vec::new();
            if let Some(prev) = previous_kernel {
                deps.push(prev);
            }
            for assignment in plan.assignments_at(kernel_idx) {
                let mut chunk_deps: Vec<usize> = Vec::new();
                if let Some(&load) = load_of_weight.get(&assignment.weight) {
                    // Embedded chunk transforms only need the *prefix* of the
                    // weight that has already arrived in unified memory; the
                    // plan's C1 constraint guarantees the load was issued at or
                    // before this kernel, so the kernel itself is not blocked
                    // on the full transfer. Only dedicated repack kernels (no
                    // rewriting) and the final consumer synchronise with it.
                    chunk_deps.push(load);
                }
                let name = weight_label(graph, assignment.weight);
                let tm = stream.push(Command::alloc(
                    &format!("{name}.tm_chunk@{kernel_idx}"),
                    MemoryTier::TextureMemory,
                    assignment.bytes,
                    &[],
                ));
                if !self.embedded_transforms {
                    // Dedicated repack kernel on the compute queue: pays the
                    // data traversal plus a fixed launch/sync overhead and
                    // serialises with the real kernels (no rewriting).
                    if let Some(prev) = previous_kernel {
                        chunk_deps.push(prev);
                    }
                    let overhead_bytes =
                        (SEPARATE_TRANSFORM_OVERHEAD_MS * 1e-3 * self.device.texture_bw) as u64;
                    let transform = stream.push(Command::transform(
                        &format!("{name}.repack@{kernel_idx}"),
                        assignment.bytes + overhead_bytes,
                        self.options
                            .weight_layout
                            .transform_traffic_factor()
                            .max(1.0),
                        QueueKind::Compute,
                        &chunk_deps,
                    ));
                    deps.push(transform);
                }
                let consumer = plan
                    .schedule_for(assignment.weight)
                    .map(|s| s.consumer_kernel)
                    .unwrap_or(kernel_idx);
                deferred_frees
                    .entry(consumer)
                    .or_default()
                    .push((format!("{name}.tm_chunk_free"), tm));
            }

            // Weights consumed by this kernel must have finished loading.
            for node in &group.nodes {
                if let Some(&load) = load_of_weight.get(node) {
                    deps.push(load);
                }
            }

            let kernel = kernel_for_group(graph, group, &self.options);
            let cmd = stream.push(Command::kernel(
                &kernel.name.clone(),
                kernel,
                extra_bytes,
                &deps,
            ));
            kernel_cmd_of[kernel_idx] = Some(cmd);
            previous_kernel = Some(cmd);

            // Release texture chunks whose consumer just ran, and the
            // unified-memory staging copies of weights consumed by this
            // kernel.
            if let Some(frees) = deferred_frees.remove(&kernel_idx) {
                for (label, alloc) in frees {
                    stream.push(Command::free(&label, alloc, &[cmd]));
                }
            }
            for node in &group.nodes {
                if let Some(&um) = um_alloc_of_weight.get(node) {
                    let name = weight_label(graph, *node);
                    stream.push(Command::free(&format!("{name}.um_free"), um, &[cmd]));
                }
            }
            let _ = &node_to_kernel;
        }

        // Safety net: release anything whose consumer never ran (should not
        // happen for valid plans, but keeps the accounting clean).
        if let Some(last) = previous_kernel {
            for (_, frees) in deferred_frees.drain() {
                for (label, alloc) in frees {
                    stream.push(Command::free(&label, alloc, &[last]));
                }
            }
        }

        stream
    }

    /// Execute the compiled stream on a fresh simulator.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors, most importantly out-of-memory conditions
    /// on constrained devices.
    pub fn execute(
        &self,
        graph: &Graph,
        fusion: &FusionPlan,
        plan: &OverlapPlan,
    ) -> SimResult<flashmem_gpu_sim::engine::ExecutionOutcome> {
        let stream = self.compile(graph, fusion, plan);
        let mut sim = GpuSimulator::new(self.device.clone(), SimConfig::default());
        sim.execute(&stream)
    }

    /// Execute against an existing memory tracker (multi-model scenarios).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn execute_with_tracker(
        &self,
        graph: &Graph,
        fusion: &FusionPlan,
        plan: &OverlapPlan,
        tracker: &mut MemoryTracker,
    ) -> SimResult<flashmem_gpu_sim::engine::ExecutionOutcome> {
        let stream = self.compile(graph, fusion, plan);
        let mut sim = GpuSimulator::new(self.device.clone(), SimConfig::default());
        sim.execute_with_tracker(&stream, tracker)
    }
}

fn weight_label(graph: &Graph, node: NodeId) -> String {
    graph
        .node(node)
        .map(|n| format!("{}.weight", n.name))
        .unwrap_or_else(|| format!("weight_{}", node.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlashMemConfig;
    use crate::lc_opg::{LcOpgSolver, PlannerMode};
    use flashmem_graph::{ModelZoo, WeightInventory};

    fn plan_for(graph: &Graph, mode: PlannerMode) -> (FusionPlan, OverlapPlan) {
        let config = FlashMemConfig::memory_priority();
        let fusion = FusionPlan::default_fusion(graph);
        let solver = LcOpgSolver::new(DeviceSpec::oneplus_12(), config).with_mode(mode);
        let capacities = flashmem_profiler::CapacityProfiler::new(DeviceSpec::oneplus_12())
            .with_options(LoweringOptions::flashmem())
            .capacities(graph, &fusion);
        let (plan, _) = solver.plan_with(graph, &fusion, &capacities);
        (fusion, plan)
    }

    #[test]
    fn compiled_stream_validates() {
        let graph = ModelZoo::gptneo_small().build();
        let (fusion, plan) = plan_for(&graph, PlannerMode::Hybrid);
        let exec = StreamingExecutor::new(DeviceSpec::oneplus_12(), LoweringOptions::flashmem());
        let stream = exec.compile(&graph, &fusion, &plan);
        stream.validate().unwrap();
        assert!(stream.len() > fusion.len());
    }

    #[test]
    fn streamed_execution_uses_less_memory_than_full_preload() {
        let graph = ModelZoo::vit().build();
        let exec = StreamingExecutor::new(DeviceSpec::oneplus_12(), LoweringOptions::flashmem());

        let (fusion_s, plan_s) = plan_for(&graph, PlannerMode::Hybrid);
        let streamed = exec.execute(&graph, &fusion_s, &plan_s).unwrap();

        let (fusion_p, plan_p) = plan_for(&graph, PlannerMode::FullPreload);
        let preloaded = exec.execute(&graph, &fusion_p, &plan_p).unwrap();

        assert!(
            streamed.average_memory_bytes < preloaded.average_memory_bytes,
            "streamed {} vs preloaded {}",
            streamed.average_memory_bytes,
            preloaded.average_memory_bytes
        );
        assert!(streamed.peak_memory_bytes <= preloaded.peak_memory_bytes);
    }

    #[test]
    fn streamed_execution_is_faster_than_full_preload_integrated() {
        // FlashMem's headline claim: integrated (init + exec) latency drops
        // because loading overlaps execution instead of preceding it.
        let graph = ModelZoo::vit().build();
        let exec = StreamingExecutor::new(DeviceSpec::oneplus_12(), LoweringOptions::flashmem());
        let (fusion_s, plan_s) = plan_for(&graph, PlannerMode::Hybrid);
        let (fusion_p, plan_p) = plan_for(&graph, PlannerMode::FullPreload);
        let streamed = exec.execute(&graph, &fusion_s, &plan_s).unwrap();
        let preloaded = exec.execute(&graph, &fusion_p, &plan_p).unwrap();
        assert!(
            streamed.total_time_ms < preloaded.total_time_ms,
            "streamed {} vs preloaded {}",
            streamed.total_time_ms,
            preloaded.total_time_ms
        );
    }

    #[test]
    fn execution_overlaps_transfers_with_compute() {
        // GPT-Neo-S is disk-bound end to end, so the informative metric is how
        // much of the *compute* time is hidden under concurrent transfers, not
        // the overlap relative to the (transfer-dominated) makespan.
        use flashmem_gpu_sim::trace::EventKind;
        let graph = ModelZoo::gptneo_small().build();
        let (fusion, plan) = plan_for(&graph, PlannerMode::Hybrid);
        let exec = StreamingExecutor::new(DeviceSpec::oneplus_12(), LoweringOptions::flashmem());
        let outcome = exec.execute(&graph, &fusion, &plan).unwrap();
        let overlap_ms = outcome.timeline.overlap_fraction() * outcome.timeline.makespan_ms();
        let kernel_active_ms = outcome.timeline.active_ms(EventKind::Kernel);
        assert!(kernel_active_ms > 0.0);
        assert!(
            overlap_ms / kernel_active_ms > 0.3,
            "only {:.1}% of compute time overlaps transfers",
            100.0 * overlap_ms / kernel_active_ms
        );
    }

    #[test]
    fn plan_validates_against_inventory_before_execution() {
        let graph = ModelZoo::gptneo_small().build();
        let config = FlashMemConfig::memory_priority();
        let (_, plan) = plan_for(&graph, PlannerMode::Hybrid);
        let inventory = WeightInventory::with_chunk_size(&graph, config.chunk_bytes);
        plan.validate(&inventory, None).unwrap();
    }

    #[test]
    fn oom_reported_for_huge_model_on_small_device_under_preload() {
        // GPTN-2.7B fully preloaded (≈5.5 GB of weights) cannot fit the
        // Xiaomi Mi 6's app budget — the "no framework supports it" case.
        let graph = ModelZoo::gptneo_2_7b().build();
        let (fusion, plan) = plan_for(&graph, PlannerMode::FullPreload);
        let exec = StreamingExecutor::new(
            DeviceSpec::xiaomi_mi_6(),
            LoweringOptions::texture_framework(),
        );
        let result = exec.execute(&graph, &fusion, &plan);
        assert!(result.is_err(), "expected OOM, got {result:?}");
    }

    #[test]
    fn streaming_lets_the_same_model_fit_the_small_device() {
        let graph = ModelZoo::gptneo_2_7b().build();
        let (fusion, plan) = plan_for(&graph, PlannerMode::Hybrid);
        let exec = StreamingExecutor::new(DeviceSpec::xiaomi_mi_6(), LoweringOptions::flashmem());
        let result = exec.execute(&graph, &fusion, &plan);
        assert!(result.is_ok(), "{result:?}");
    }
}
