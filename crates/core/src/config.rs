//! FlashMem runtime configuration.
//!
//! The knobs mirror the hyper-parameters discussed in Section 3.2 of the
//! paper: the in-flight transformation budget `M_peak`, the preload/distance
//! balance `λ`, the distance penalty `μ`, the chunk size `S`, the fusion
//! capacity-gain threshold `α`, and the ablation switches used by the
//! breakdown study (Figure 7).

use serde::{Deserialize, Serialize};

/// Number of bytes in one mebibyte.
const MIB: u64 = 1024 * 1024;

/// Configuration of the FlashMem planner and executor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlashMemConfig {
    /// `M_peak`: upper bound on in-flight streamed-weight memory (bytes in
    /// unified + texture memory awaiting consumption) during execution.
    /// The paper's memory-priority default is 500 MB.
    pub m_peak_bytes: u64,
    /// `λ ∈ [0, 1]`: weight of the preload-set size in the objective. Values
    /// close to 1 penalise preloading aggressively (memory priority).
    pub lambda: f64,
    /// `μ`: penalty per layer of loading distance (early loading raises
    /// residency, so larger `μ` pushes loads later).
    pub mu: f64,
    /// Chunk size `S` in bytes for weight slicing.
    pub chunk_bytes: u64,
    /// `α`: required relative capacity gain for adaptive fusion to split a
    /// fused kernel (`C_v1 + C_v2 ≥ (1 + α) · C_fused`).
    pub alpha: f64,
    /// Rolling-window length (in kernels) the incremental scheduler considers
    /// when placing a weight's chunks before its consumer.
    pub window: usize,
    /// Per-window CP-SAT time limit in milliseconds.
    pub solver_time_limit_ms: u64,
    /// Total solver budget in milliseconds (the paper uses 150 s offline).
    pub total_solver_budget_ms: u64,
    /// Weight names that must be preloaded regardless of the solver's choice
    /// (the explicit `|W|` list mentioned in Section 5.4).
    pub explicit_preload: Vec<String>,
    /// Enable the OPG solver (disable to fall back to full preloading —
    /// ablation baseline).
    pub enable_opg: bool,
    /// Enable adaptive fusion (Section 4.3).
    pub enable_adaptive_fusion: bool,
    /// Enable branch-free pipelined kernel rewriting (Section 4.4).
    pub enable_kernel_rewriting: bool,
}

impl Default for FlashMemConfig {
    fn default() -> Self {
        Self::balanced()
    }
}

impl FlashMemConfig {
    /// The memory-priority preset from the paper: `M_peak` = 500 MB, `λ` ≈ 0.9.
    pub fn memory_priority() -> Self {
        FlashMemConfig {
            m_peak_bytes: 500 * MIB,
            lambda: 0.9,
            mu: 1.0,
            // 256 KiB chunks: fine-grained enough that the 20% capacity of a
            // typical MatMul kernel still admits at least one chunk.
            chunk_bytes: 256 * 1024,
            alpha: 0.25,
            window: 32,
            solver_time_limit_ms: 40,
            total_solver_budget_ms: 150_000,
            explicit_preload: Vec::new(),
            enable_opg: true,
            enable_adaptive_fusion: true,
            enable_kernel_rewriting: true,
        }
    }

    /// The latency-priority preset: a large `M_peak` and small `λ` so the
    /// solver may preload aggressively and shrink per-kernel streaming work.
    pub fn latency_priority() -> Self {
        FlashMemConfig {
            m_peak_bytes: 1_536 * MIB,
            lambda: 0.3,
            mu: 0.2,
            ..Self::memory_priority()
        }
    }

    /// A balanced preset between the two extremes.
    pub fn balanced() -> Self {
        FlashMemConfig {
            m_peak_bytes: 900 * MIB,
            lambda: 0.7,
            mu: 0.5,
            ..Self::memory_priority()
        }
    }

    /// Set `M_peak` in bytes (builder style).
    pub fn with_m_peak_bytes(mut self, bytes: u64) -> Self {
        self.m_peak_bytes = bytes;
        self
    }

    /// Set `M_peak` in mebibytes (builder style).
    pub fn with_m_peak_mib(self, mib: u64) -> Self {
        self.with_m_peak_bytes(mib * MIB)
    }

    /// Set `λ`, clamped to `[0, 1]`.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda.clamp(0.0, 1.0);
        self
    }

    /// Set `μ` (non-negative).
    pub fn with_mu(mut self, mu: f64) -> Self {
        self.mu = mu.max(0.0);
        self
    }

    /// Set the chunk size `S` (at least 4 KiB to keep chunk counts sane).
    pub fn with_chunk_bytes(mut self, bytes: u64) -> Self {
        self.chunk_bytes = bytes.max(4 * 1024);
        self
    }

    /// Set the fusion capacity-gain threshold `α`.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha.max(0.0);
        self
    }

    /// Set the rolling-window length.
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// Add a weight name to the explicit preload list.
    pub fn with_explicit_preload(mut self, name: &str) -> Self {
        self.explicit_preload.push(name.to_string());
        self
    }

    /// Toggle the OPG solver.
    pub fn with_opg(mut self, enabled: bool) -> Self {
        self.enable_opg = enabled;
        self
    }

    /// Toggle adaptive fusion.
    pub fn with_adaptive_fusion(mut self, enabled: bool) -> Self {
        self.enable_adaptive_fusion = enabled;
        self
    }

    /// Toggle kernel rewriting.
    pub fn with_kernel_rewriting(mut self, enabled: bool) -> Self {
        self.enable_kernel_rewriting = enabled;
        self
    }

    /// `M_peak` in MiB.
    pub fn m_peak_mib(&self) -> f64 {
        self.m_peak_bytes as f64 / MIB as f64
    }

    /// A stable fingerprint over every field that influences compilation —
    /// the configuration part of [`ArtifactCache`](crate::cache::ArtifactCache)
    /// keys.
    pub fn fingerprint(&self) -> u64 {
        let mut h = crate::cache::Fnv1a::new()
            .write_u64(self.m_peak_bytes)
            .write_f64(self.lambda)
            .write_f64(self.mu)
            .write_u64(self.chunk_bytes)
            .write_f64(self.alpha)
            .write_u64(self.window as u64)
            .write_u64(self.solver_time_limit_ms)
            .write_u64(self.total_solver_budget_ms)
            .write_u64(u64::from(self.enable_opg))
            .write_u64(u64::from(self.enable_adaptive_fusion))
            .write_u64(u64::from(self.enable_kernel_rewriting));
        for name in &self.explicit_preload {
            h = h.write_str(name);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_priority_matches_paper_defaults() {
        let c = FlashMemConfig::memory_priority();
        assert_eq!(c.m_peak_bytes, 500 * MIB);
        assert!((c.lambda - 0.9).abs() < 1e-12);
        assert!(c.enable_opg && c.enable_adaptive_fusion && c.enable_kernel_rewriting);
    }

    #[test]
    fn latency_priority_preloads_more() {
        let mem = FlashMemConfig::memory_priority();
        let lat = FlashMemConfig::latency_priority();
        assert!(lat.m_peak_bytes > mem.m_peak_bytes);
        assert!(lat.lambda < mem.lambda);
    }

    #[test]
    fn fingerprint_distinguishes_configurations() {
        let base = FlashMemConfig::memory_priority();
        assert_eq!(
            base.fingerprint(),
            FlashMemConfig::memory_priority().fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            FlashMemConfig::latency_priority().fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            base.clone().with_kernel_rewriting(false).fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            base.clone().with_explicit_preload("w0").fingerprint()
        );
    }

    #[test]
    fn builder_clamps_values() {
        let c = FlashMemConfig::balanced()
            .with_lambda(3.0)
            .with_mu(-1.0)
            .with_chunk_bytes(1)
            .with_window(0)
            .with_alpha(-2.0);
        assert_eq!(c.lambda, 1.0);
        assert_eq!(c.mu, 0.0);
        assert_eq!(c.chunk_bytes, 4 * 1024);
        assert_eq!(c.window, 1);
        assert_eq!(c.alpha, 0.0);
    }

    #[test]
    fn explicit_preload_accumulates() {
        let c = FlashMemConfig::default()
            .with_explicit_preload("wte.weight")
            .with_explicit_preload("lm_head.weight");
        assert_eq!(c.explicit_preload.len(), 2);
    }

    #[test]
    fn m_peak_mib_round_trip() {
        let c = FlashMemConfig::default().with_m_peak_mib(512);
        assert_eq!(c.m_peak_mib(), 512.0);
    }

    #[test]
    fn default_is_balanced() {
        assert_eq!(FlashMemConfig::default(), FlashMemConfig::balanced());
    }
}
