//! The overlap plan: the output of OPG / LC-OPG.
//!
//! An [`OverlapPlan`] records, for every weight of the model,
//!
//! * whether it belongs to the preload set `W` (loaded and transformed before
//!   execution starts),
//! * otherwise, at which kernel its disk → unified-memory load is issued
//!   (`z_w`) and how many of its chunks are transformed into texture memory at
//!   each kernel preceding its consumer (`x_{w,ℓ}`),
//!
//! plus enough aggregate accessors for the executor and for validation of the
//! paper's constraints (C0 completeness, C1 precedence, C2 peak memory).

use flashmem_graph::{NodeId, WeightInventory};
use serde::{Deserialize, Serialize};

/// Chunks of one weight transformed during one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkAssignment {
    /// The node owning the weight (its consumer).
    pub weight: NodeId,
    /// Number of chunks transformed at this kernel.
    pub chunks: u64,
    /// Bytes those chunks represent.
    pub bytes: u64,
}

/// Per-weight scheduling decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightSchedule {
    /// The node owning the weight.
    pub weight: NodeId,
    /// Index (in the kernel/fusion-group execution order) of the kernel that
    /// consumes this weight (`i_w`).
    pub consumer_kernel: usize,
    /// Kernel index at which the disk → unified-memory load is issued
    /// (`z_w`). For preloaded weights this is 0 by convention.
    pub disk_load_kernel: usize,
    /// True if the weight is a member of the preload set `W`.
    pub preloaded: bool,
    /// Total size of the weight in bytes.
    pub bytes: u64,
}

impl WeightSchedule {
    /// Loading distance `i_w − z_w` (0 for preloaded weights).
    pub fn loading_distance(&self) -> usize {
        if self.preloaded {
            0
        } else {
            self.consumer_kernel.saturating_sub(self.disk_load_kernel)
        }
    }
}

/// Violations detected by [`OverlapPlan::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A streamed weight's chunk assignments do not cover the weight (C0).
    IncompleteAllocation {
        /// The offending weight.
        weight: NodeId,
        /// Chunks assigned across kernels.
        assigned: u64,
        /// Chunks required to cover the weight.
        required: u64,
    },
    /// Chunks were assigned at or after the consuming kernel (C1).
    LateAssignment {
        /// The offending weight.
        weight: NodeId,
        /// The kernel index of the too-late assignment.
        kernel: usize,
    },
    /// Chunks were assigned before the weight's disk load was issued.
    AssignmentBeforeLoad {
        /// The offending weight.
        weight: NodeId,
        /// The kernel index of the premature assignment.
        kernel: usize,
    },
    /// The plan's in-flight streamed memory exceeds the configured budget (C2).
    PeakExceeded {
        /// Kernel index at which the violation occurs.
        kernel: usize,
        /// In-flight bytes at that kernel.
        inflight: u64,
        /// The configured `M_peak`.
        budget: u64,
    },
    /// The plan does not mention a weight present in the inventory.
    MissingWeight {
        /// The weight absent from the plan.
        weight: NodeId,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::IncompleteAllocation {
                weight,
                assigned,
                required,
            } => write!(
                f,
                "weight {weight} has {assigned} of {required} chunks scheduled"
            ),
            PlanError::LateAssignment { weight, kernel } => {
                write!(f, "weight {weight} has chunks scheduled at kernel {kernel}, not before its consumer")
            }
            PlanError::AssignmentBeforeLoad { weight, kernel } => {
                write!(
                    f,
                    "weight {weight} transforms chunks at kernel {kernel} before its disk load"
                )
            }
            PlanError::PeakExceeded {
                kernel,
                inflight,
                budget,
            } => write!(
                f,
                "in-flight streamed memory {inflight} exceeds budget {budget} at kernel {kernel}"
            ),
            PlanError::MissingWeight { weight } => {
                write!(f, "weight {weight} is missing from the plan")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// The complete overlap plan for one model on one device configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverlapPlan {
    chunk_bytes: u64,
    num_kernels: usize,
    weights: Vec<WeightSchedule>,
    per_kernel: Vec<Vec<ChunkAssignment>>,
}

impl OverlapPlan {
    /// Create an empty plan for `num_kernels` kernels with chunk size
    /// `chunk_bytes`.
    pub fn new(num_kernels: usize, chunk_bytes: u64) -> Self {
        OverlapPlan {
            chunk_bytes: chunk_bytes.max(1),
            num_kernels,
            weights: Vec::new(),
            per_kernel: vec![Vec::new(); num_kernels],
        }
    }

    /// A plan that preloads every weight — what a conventional framework does,
    /// and FlashMem's fallback when OPG is disabled.
    pub fn full_preload(
        num_kernels: usize,
        chunk_bytes: u64,
        inventory: &WeightInventory,
        consumer_kernel_of: impl Fn(NodeId) -> usize,
    ) -> Self {
        let mut plan = OverlapPlan::new(num_kernels, chunk_bytes);
        for w in inventory.weights() {
            plan.add_preload(w.consumer, consumer_kernel_of(w.consumer), w.bytes);
        }
        plan
    }

    /// Chunk size `S` used by this plan.
    pub fn chunk_bytes(&self) -> u64 {
        self.chunk_bytes
    }

    /// Number of kernels the plan covers.
    pub fn num_kernels(&self) -> usize {
        self.num_kernels
    }

    /// Per-weight schedules.
    pub fn weights(&self) -> &[WeightSchedule] {
        &self.weights
    }

    /// The schedule of a specific weight.
    pub fn schedule_for(&self, weight: NodeId) -> Option<&WeightSchedule> {
        self.weights.iter().find(|w| w.weight == weight)
    }

    /// Record that `weight` (consumed by kernel `consumer_kernel`, `bytes`
    /// large) is preloaded before execution.
    pub fn add_preload(&mut self, weight: NodeId, consumer_kernel: usize, bytes: u64) {
        self.weights.push(WeightSchedule {
            weight,
            consumer_kernel,
            disk_load_kernel: 0,
            preloaded: true,
            bytes,
        });
    }

    /// Record a streamed weight: disk load issued at `disk_load_kernel`, with
    /// `assignments` giving `(kernel index, chunks)` pairs for transformation.
    pub fn add_streamed(
        &mut self,
        weight: NodeId,
        consumer_kernel: usize,
        disk_load_kernel: usize,
        bytes: u64,
        assignments: &[(usize, u64)],
    ) {
        self.weights.push(WeightSchedule {
            weight,
            consumer_kernel,
            disk_load_kernel,
            preloaded: false,
            bytes,
        });
        let mut remaining = bytes;
        let total_chunks: u64 = assignments.iter().map(|(_, c)| c).sum();
        for (kernel, chunks) in assignments {
            if *chunks == 0 {
                continue;
            }
            // The final chunk of a weight may be short; attribute bytes
            // proportionally, giving the remainder to the last assignment.
            let is_last = *kernel
                == assignments
                    .iter()
                    .filter(|(_, c)| *c > 0)
                    .map(|(k, _)| *k)
                    .max()
                    .unwrap_or(*kernel);
            let bytes_here = if is_last {
                remaining
            } else {
                (self.chunk_bytes * chunks).min(remaining)
            };
            remaining -= bytes_here.min(remaining);
            let _ = total_chunks;
            if let Some(slot) = self.per_kernel.get_mut(*kernel) {
                slot.push(ChunkAssignment {
                    weight,
                    chunks: *chunks,
                    bytes: bytes_here,
                });
            }
        }
    }

    /// Chunk assignments transformed during kernel `kernel`.
    pub fn assignments_at(&self, kernel: usize) -> &[ChunkAssignment] {
        self.per_kernel
            .get(kernel)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Extra bytes streamed during kernel `kernel` (the kernel's
    /// `extra_load_bytes` in the simulator).
    pub fn extra_load_bytes_at(&self, kernel: usize) -> u64 {
        self.assignments_at(kernel).iter().map(|a| a.bytes).sum()
    }

    /// Total bytes of preloaded weights (`|W|` in bytes).
    pub fn preload_bytes(&self) -> u64 {
        self.weights
            .iter()
            .filter(|w| w.preloaded)
            .map(|w| w.bytes)
            .sum()
    }

    /// Total bytes of streamed weights.
    pub fn streamed_bytes(&self) -> u64 {
        self.weights
            .iter()
            .filter(|w| !w.preloaded)
            .map(|w| w.bytes)
            .sum()
    }

    /// Total weight bytes covered by the plan.
    pub fn total_weight_bytes(&self) -> u64 {
        self.weights.iter().map(|w| w.bytes).sum()
    }

    /// Fraction of weight bytes that are streamed rather than preloaded —
    /// the "overlap of an average of 49.3% of the weights" statistic of
    /// Section 5.4.
    pub fn streamed_fraction(&self) -> f64 {
        let total = self.total_weight_bytes();
        if total == 0 {
            return 0.0;
        }
        self.streamed_bytes() as f64 / total as f64
    }

    /// Number of preloaded weights.
    pub fn preload_count(&self) -> usize {
        self.weights.iter().filter(|w| w.preloaded).count()
    }

    /// Mean loading distance over streamed weights.
    pub fn mean_loading_distance(&self) -> f64 {
        let streamed: Vec<&WeightSchedule> = self.weights.iter().filter(|w| !w.preloaded).collect();
        if streamed.is_empty() {
            return 0.0;
        }
        streamed
            .iter()
            .map(|w| w.loading_distance() as f64)
            .sum::<f64>()
            / streamed.len() as f64
    }

    /// In-flight streamed-weight bytes at each kernel: bytes already
    /// transformed (or being transformed) but not yet consumed. This is the
    /// quantity constrained by `M_peak` (C2).
    pub fn inflight_profile(&self) -> Vec<u64> {
        // Difference-array sweep: each assignment occupies memory from its
        // transform kernel (inclusive) until the weight's consumer kernel
        // (exclusive).
        let consumer_of: std::collections::HashMap<NodeId, usize> = self
            .weights
            .iter()
            .map(|w| (w.weight, w.consumer_kernel))
            .collect();
        let mut delta = vec![0i64; self.num_kernels + 1];
        for (kernel, assignments) in self.per_kernel.iter().enumerate() {
            for a in assignments {
                let Some(&consumer) = consumer_of.get(&a.weight) else {
                    continue;
                };
                if kernel >= consumer {
                    continue;
                }
                delta[kernel] += a.bytes as i64;
                delta[consumer.min(self.num_kernels)] -= a.bytes as i64;
            }
        }
        let mut profile = vec![0u64; self.num_kernels];
        let mut running = 0i64;
        for (idx, slot) in profile.iter_mut().enumerate() {
            running += delta[idx];
            *slot = running.max(0) as u64;
        }
        profile
    }

    /// Maximum in-flight streamed bytes across kernels.
    pub fn peak_inflight_bytes(&self) -> u64 {
        self.inflight_profile().into_iter().max().unwrap_or(0)
    }

    /// Validate the plan against the weight inventory and the mapping from
    /// weight-consumer nodes to kernel indices.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a [`PlanError`]:
    /// completeness (C0), precedence (C1), load-before-transform ordering and
    /// the `M_peak` budget (C2) when `m_peak` is provided.
    pub fn validate(
        &self,
        inventory: &WeightInventory,
        m_peak: Option<u64>,
    ) -> Result<(), PlanError> {
        for info in inventory.weights() {
            let Some(schedule) = self.schedule_for(info.consumer) else {
                return Err(PlanError::MissingWeight {
                    weight: info.consumer,
                });
            };
            if schedule.preloaded {
                continue;
            }
            let required = info.chunk_count(self.chunk_bytes);
            let mut assigned = 0u64;
            for kernel in 0..self.num_kernels {
                for a in self.assignments_at(kernel) {
                    if a.weight != info.consumer {
                        continue;
                    }
                    if kernel >= schedule.consumer_kernel {
                        return Err(PlanError::LateAssignment {
                            weight: info.consumer,
                            kernel,
                        });
                    }
                    if kernel < schedule.disk_load_kernel {
                        return Err(PlanError::AssignmentBeforeLoad {
                            weight: info.consumer,
                            kernel,
                        });
                    }
                    assigned += a.chunks;
                }
            }
            if assigned < required {
                return Err(PlanError::IncompleteAllocation {
                    weight: info.consumer,
                    assigned,
                    required,
                });
            }
        }
        if let Some(budget) = m_peak {
            let profile = self.inflight_profile();
            for (kernel, inflight) in profile.iter().enumerate() {
                if *inflight > budget {
                    return Err(PlanError::PeakExceeded {
                        kernel,
                        inflight: *inflight,
                        budget,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashmem_graph::{GraphBuilder, OpKind};

    fn inventory() -> (flashmem_graph::Graph, WeightInventory) {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[64, 512]);
        let m1 = b.matmul("fc1", x, 512);
        let g = b.unary("gelu", OpKind::GeLU, m1);
        let m2 = b.matmul("fc2", g, 512);
        b.softmax("sm", m2);
        let graph = b.build();
        let inv = WeightInventory::with_chunk_size(&graph, 64 * 1024);
        (graph, inv)
    }

    #[test]
    fn full_preload_plan_validates_and_streams_nothing() {
        let (graph, inv) = inventory();
        let plan = OverlapPlan::full_preload(graph.len(), inv.chunk_bytes(), &inv, |n| n.0);
        plan.validate(&inv, Some(0)).unwrap();
        assert_eq!(plan.streamed_bytes(), 0);
        assert_eq!(plan.streamed_fraction(), 0.0);
        assert_eq!(plan.preload_bytes(), inv.total_bytes());
        assert_eq!(plan.peak_inflight_bytes(), 0);
    }

    #[test]
    fn streamed_plan_accounting() {
        let (graph, inv) = inventory();
        let fc2 = &inv.weights()[1];
        let chunks = fc2.chunk_count(inv.chunk_bytes());
        let mut plan = OverlapPlan::new(graph.len(), inv.chunk_bytes());
        // Preload fc1; stream fc2 across kernels 1 and 2 (consumer is node 3).
        plan.add_preload(inv.weights()[0].consumer, 1, inv.weights()[0].bytes);
        plan.add_streamed(
            fc2.consumer,
            3,
            1,
            fc2.bytes,
            &[(1, chunks / 2), (2, chunks - chunks / 2)],
        );
        plan.validate(&inv, None).unwrap();
        assert_eq!(plan.streamed_bytes(), fc2.bytes);
        assert_eq!(
            plan.extra_load_bytes_at(1) + plan.extra_load_bytes_at(2),
            fc2.bytes
        );
        assert!(plan.streamed_fraction() > 0.0 && plan.streamed_fraction() < 1.0);
        assert_eq!(
            plan.schedule_for(fc2.consumer).unwrap().loading_distance(),
            2
        );
        // In-flight peaks at the full weight right before kernel 3.
        assert_eq!(plan.peak_inflight_bytes(), fc2.bytes);
    }

    #[test]
    fn incomplete_allocation_detected() {
        let (graph, inv) = inventory();
        let fc1 = &inv.weights()[0];
        let mut plan = OverlapPlan::new(graph.len(), inv.chunk_bytes());
        plan.add_streamed(fc1.consumer, 1, 0, fc1.bytes, &[(0, 1)]);
        // fc2 missing entirely → MissingWeight reported first for fc2? The
        // iteration follows inventory order, so fc1's incompleteness comes
        // first.
        let err = plan.validate(&inv, None).unwrap_err();
        assert!(matches!(err, PlanError::IncompleteAllocation { .. }));
    }

    #[test]
    fn late_assignment_detected() {
        let (graph, inv) = inventory();
        let fc1 = &inv.weights()[0];
        let chunks = fc1.chunk_count(inv.chunk_bytes());
        let mut plan = OverlapPlan::new(graph.len(), inv.chunk_bytes());
        plan.add_streamed(fc1.consumer, 1, 0, fc1.bytes, &[(2, chunks)]);
        plan.add_preload(inv.weights()[1].consumer, 3, inv.weights()[1].bytes);
        let err = plan.validate(&inv, None).unwrap_err();
        assert!(matches!(err, PlanError::LateAssignment { .. }));
    }

    #[test]
    fn assignment_before_disk_load_detected() {
        let (graph, inv) = inventory();
        let fc2 = &inv.weights()[1];
        let chunks = fc2.chunk_count(inv.chunk_bytes());
        let mut plan = OverlapPlan::new(graph.len(), inv.chunk_bytes());
        plan.add_preload(inv.weights()[0].consumer, 1, inv.weights()[0].bytes);
        plan.add_streamed(fc2.consumer, 3, 2, fc2.bytes, &[(1, chunks)]);
        let err = plan.validate(&inv, None).unwrap_err();
        assert!(matches!(err, PlanError::AssignmentBeforeLoad { .. }));
    }

    #[test]
    fn missing_weight_detected() {
        let (graph, inv) = inventory();
        let plan = OverlapPlan::new(graph.len(), inv.chunk_bytes());
        let err = plan.validate(&inv, None).unwrap_err();
        assert!(matches!(err, PlanError::MissingWeight { .. }));
    }

    #[test]
    fn peak_budget_violation_detected() {
        let (graph, inv) = inventory();
        let fc1 = &inv.weights()[0];
        let fc2 = &inv.weights()[1];
        let mut plan = OverlapPlan::new(graph.len(), inv.chunk_bytes());
        plan.add_streamed(
            fc1.consumer,
            1,
            0,
            fc1.bytes,
            &[(0, fc1.chunk_count(inv.chunk_bytes()))],
        );
        plan.add_streamed(
            fc2.consumer,
            3,
            0,
            fc2.bytes,
            &[(0, fc2.chunk_count(inv.chunk_bytes()))],
        );
        // Both weights in flight at kernel 0 → exceeds a 1-byte budget.
        let err = plan.validate(&inv, Some(1)).unwrap_err();
        assert!(matches!(err, PlanError::PeakExceeded { .. }));
        // A generous budget passes.
        plan.validate(&inv, Some(inv.total_bytes())).unwrap();
    }

    #[test]
    fn mean_loading_distance() {
        let (graph, inv) = inventory();
        let fc1 = &inv.weights()[0];
        let fc2 = &inv.weights()[1];
        let mut plan = OverlapPlan::new(graph.len(), inv.chunk_bytes());
        plan.add_streamed(
            fc1.consumer,
            1,
            0,
            fc1.bytes,
            &[(0, fc1.chunk_count(inv.chunk_bytes()))],
        );
        plan.add_streamed(
            fc2.consumer,
            3,
            1,
            fc2.bytes,
            &[(2, fc2.chunk_count(inv.chunk_bytes()))],
        );
        assert!((plan.mean_loading_distance() - 1.5).abs() < 1e-9);
    }
}
