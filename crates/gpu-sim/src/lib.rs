//! # flashmem-gpu-sim
//!
//! A discrete-event simulator of the **mobile GPU memory hierarchy** used by
//! FlashMem (ASPLOS '26). The paper evaluates on Qualcomm Adreno and ARM Mali
//! GPUs, which expose a hierarchy of
//!
//! ```text
//! disk  --1.5 GB/s-->  unified memory  --65 GB/s-->  2.5D texture memory
//!        --172 GB/s--> texture cache   --560 GB/s--> streaming multiprocessors
//! ```
//!
//! (bandwidth figures from Figure 1 of the paper). Because no physical
//! Adreno/Mali device is available in this environment, this crate provides a
//! calibrated analytic + event-driven model of that hierarchy: memory pools
//! with capacity accounting, dual command queues (transfer + compute) that can
//! overlap, a per-operator kernel cost model, a 2.5D texture layout model with
//! a texture-cache hit-rate estimate, and a power/energy model integrated over
//! the simulated timeline.
//!
//! The simulator is deliberately independent of any DNN-specific concepts: it
//! executes [`Command`](engine::Command) streams that higher layers
//! (`flashmem-core`, `flashmem-baselines`) compile from DNN graphs and overlap
//! plans.
//!
//! ## Example
//!
//! ```rust
//! use flashmem_gpu_sim::{DeviceSpec, GpuSimulator, SimConfig};
//! use flashmem_gpu_sim::engine::{Command, CommandStream};
//! use flashmem_gpu_sim::kernel::{KernelCategory, KernelDesc, LaunchDims};
//! use flashmem_gpu_sim::bandwidth::MemoryTier;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let device = DeviceSpec::oneplus_12();
//! let mut sim = GpuSimulator::new(device, SimConfig::default());
//!
//! let mut stream = CommandStream::new();
//! let load = stream.push(Command::transfer(
//!     "weights", 64 << 20, MemoryTier::Disk, MemoryTier::UnifiedMemory, &[]));
//! let kernel = KernelDesc::new("matmul", KernelCategory::Reusable, 2.0e9, 32 << 20, 8 << 20)
//!     .with_launch(LaunchDims::new([256, 256, 1], [8, 8, 1]));
//! stream.push(Command::kernel("mm0", kernel, 0, &[load]));
//!
//! let outcome = sim.execute(&stream)?;
//! assert!(outcome.total_time_ms > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bandwidth;
pub mod cache;
pub mod decode;
pub mod device;
pub mod energy;
pub mod engine;
pub mod error;
pub mod fault;
pub mod kernel;
pub mod memory;
pub mod rng;
pub mod texture;
pub mod trace;

pub use bandwidth::MemoryTier;
pub use decode::{DecodeSession, DecodeStepPlan, KvCache, StepCost};
pub use device::DeviceSpec;
pub use energy::{EnergyReport, PowerModel};
pub use engine::{ExecutionOutcome, GpuSimulator, PreemptionCost, SimConfig, Suspension};
pub use error::{SimError, SimResult};
pub use fault::{FaultKind, FaultPlan};
pub use kernel::{KernelCategory, KernelDesc, LaunchDims};
pub use memory::{MemoryPool, MemoryTracker};
pub use rng::SplitMix64;
pub use texture::Texture2p5dLayout;
pub use trace::MemoryTrace;

/// Number of bytes in one mebibyte, used consistently across the crate when
/// converting to the MB figures reported in the paper's tables.
pub const MIB: f64 = 1024.0 * 1024.0;

/// Number of bytes in one gibibyte.
pub const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Convert a byte count to mebibytes.
///
/// ```
/// assert_eq!(flashmem_gpu_sim::bytes_to_mib(2 * 1024 * 1024), 2.0);
/// ```
pub fn bytes_to_mib(bytes: u64) -> f64 {
    bytes as f64 / MIB
}

/// Convert mebibytes to a byte count (rounding down).
///
/// ```
/// assert_eq!(flashmem_gpu_sim::mib_to_bytes(2.0), 2 * 1024 * 1024);
/// ```
pub fn mib_to_bytes(mib: f64) -> u64 {
    (mib * MIB) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mib_round_trip() {
        assert_eq!(bytes_to_mib(mib_to_bytes(123.0)), 123.0);
    }

    #[test]
    fn constants_consistent() {
        assert_eq!(GIB, 1024.0 * MIB);
    }
}
