//! Deterministic fault injection: the seeded [`FaultPlan`].
//!
//! A fault plan describes *what goes wrong* with a simulated fleet — a
//! device lost at a fixed simulated instant, a flaky device whose kernels
//! fail transiently, a device under memory pressure that throws spurious
//! allocation failures — without saying anything about *when the scheduler
//! happens to run each command*. Per-command faults are keyed by
//! `(device, seq, command, attempt)` through a [`SplitMix64`] stream, so
//! whether a given command of a given request faults is a pure function of
//! the plan, independent of admission order, pool width or wall-clock
//! interleaving. That is what lets a chaos run stay byte-identical between
//! a `--threads 1` and a `--threads 4` harness: the *schedule* may differ
//! internally, but the set of injected faults cannot.
//!
//! Device loss is the one time-keyed fault: a lost device fails everything
//! that would *start* at or after the loss instant on its simulated
//! timeline. The timeline itself is deterministic, so this too is
//! schedule-independent.
//!
//! The plan is pure data — the simulator never consults it on its own.
//! Harness layers (the serve engine's chaos path) ask
//! [`command_fault`](FaultPlan::command_fault) before issuing each command
//! and translate a firing into the failure/retry/failover path of their
//! choice. An empty plan ([`FaultPlan::is_empty`]) injects nothing and the
//! consulting layers skip the chaos path entirely, which keeps fault-free
//! runs byte-identical to a build without this module.

use std::collections::BTreeMap;

use crate::rng::SplitMix64;

/// What kind of fault fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The device is gone (thermal shutdown, driver death, hot-unplug):
    /// everything resident on it — weights, KV caches, in-flight work — is
    /// lost, and the device never comes back.
    DeviceLoss,
    /// A transient kernel fault: one command failed, the device survives.
    /// Retrying the command stream is expected to succeed (the injection
    /// stream is re-drawn per attempt).
    TransientKernel,
    /// A spurious out-of-memory spike: an allocation that should have fit
    /// was refused (fragmentation, a rogue co-tenant). The device survives
    /// and a retry is expected to succeed.
    OomSpike,
}

impl FaultKind {
    /// Short stable label used in trace events and bench JSON.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::DeviceLoss => "device-loss",
            FaultKind::TransientKernel => "transient-kernel",
            FaultKind::OomSpike => "oom-spike",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A seeded, schedule-independent fault injection plan for a device fleet.
///
/// Build one with [`FaultPlan::seeded`] plus the `with_*` builders, hand it
/// to a harness (e.g. `ServeEngine::with_fault_plan` in `flashmem-serve`),
/// and every run over the same plan and workload injects exactly the same
/// faults — regardless of scheduling policy, pool width or retry timing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    /// Device index → simulated instant (ms) the device is lost at.
    device_loss: BTreeMap<usize, f64>,
    /// Device index → per-command transient kernel fault probability.
    flake: BTreeMap<usize, f64>,
    /// Device index → per-command spurious OOM probability.
    oom: BTreeMap<usize, f64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::seeded(0)
    }
}

impl FaultPlan {
    /// An empty plan whose per-command draws derive from `seed`.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            device_loss: BTreeMap::new(),
            flake: BTreeMap::new(),
            oom: BTreeMap::new(),
        }
    }

    /// Lose `device` at simulated time `at_ms` (builder style): everything
    /// that would start on it at or after that instant fails with
    /// [`FaultKind::DeviceLoss`], and the device never recovers.
    pub fn with_device_loss(mut self, device: usize, at_ms: f64) -> Self {
        self.device_loss.insert(device, at_ms.max(0.0));
        self
    }

    /// Give `device` a transient kernel fault probability of `rate` per
    /// command (clamped to `[0, 1]`; builder style).
    pub fn with_flaky_device(mut self, device: usize, rate: f64) -> Self {
        self.flake.insert(device, rate.clamp(0.0, 1.0));
        self
    }

    /// Give `device` a spurious-OOM probability of `rate` per command
    /// (clamped to `[0, 1]`; builder style).
    pub fn with_oom_spikes(mut self, device: usize, rate: f64) -> Self {
        self.oom.insert(device, rate.clamp(0.0, 1.0));
        self
    }

    /// True when the plan injects nothing at all — harnesses skip their
    /// chaos path entirely, keeping fault-free runs byte-identical to a
    /// plan-less build.
    pub fn is_empty(&self) -> bool {
        self.device_loss.is_empty()
            && self.flake.values().all(|r| *r <= 0.0)
            && self.oom.values().all(|r| *r <= 0.0)
    }

    /// The instant `device` is lost at, if the plan loses it.
    pub fn device_loss_ms(&self, device: usize) -> Option<f64> {
        self.device_loss.get(&device).copied()
    }

    /// Does command `command` of request `seq`, on its `attempt`-th try on
    /// `device`, fault? Returns the fault kind, or `None` for a clean
    /// command.
    ///
    /// The draw is a pure function of `(plan seed, device, seq, command,
    /// attempt)` — **not** of simulated time or issue order — so fault
    /// firing is schedule-independent. `attempt` is part of the key on
    /// purpose: a *transient* fault must be re-drawn when the command is
    /// retried, otherwise a retry would deterministically re-fault forever
    /// and no retry budget could ever help.
    ///
    /// Device loss is time-keyed, not command-keyed; it is never returned
    /// here. Check [`device_loss_ms`](Self::device_loss_ms) against the
    /// command's would-be start instant instead.
    pub fn command_fault(
        &self,
        device: usize,
        seq: usize,
        command: usize,
        attempt: u32,
    ) -> Option<FaultKind> {
        let flake = self.flake.get(&device).copied().unwrap_or(0.0);
        let oom = self.oom.get(&device).copied().unwrap_or(0.0);
        if flake <= 0.0 && oom <= 0.0 {
            return None;
        }
        let mut rng = SplitMix64::seed_from_u64(self.draw_key(device, seq, command, attempt));
        let draw = rng.gen_f64();
        if draw < flake {
            Some(FaultKind::TransientKernel)
        } else if draw < flake + oom {
            Some(FaultKind::OomSpike)
        } else {
            None
        }
    }

    /// Mix the fault coordinates into one 64-bit stream key. SplitMix64's
    /// seeding finalizer scrambles the result, so structured inputs
    /// (small consecutive indices) still produce well-distributed draws.
    fn draw_key(&self, device: usize, seq: usize, command: usize, attempt: u32) -> u64 {
        self.seed
            .wrapping_add((device as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add((seq as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add((command as u64).wrapping_mul(0x94d0_49bb_1331_11eb))
            .wrapping_add((attempt as u64).wrapping_mul(0x2545_f491_4f6c_dd1d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::seeded(7);
        assert!(plan.is_empty());
        assert_eq!(plan.device_loss_ms(0), None);
        for seq in 0..8 {
            for cmd in 0..8 {
                assert_eq!(plan.command_fault(0, seq, cmd, 0), None);
            }
        }
        // A zero-rate knob is still empty.
        let plan = plan.with_flaky_device(1, 0.0).with_oom_spikes(2, -3.0);
        assert!(plan.is_empty());
    }

    #[test]
    fn device_loss_is_recorded_and_clamped() {
        let plan = FaultPlan::seeded(7)
            .with_device_loss(2, 1_500.0)
            .with_device_loss(3, -10.0);
        assert!(!plan.is_empty());
        assert_eq!(plan.device_loss_ms(2), Some(1_500.0));
        assert_eq!(plan.device_loss_ms(3), Some(0.0));
        assert_eq!(plan.device_loss_ms(0), None);
    }

    #[test]
    fn command_faults_are_deterministic_and_keyed_per_coordinate() {
        let plan = FaultPlan::seeded(42)
            .with_flaky_device(0, 0.5)
            .with_oom_spikes(0, 0.25);
        // Same coordinates → same verdict, every time.
        for seq in 0..16 {
            for cmd in 0..16 {
                for attempt in 0..3 {
                    assert_eq!(
                        plan.command_fault(0, seq, cmd, attempt),
                        plan.command_fault(0, seq, cmd, attempt)
                    );
                }
            }
        }
        // The draw is per-coordinate: over many coordinates both kinds fire
        // and clean commands exist.
        let mut kernel = 0;
        let mut oom = 0;
        let mut clean = 0;
        for seq in 0..32 {
            for cmd in 0..32 {
                match plan.command_fault(0, seq, cmd, 0) {
                    Some(FaultKind::TransientKernel) => kernel += 1,
                    Some(FaultKind::OomSpike) => oom += 1,
                    None => clean += 1,
                    Some(FaultKind::DeviceLoss) => unreachable!("loss is time-keyed"),
                }
            }
        }
        assert!(kernel > 0 && oom > 0 && clean > 0);
        // Roughly the configured mix (coarse bounds — this is a
        // determinism pin, not a statistics test).
        let total = (kernel + oom + clean) as f64;
        assert!((kernel as f64 / total - 0.5).abs() < 0.1);
        assert!((oom as f64 / total - 0.25).abs() < 0.1);
    }

    #[test]
    fn attempts_redraw_the_fault_stream() {
        // A transient fault must not re-fire deterministically on retry:
        // find a faulting coordinate and check some later attempt succeeds.
        let plan = FaultPlan::seeded(1).with_flaky_device(0, 0.3);
        let faulting = (0..64)
            .flat_map(|seq| (0..8).map(move |cmd| (seq, cmd)))
            .find(|&(seq, cmd)| plan.command_fault(0, seq, cmd, 0).is_some())
            .expect("a 30% flake rate faults somewhere in 512 draws");
        let recovered = (1..16).any(|attempt| {
            plan.command_fault(0, faulting.0, faulting.1, attempt)
                .is_none()
        });
        assert!(recovered, "retries never redrew the fault");
    }

    #[test]
    fn faults_are_isolated_per_device() {
        let plan = FaultPlan::seeded(9).with_flaky_device(1, 1.0);
        assert_eq!(plan.command_fault(0, 0, 0, 0), None);
        assert_eq!(
            plan.command_fault(1, 0, 0, 0),
            Some(FaultKind::TransientKernel)
        );
    }

    #[test]
    fn rates_clamp_to_probability_range() {
        let plan = FaultPlan::seeded(3)
            .with_flaky_device(0, 7.0)
            .with_oom_spikes(0, 2.0);
        // flake clamps to 1.0 → every command faults as a kernel fault.
        assert_eq!(
            plan.command_fault(0, 5, 5, 0),
            Some(FaultKind::TransientKernel)
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(FaultKind::DeviceLoss.label(), "device-loss");
        assert_eq!(FaultKind::TransientKernel.to_string(), "transient-kernel");
        assert_eq!(FaultKind::OomSpike.label(), "oom-spike");
    }
}
