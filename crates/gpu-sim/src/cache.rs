//! Texture-cache behaviour model.
//!
//! The texture cache sits between texture memory and the SMs (Figure 1) and is
//! optimised for 2D spatial locality. Whether a kernel's weight reads hit in
//! the cache depends on how well the 2.5D layout matches the kernel's access
//! pattern; SmartMem's (and FlashMem's) layout optimisation exists precisely to
//! raise this hit rate and avoid Reshape/Transpose round-trips.

use serde::{Deserialize, Serialize};

use crate::texture::{Texture2p5dLayout, WeightLayout};

/// Analytic texture-cache model producing an effective read bandwidth for a
/// kernel, given how its weights are laid out.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TextureCacheModel {
    /// Cache line size in texels along the X dimension.
    pub line_texels: u64,
    /// Cache capacity in bytes (per SM texture cache; Adreno-class GPUs have
    /// tens of KiB per cluster).
    pub capacity_bytes: u64,
    /// Hit latency amortised benefit: fraction of peak cache bandwidth reached
    /// on an ideal streaming access pattern.
    pub peak_efficiency: f64,
}

impl Default for TextureCacheModel {
    fn default() -> Self {
        TextureCacheModel {
            line_texels: 16,
            capacity_bytes: 128 * 1024,
            peak_efficiency: 0.92,
        }
    }
}

impl TextureCacheModel {
    /// Estimated hit rate in `[0, 1]` for reading a tensor with layout
    /// `layout` under access pattern `pattern`.
    pub fn hit_rate(&self, layout: &Texture2p5dLayout, pattern: AccessPattern) -> f64 {
        // Aspect ratio penalty: extremely skewed textures waste cache lines.
        let aspect = layout.aspect_ratio();
        let aspect_factor = if aspect <= 4.0 {
            1.0
        } else {
            (4.0 / aspect).max(0.25)
        };
        let base = match pattern {
            AccessPattern::RowStreaming => 0.95,
            AccessPattern::Tiled2d => 0.90,
            AccessPattern::Strided { stride_texels } => {
                if stride_texels <= self.line_texels {
                    0.85
                } else {
                    // Each access touches a new line.
                    (self.line_texels as f64 / stride_texels as f64).clamp(0.05, 0.85)
                }
            }
            AccessPattern::Random => 0.20,
        };
        (base * aspect_factor).clamp(0.0, 1.0)
    }

    /// Effective bandwidth (bytes/s) seen by the SMs when reading through the
    /// cache, combining hit rate, the layout's intrinsic read efficiency and
    /// the raw texture/cache bandwidths of the device.
    pub fn effective_read_bandwidth(
        &self,
        layout: &Texture2p5dLayout,
        weight_layout: WeightLayout,
        pattern: AccessPattern,
        texture_bw: f64,
        cache_bw: f64,
    ) -> f64 {
        let hit = self.hit_rate(layout, pattern);
        let raw = hit * cache_bw * self.peak_efficiency + (1.0 - hit) * texture_bw;
        raw * weight_layout.read_efficiency()
    }
}

/// How a kernel walks a texture while computing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Sequential rows of texels (well-tiled MatMul reading packed weights).
    RowStreaming,
    /// 2D tiles (convolutions over images).
    Tiled2d,
    /// Fixed stride between consecutive reads, in texels.
    Strided {
        /// Distance between consecutive texel reads.
        stride_texels: u64,
    },
    /// Effectively random access (gather / poorly laid-out transpose reads).
    Random,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> Texture2p5dLayout {
        Texture2p5dLayout::for_matrix(1024, 1024, 2)
    }

    #[test]
    fn streaming_beats_random() {
        let m = TextureCacheModel::default();
        let l = layout();
        assert!(
            m.hit_rate(&l, AccessPattern::RowStreaming) > m.hit_rate(&l, AccessPattern::Random)
        );
    }

    #[test]
    fn small_strides_behave_like_streaming() {
        let m = TextureCacheModel::default();
        let l = layout();
        let near = m.hit_rate(&l, AccessPattern::Strided { stride_texels: 4 });
        let far = m.hit_rate(&l, AccessPattern::Strided { stride_texels: 512 });
        assert!(near > far);
        assert!(far >= 0.05);
    }

    #[test]
    fn skewed_textures_lose_hit_rate() {
        let m = TextureCacheModel::default();
        let square = Texture2p5dLayout::for_matrix(1024, 4096, 2); // 1024 x 1024 texels
        let skewed = Texture2p5dLayout::for_matrix(16, 1 << 22, 2); // 16 x ~1M texels
        assert!(
            m.hit_rate(&square, AccessPattern::RowStreaming)
                > m.hit_rate(&skewed, AccessPattern::RowStreaming)
        );
    }

    #[test]
    fn hit_rate_bounded() {
        let m = TextureCacheModel::default();
        let l = layout();
        for p in [
            AccessPattern::RowStreaming,
            AccessPattern::Tiled2d,
            AccessPattern::Strided { stride_texels: 1 },
            AccessPattern::Strided {
                stride_texels: 10_000,
            },
            AccessPattern::Random,
        ] {
            let h = m.hit_rate(&l, p);
            assert!((0.0..=1.0).contains(&h), "{p:?} -> {h}");
        }
    }

    #[test]
    fn optimized_layout_reads_faster_than_linear_buffer() {
        let m = TextureCacheModel::default();
        let l = layout();
        let tex_bw = 172.0e9;
        let cache_bw = 560.0e9;
        let optimized = m.effective_read_bandwidth(
            &l,
            WeightLayout::Texture2p5dOptimized,
            AccessPattern::RowStreaming,
            tex_bw,
            cache_bw,
        );
        let linear = m.effective_read_bandwidth(
            &l,
            WeightLayout::LinearBuffer,
            AccessPattern::RowStreaming,
            tex_bw,
            cache_bw,
        );
        // Romou reports up to 3.5x; our model should land in the 2x-4x range.
        let ratio = optimized / linear;
        assert!(ratio > 2.0 && ratio < 4.5, "ratio = {ratio}");
    }
}
