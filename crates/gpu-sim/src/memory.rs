//! Memory pools and the cross-pool memory tracker.
//!
//! The paper's evaluation reports two memory quantities per run (Tables 1
//! and 8): **peak** memory and **average** memory over the execution timeline.
//! [`MemoryPool`] tracks live allocations inside a single tier (unified or
//! texture memory); [`MemoryTracker`] aggregates the pools and records a
//! time-stamped usage trace from which both statistics are derived.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::bandwidth::MemoryTier;
use crate::error::{SimError, SimResult};
use crate::trace::MemoryTrace;

/// Handle to a live allocation inside a [`MemoryPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AllocationId(pub u64);

/// A single memory pool (one tier of the hierarchy) with capacity accounting.
#[derive(Debug, Clone)]
pub struct MemoryPool {
    name: String,
    tier: MemoryTier,
    capacity: u64,
    in_use: u64,
    high_water: u64,
    next_id: u64,
    live: HashMap<u64, Allocation>,
}

/// Metadata retained for every live allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// Bytes occupied by the allocation.
    pub bytes: u64,
    /// Free-form label (weight name, activation id, framework-internal buffer).
    pub label: String,
}

impl MemoryPool {
    /// Create a pool named `name` for `tier` with `capacity` bytes.
    pub fn new(name: &str, tier: MemoryTier, capacity: u64) -> Self {
        MemoryPool {
            name: name.to_string(),
            tier,
            capacity,
            in_use: 0,
            high_water: 0,
            next_id: 1,
            live: HashMap::new(),
        }
    }

    /// Pool name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tier this pool models.
    pub fn tier(&self) -> MemoryTier {
        self.tier
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// Bytes still available.
    pub fn available(&self) -> u64 {
        self.capacity.saturating_sub(self.in_use)
    }

    /// Highest occupancy ever observed, in bytes.
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Number of live allocations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Allocate `bytes` with a descriptive `label`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`] if the allocation would exceed the
    /// pool capacity. The pool is left unchanged in that case.
    pub fn allocate(&mut self, bytes: u64, label: &str) -> SimResult<AllocationId> {
        if self.in_use.saturating_add(bytes) > self.capacity {
            return Err(SimError::OutOfMemory {
                pool: self.name.clone(),
                requested: bytes,
                available: self.available(),
                capacity: self.capacity,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.in_use += bytes;
        self.high_water = self.high_water.max(self.in_use);
        self.live.insert(
            id,
            Allocation {
                bytes,
                label: label.to_string(),
            },
        );
        Ok(AllocationId(id))
    }

    /// Free a previous allocation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownAllocation`] if the handle is stale.
    pub fn free(&mut self, id: AllocationId) -> SimResult<u64> {
        match self.live.remove(&id.0) {
            Some(alloc) => {
                self.in_use -= alloc.bytes;
                Ok(alloc.bytes)
            }
            None => Err(SimError::UnknownAllocation { id: id.0 }),
        }
    }

    /// Look up a live allocation.
    pub fn get(&self, id: AllocationId) -> Option<&Allocation> {
        self.live.get(&id.0)
    }

    /// Free every live allocation (used when a model is evicted wholesale in
    /// multi-DNN FIFO execution).
    pub fn clear(&mut self) {
        self.live.clear();
        self.in_use = 0;
    }

    /// Iterate over live allocations in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (AllocationId, &Allocation)> {
        self.live.iter().map(|(k, v)| (AllocationId(*k), v))
    }
}

/// Aggregated memory accounting across the unified- and texture-memory pools,
/// with a time-stamped usage trace.
///
/// The *total footprint* at any instant is the sum of bytes live in all pools;
/// peak and average are computed over the recorded trace, matching how the
/// paper reports "Peak" and "Avg." memory in Table 1 and "Average Memory" in
/// Table 8.
#[derive(Debug, Clone)]
pub struct MemoryTracker {
    unified: MemoryPool,
    texture: MemoryPool,
    trace: MemoryTrace,
    budget: u64,
}

impl MemoryTracker {
    /// Create a tracker with per-tier capacities and an overall app budget
    /// (exceeding the budget is an OOM even if the individual pools fit).
    pub fn new(unified_capacity: u64, texture_capacity: u64, budget: u64) -> Self {
        MemoryTracker {
            unified: MemoryPool::new("unified", MemoryTier::UnifiedMemory, unified_capacity),
            texture: MemoryPool::new("texture", MemoryTier::TextureMemory, texture_capacity),
            trace: MemoryTrace::new(),
            budget,
        }
    }

    /// Build a tracker from a device spec, using the device's app budget.
    pub fn for_device(device: &crate::device::DeviceSpec) -> Self {
        Self::new(
            device.app_budget_bytes,
            device.texture_budget_bytes,
            device.app_budget_bytes,
        )
    }

    /// The unified-memory pool.
    pub fn unified(&self) -> &MemoryPool {
        &self.unified
    }

    /// The texture-memory pool.
    pub fn texture(&self) -> &MemoryPool {
        &self.texture
    }

    /// Total bytes currently live across both pools.
    pub fn total_in_use(&self) -> u64 {
        self.unified.in_use() + self.texture.in_use()
    }

    /// The overall app budget in bytes.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Allocate in the pool backing `tier` at simulated time `now_ms`.
    ///
    /// # Errors
    ///
    /// * [`SimError::OutOfMemory`] if the pool or the overall budget would be
    ///   exceeded.
    /// * [`SimError::InvalidParameter`] for tiers that are not allocatable
    ///   (disk, texture cache, SM registers).
    pub fn allocate(
        &mut self,
        tier: MemoryTier,
        bytes: u64,
        label: &str,
        now_ms: f64,
    ) -> SimResult<AllocationId> {
        if self.total_in_use().saturating_add(bytes) > self.budget {
            return Err(SimError::OutOfMemory {
                pool: "app budget".to_string(),
                requested: bytes,
                available: self.budget.saturating_sub(self.total_in_use()),
                capacity: self.budget,
            });
        }
        let id = match tier {
            MemoryTier::UnifiedMemory => self.unified.allocate(bytes, label)?,
            MemoryTier::TextureMemory => self.texture.allocate(bytes, label)?,
            other => {
                return Err(SimError::InvalidParameter {
                    message: format!("cannot allocate in tier `{other}`"),
                })
            }
        };
        self.trace.record(now_ms, self.total_in_use());
        Ok(id)
    }

    /// Free an allocation previously made in `tier`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownAllocation`] for stale handles and
    /// [`SimError::InvalidParameter`] for non-allocatable tiers.
    pub fn free(&mut self, tier: MemoryTier, id: AllocationId, now_ms: f64) -> SimResult<u64> {
        let bytes = match tier {
            MemoryTier::UnifiedMemory => self.unified.free(id)?,
            MemoryTier::TextureMemory => self.texture.free(id)?,
            other => {
                return Err(SimError::InvalidParameter {
                    message: format!("cannot free in tier `{other}`"),
                })
            }
        };
        self.trace.record(now_ms, self.total_in_use());
        Ok(bytes)
    }

    /// Record the current occupancy without changing it (useful to extend the
    /// trace to the end of an execution).
    pub fn sample(&mut self, now_ms: f64) {
        let total = self.total_in_use();
        self.trace.record(now_ms, total);
    }

    /// Peak total footprint observed so far, in bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.trace.peak_bytes()
    }

    /// Time-weighted average footprint in bytes.
    pub fn average_bytes(&self) -> f64 {
        self.trace.average_bytes()
    }

    /// The full usage trace (for Figure 6-style plots).
    pub fn trace(&self) -> &MemoryTrace {
        &self.trace
    }

    /// Discard the trace accumulated so far while keeping live allocations
    /// and capacity state.
    ///
    /// Multi-run scenarios call this between executions so each run's
    /// outcome carries only its own trace segment in run-local time —
    /// without it, `trace()` keeps the previous run's samples and
    /// [`MemoryTrace::record`]'s monotonic-time clamping pushes the new
    /// run's (smaller) local timestamps forward onto the old run's end.
    pub fn reset_trace(&mut self) {
        self.trace = MemoryTrace::new();
    }

    /// Drop every live allocation in both pools (model eviction).
    pub fn evict_all(&mut self, now_ms: f64) {
        self.unified.clear();
        self.texture.clear();
        self.trace.record(now_ms, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn allocate_and_free_round_trip() {
        let mut pool = MemoryPool::new("unified", MemoryTier::UnifiedMemory, 100 * MB);
        let a = pool.allocate(10 * MB, "w0").unwrap();
        let b = pool.allocate(20 * MB, "w1").unwrap();
        assert_eq!(pool.in_use(), 30 * MB);
        assert_eq!(pool.live_count(), 2);
        assert_eq!(pool.free(a).unwrap(), 10 * MB);
        assert_eq!(pool.in_use(), 20 * MB);
        assert_eq!(pool.get(b).unwrap().label, "w1");
        assert_eq!(pool.high_water(), 30 * MB);
    }

    #[test]
    fn oom_when_over_capacity() {
        let mut pool = MemoryPool::new("texture", MemoryTier::TextureMemory, 10 * MB);
        pool.allocate(8 * MB, "w").unwrap();
        let err = pool.allocate(4 * MB, "x").unwrap_err();
        match err {
            SimError::OutOfMemory {
                requested,
                available,
                ..
            } => {
                assert_eq!(requested, 4 * MB);
                assert_eq!(available, 2 * MB);
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Failed allocation must not change occupancy.
        assert_eq!(pool.in_use(), 8 * MB);
    }

    #[test]
    fn double_free_is_detected() {
        let mut pool = MemoryPool::new("u", MemoryTier::UnifiedMemory, MB);
        let a = pool.allocate(1, "x").unwrap();
        pool.free(a).unwrap();
        assert!(matches!(
            pool.free(a),
            Err(SimError::UnknownAllocation { .. })
        ));
    }

    #[test]
    fn tracker_budget_enforced_across_pools() {
        let mut t = MemoryTracker::new(100 * MB, 100 * MB, 120 * MB);
        t.allocate(MemoryTier::UnifiedMemory, 80 * MB, "w", 0.0)
            .unwrap();
        t.allocate(MemoryTier::TextureMemory, 30 * MB, "tex", 1.0)
            .unwrap();
        // Both pools individually have room, but the app budget is exhausted.
        let err = t
            .allocate(MemoryTier::TextureMemory, 20 * MB, "tex2", 2.0)
            .unwrap_err();
        assert!(matches!(err, SimError::OutOfMemory { .. }));
    }

    #[test]
    fn tracker_peak_and_average() {
        let mut t = MemoryTracker::new(100 * MB, 100 * MB, 200 * MB);
        let a = t
            .allocate(MemoryTier::UnifiedMemory, 50 * MB, "w", 0.0)
            .unwrap();
        t.sample(10.0);
        t.free(MemoryTier::UnifiedMemory, a, 10.0).unwrap();
        t.sample(20.0);
        assert_eq!(t.peak_bytes(), 50 * MB);
        // 50 MB for the first half of the timeline, 0 for the second half.
        let avg = t.average_bytes();
        assert!(avg > 20.0 * MB as f64 && avg < 30.0 * MB as f64, "{avg}");
    }

    #[test]
    fn cannot_allocate_in_disk_tier() {
        let mut t = MemoryTracker::new(MB, MB, MB);
        assert!(matches!(
            t.allocate(MemoryTier::Disk, 1, "x", 0.0),
            Err(SimError::InvalidParameter { .. })
        ));
        assert!(matches!(
            t.free(MemoryTier::Disk, AllocationId(1), 0.0),
            Err(SimError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn evict_all_resets_usage() {
        let mut t = MemoryTracker::new(100 * MB, 100 * MB, 200 * MB);
        t.allocate(MemoryTier::UnifiedMemory, 10 * MB, "w", 0.0)
            .unwrap();
        t.allocate(MemoryTier::TextureMemory, 10 * MB, "x", 0.0)
            .unwrap();
        t.evict_all(5.0);
        assert_eq!(t.total_in_use(), 0);
        assert_eq!(t.peak_bytes(), 20 * MB);
    }

    #[test]
    fn for_device_uses_app_budget() {
        let device = crate::device::DeviceSpec::xiaomi_mi_6();
        let t = MemoryTracker::for_device(&device);
        assert_eq!(t.budget(), device.app_budget_bytes);
    }
}
