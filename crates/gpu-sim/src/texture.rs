//! 2.5D texture memory layout modelling.
//!
//! Mobile GPUs expose *texture memory*: image objects organised as 2D tiles
//! with a small fixed depth (typically four scalar channels, hence "2.5D").
//! Laying DNN weights out as textures lets the SMs read them through the
//! dedicated texture cache, which Romou measured at up to 3.5× faster than
//! unified-memory buffers. The downside is that a linear weight tensor has to
//! be *transformed* into the tiled layout, which preloading frameworks do for
//! the entire model up front (the "Trans." column of Table 1).
//!
//! [`Texture2p5dLayout`] computes the texture geometry for a weight tensor and
//! the cost factors of transforming into it.

use serde::{Deserialize, Serialize};

/// Number of scalar channels per texel in the 2.5D layout (RGBA).
pub const TEXEL_CHANNELS: u64 = 4;

/// The tiled 2.5D texture layout of a weight or activation tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Texture2p5dLayout {
    /// Texture width in texels.
    pub width: u64,
    /// Texture height in texels.
    pub height: u64,
    /// Bytes per scalar element (2 for FP16, 4 for FP32).
    pub element_bytes: u64,
}

impl Texture2p5dLayout {
    /// Compute a near-square 2.5D layout for a tensor holding `elements`
    /// scalars of `element_bytes` bytes each.
    ///
    /// The driver requires power-of-two-free but bounded dimensions; we follow
    /// the common practice of folding the innermost dimension into the texel
    /// channels and making the texture as square as possible, which maximises
    /// 2D spatial locality in the texture cache.
    pub fn for_elements(elements: u64, element_bytes: u64) -> Self {
        let texels = elements.div_ceil(TEXEL_CHANNELS).max(1);
        let width = (texels as f64).sqrt().ceil() as u64;
        let width = width.max(1);
        let height = texels.div_ceil(width).max(1);
        Texture2p5dLayout {
            width,
            height,
            element_bytes,
        }
    }

    /// Compute the layout for a tensor with an explicit 2D logical shape
    /// (rows × cols), folding channels of 4 along the columns. This mirrors
    /// how MatMul weights are stored: one texel packs four consecutive
    /// columns of one row.
    pub fn for_matrix(rows: u64, cols: u64, element_bytes: u64) -> Self {
        let width = cols.div_ceil(TEXEL_CHANNELS).max(1);
        let height = rows.max(1);
        Texture2p5dLayout {
            width,
            height,
            element_bytes,
        }
    }

    /// Number of texels in the texture.
    pub fn texels(&self) -> u64 {
        self.width * self.height
    }

    /// Total bytes occupied by the texture object (texels × 4 channels ×
    /// element size). This can exceed the logical tensor size because of
    /// padding to full texels — that padding is part of why preloading
    /// frameworks see inflated texture-memory footprints.
    pub fn bytes(&self) -> u64 {
        self.texels() * TEXEL_CHANNELS * self.element_bytes
    }

    /// Padding overhead relative to a logical tensor of `elements` scalars,
    /// as a fraction in `[0, ∞)`. Zero means a perfect fit.
    pub fn padding_overhead(&self, elements: u64) -> f64 {
        let logical = elements * self.element_bytes;
        if logical == 0 {
            return 0.0;
        }
        (self.bytes() as f64 - logical as f64).max(0.0) / logical as f64
    }

    /// Aspect ratio (max dimension / min dimension). Values close to 1 give
    /// the best texture-cache behaviour.
    pub fn aspect_ratio(&self) -> f64 {
        let a = self.width.max(self.height) as f64;
        let b = self.width.min(self.height) as f64;
        if b == 0.0 {
            f64::INFINITY
        } else {
            a / b
        }
    }
}

/// How a tensor is laid out when the SMs read it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WeightLayout {
    /// Flat buffer in unified memory (no texture benefits; ExecuTorch-style).
    LinearBuffer,
    /// 2.5D texture produced by a layout transformation at load time.
    Texture2p5d,
    /// 2.5D texture whose layout was chosen offline so no runtime Reshape /
    /// Transpose is needed (SmartMem / FlashMem style).
    Texture2p5dOptimized,
}

impl WeightLayout {
    /// Relative cost multiplier of the unified→texture transformation kernel
    /// for this layout, expressed as "bytes moved per logical byte".
    ///
    /// * `LinearBuffer` needs no transformation (1 read path, but slow reads).
    /// * `Texture2p5d` pays the classic copy + repack: the weight is read from
    ///   UM, repacked on the CPU or by a staging kernel, written to UM again
    ///   and finally uploaded — ~3 traversals of the data.
    /// * `Texture2p5dOptimized` uploads directly in the final layout — a
    ///   single traversal.
    pub fn transform_traffic_factor(&self) -> f64 {
        match self {
            WeightLayout::LinearBuffer => 0.0,
            WeightLayout::Texture2p5d => 3.0,
            WeightLayout::Texture2p5dOptimized => 1.0,
        }
    }

    /// Relative SM read-bandwidth efficiency of the layout (1.0 = reads run at
    /// full texture-cache speed; lower values model cache-unfriendly access).
    pub fn read_efficiency(&self) -> f64 {
        match self {
            WeightLayout::LinearBuffer => 0.30,
            WeightLayout::Texture2p5d => 0.85,
            WeightLayout::Texture2p5dOptimized => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_layout_for_elements() {
        let l = Texture2p5dLayout::for_elements(4096, 2);
        // 4096 scalars → 1024 texels → 32 × 32.
        assert_eq!(l.width, 32);
        assert_eq!(l.height, 32);
        assert_eq!(l.texels(), 1024);
        assert_eq!(l.bytes(), 4096 * 2);
        assert_eq!(l.padding_overhead(4096), 0.0);
        assert!((l.aspect_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn layout_never_loses_elements() {
        for elements in [1u64, 3, 5, 17, 1000, 123_457, 9_999_999] {
            let l = Texture2p5dLayout::for_elements(elements, 4);
            assert!(
                l.texels() * TEXEL_CHANNELS >= elements,
                "layout for {elements} lost data"
            );
        }
    }

    #[test]
    fn matrix_layout_rows_preserved() {
        let l = Texture2p5dLayout::for_matrix(768, 3072, 2);
        assert_eq!(l.height, 768);
        assert_eq!(l.width, 768); // 3072 / 4
        assert_eq!(l.bytes(), 768 * 3072 * 2);
    }

    #[test]
    fn padding_overhead_small_for_large_tensors() {
        let elements = 50_000_000u64;
        let l = Texture2p5dLayout::for_elements(elements, 2);
        assert!(l.padding_overhead(elements) < 0.01);
    }

    #[test]
    fn zero_and_one_element_edge_cases() {
        let l0 = Texture2p5dLayout::for_elements(0, 2);
        assert!(l0.width >= 1 && l0.height >= 1);
        assert_eq!(l0.padding_overhead(0), 0.0);
        let l1 = Texture2p5dLayout::for_elements(1, 2);
        assert_eq!(l1.texels(), 1);
    }

    #[test]
    fn layout_cost_ordering_matches_paper_narrative() {
        // Optimized texture < naive texture in transform cost, and
        // optimized texture > naive texture > linear buffer in read speed.
        assert!(
            WeightLayout::Texture2p5dOptimized.transform_traffic_factor()
                < WeightLayout::Texture2p5d.transform_traffic_factor()
        );
        assert!(
            WeightLayout::Texture2p5dOptimized.read_efficiency()
                > WeightLayout::Texture2p5d.read_efficiency()
        );
        assert!(
            WeightLayout::Texture2p5d.read_efficiency()
                > WeightLayout::LinearBuffer.read_efficiency()
        );
    }
}
