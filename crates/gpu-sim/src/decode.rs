//! Autoregressive decode on the simulated memory hierarchy.
//!
//! Generative models split inference into a *prefill* pass (the full prompt
//! through the whole graph, compiled and lowered exactly like a one-shot
//! request) followed by N *decode steps*, each pushing a single token through
//! the layers against a resident KV cache. This module models the step side:
//!
//! - [`DecodeStepPlan`] wraps the lowered single-token command stream and can
//!   derive a *batched* variant of it: per-step weight traffic is shared by
//!   every sequence in the batch, so only kernel compute and activation
//!   output scale with batch size. That asymmetry is the whole point of
//!   continuous batching on an IO-bound hierarchy — step latency grows far
//!   slower than batch size until compute catches up with the memory phase.
//! - [`KvCache`] charges per-token KV residency against the caller's
//!   [`MemoryTracker`], one allocation per context token, so KV bytes grow
//!   monotonically over a request's lifetime and are released in one sweep
//!   when it leaves.
//! - [`DecodeSession`] is one request's decode state: it replays the step
//!   plan once per generated token, growing the KV cache and time-stamping
//!   each emitted token (token timestamps are what TTFT/ITL percentiles are
//!   computed from upstream).

use crate::bandwidth::MemoryTier;
use crate::engine::{
    CommandKind, CommandStream, GpuSimulator, QueueClocks, QueueKind, StreamStepper,
};
use crate::error::SimResult;
use crate::memory::{AllocationId, MemoryTracker};

/// Aggregate cost of replaying one (possibly batched) decode step or prefill
/// stream against idle queues.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StepCost {
    /// Wall-clock makespan of the replay in milliseconds.
    pub makespan_ms: f64,
    /// Milliseconds with a transfer-queue command in flight.
    pub transfer_busy_ms: f64,
    /// Milliseconds with a compute-queue command in flight.
    pub compute_busy_ms: f64,
}

/// A compiled decode-step plan: the lowered command stream of the
/// single-token step graph, replayed once per generated token.
#[derive(Debug, Clone)]
pub struct DecodeStepPlan {
    base: CommandStream,
}

impl DecodeStepPlan {
    /// Wrap a validated single-token step stream.
    ///
    /// # Errors
    ///
    /// Propagates stream validation errors (dangling dependencies etc.).
    pub fn new(base: CommandStream) -> SimResult<Self> {
        base.validate()?;
        Ok(DecodeStepPlan { base })
    }

    /// The unbatched (batch = 1) step stream.
    pub fn base(&self) -> &CommandStream {
        &self.base
    }

    /// The step stream with `batch` sequences sharing it. Kernel compute
    /// (`flops`) and activation output (`bytes_out`) scale with the batch;
    /// kernel input traffic, weight transfers, transforms and allocations do
    /// not — at sequence length 1 they are dominated by weights, which are
    /// loaded once per step and reused by every sequence in the batch.
    /// `batched(1)` is the base stream unchanged.
    pub fn batched(&self, batch: usize) -> CommandStream {
        let batch = batch.max(1);
        if batch == 1 {
            return self.base.clone();
        }
        let mut stream = CommandStream::new();
        for cmd in self.base.commands() {
            let mut cmd = cmd.clone();
            if let CommandKind::Kernel { desc, .. } = &mut cmd.kind {
                desc.flops *= batch as f64;
                desc.bytes_out = desc.bytes_out.saturating_mul(batch as u64);
            }
            stream.push(cmd);
        }
        stream
    }

    /// Replay the `batch`-wide step stream against idle queues, charging
    /// transient allocations to `tracker` at `now_ms` and releasing them at
    /// the end of the step. Returns the step's aggregate cost.
    ///
    /// # Errors
    ///
    /// Propagates tracker errors — most importantly out-of-memory when the
    /// step's transients no longer fit next to the resident KV cache.
    pub fn replay(
        &self,
        sim: &GpuSimulator,
        tracker: &mut MemoryTracker,
        batch: usize,
        now_ms: f64,
    ) -> SimResult<StepCost> {
        replay_stream(&self.batched(batch), sim, tracker, now_ms)
    }
}

/// Replay any lowered stream against idle queues at absolute time `now_ms`,
/// releasing whatever it leaves allocated once it drains. Used for prefill
/// passes and decode steps alike.
///
/// # Errors
///
/// Propagates stream validation and tracker errors.
pub fn replay_stream(
    stream: &CommandStream,
    sim: &GpuSimulator,
    tracker: &mut MemoryTracker,
    now_ms: f64,
) -> SimResult<StepCost> {
    let mut stepper = StreamStepper::new(stream.clone())?;
    let mut clocks = QueueClocks::new();
    let mut cost = StepCost::default();
    while !stepper.is_done() {
        let Some(ev) = stepper.step(sim, &mut clocks, tracker, now_ms)? else {
            break;
        };
        match ev.queue {
            QueueKind::Transfer => cost.transfer_busy_ms += ev.duration_ms(),
            QueueKind::Compute => cost.compute_busy_ms += ev.duration_ms(),
            QueueKind::Host => {}
        }
    }
    cost.makespan_ms = stepper.makespan_ms();
    stepper.release_remaining(tracker, now_ms + cost.makespan_ms)?;
    Ok(cost)
}

/// Per-request KV-cache residency: one tracker allocation per context token
/// in unified memory, so the resident byte count grows monotonically until
/// [`release`](KvCache::release).
#[derive(Debug)]
pub struct KvCache {
    bytes_per_token: u64,
    chunks: Vec<AllocationId>,
}

impl KvCache {
    /// An empty cache charging `bytes_per_token` per context token.
    pub fn new(bytes_per_token: u64) -> Self {
        KvCache {
            bytes_per_token,
            chunks: Vec::new(),
        }
    }

    /// Bytes appended per context token.
    pub fn bytes_per_token(&self) -> u64 {
        self.bytes_per_token
    }

    /// Context tokens currently resident.
    pub fn tokens(&self) -> u64 {
        self.chunks.len() as u64
    }

    /// Resident KV bytes.
    pub fn resident_bytes(&self) -> u64 {
        self.tokens() * self.bytes_per_token
    }

    /// Append `tokens` context tokens, charging each against `tracker` at
    /// `now_ms`. Returns the bytes added.
    ///
    /// # Errors
    ///
    /// Propagates out-of-memory from the tracker; allocations made before
    /// the failing one stay charged (the caller releases on teardown).
    pub fn grow(
        &mut self,
        tracker: &mut MemoryTracker,
        tokens: u64,
        label: &str,
        now_ms: f64,
    ) -> SimResult<u64> {
        for _ in 0..tokens {
            let id = tracker.allocate(
                MemoryTier::UnifiedMemory,
                self.bytes_per_token,
                label,
                now_ms,
            )?;
            self.chunks.push(id);
        }
        Ok(tokens * self.bytes_per_token)
    }

    /// Release every resident token, returning the bytes freed.
    ///
    /// # Errors
    ///
    /// Propagates tracker errors on stale handles (a session bug, not a
    /// modelled outcome).
    pub fn release(&mut self, tracker: &mut MemoryTracker, now_ms: f64) -> SimResult<u64> {
        let mut freed = 0;
        for id in self.chunks.drain(..) {
            freed += tracker.free(MemoryTier::UnifiedMemory, id, now_ms)?;
        }
        Ok(freed)
    }
}

/// One request's autoregressive decode state: prompt/output token targets,
/// the growing KV cache, and the timestamp of every emitted token.
///
/// Lifecycle: [`finish_prefill`](Self::finish_prefill) once (the prefill pass
/// processes the prompt and emits the first token), then one
/// [`replay_step`](Self::replay_step) or [`advance_step`](Self::advance_step)
/// per remaining token. After the last step the KV cache holds
/// `prompt + output - 1` tokens (the final emitted token is never fed back).
#[derive(Debug)]
pub struct DecodeSession {
    kv: KvCache,
    prompt_tokens: u32,
    output_tokens: u32,
    token_times_ms: Vec<f64>,
}

impl DecodeSession {
    /// A new session generating `output_tokens` (clamped to at least 1) from
    /// a `prompt_tokens`-long prompt.
    pub fn new(prompt_tokens: u32, output_tokens: u32, kv_bytes_per_token: u64) -> Self {
        DecodeSession {
            kv: KvCache::new(kv_bytes_per_token),
            prompt_tokens,
            output_tokens: output_tokens.max(1),
            token_times_ms: Vec::new(),
        }
    }

    /// Prompt length in tokens.
    pub fn prompt_tokens(&self) -> u32 {
        self.prompt_tokens
    }

    /// Tokens this session will emit in total.
    pub fn output_tokens(&self) -> u32 {
        self.output_tokens
    }

    /// Tokens emitted so far.
    pub fn emitted_tokens(&self) -> u32 {
        self.token_times_ms.len() as u32
    }

    /// True once every output token has been emitted.
    pub fn is_done(&self) -> bool {
        self.emitted_tokens() >= self.output_tokens
    }

    /// Timestamps (absolute ms) of every emitted token; the first entry is
    /// the time-to-first-token instant, gaps between consecutive entries are
    /// the inter-token latencies.
    pub fn token_times_ms(&self) -> &[f64] {
        &self.token_times_ms
    }

    /// The KV cache backing this session.
    pub fn kv(&self) -> &KvCache {
        &self.kv
    }

    /// Maximum context this session will ever hold, in tokens. Admission
    /// against a token budget reserves this much up front so a joined
    /// request can never OOM the budget mid-decode.
    pub fn max_context_tokens(&self) -> u64 {
        self.prompt_tokens as u64 + self.output_tokens as u64 - 1
    }

    /// Record the prefill pass finishing at `end_ms`: the prompt's KV
    /// becomes resident and the first token is emitted.
    ///
    /// # Errors
    ///
    /// Propagates out-of-memory growing the prompt KV.
    pub fn finish_prefill(
        &mut self,
        tracker: &mut MemoryTracker,
        label: &str,
        end_ms: f64,
    ) -> SimResult<u64> {
        let grown = self
            .kv
            .grow(tracker, self.prompt_tokens as u64, label, end_ms)?;
        self.token_times_ms.push(end_ms);
        Ok(grown)
    }

    /// Literal per-token replay: step the plan's command stream to
    /// completion starting at `now_ms`, grow the KV cache by the token being
    /// processed, and emit the next token at the step's end. Returns the
    /// step cost; the emitted token's timestamp is `now_ms +
    /// cost.makespan_ms`.
    ///
    /// # Errors
    ///
    /// Propagates replay and tracker errors.
    pub fn replay_step(
        &mut self,
        plan: &DecodeStepPlan,
        sim: &GpuSimulator,
        tracker: &mut MemoryTracker,
        label: &str,
        now_ms: f64,
    ) -> SimResult<StepCost> {
        let cost = plan.replay(sim, tracker, 1, now_ms)?;
        self.advance_step(tracker, label, now_ms + cost.makespan_ms)?;
        Ok(cost)
    }

    /// Book-keep one decode step whose cost was computed elsewhere (the
    /// batched scheduler replays each distinct (model, batch-size) stream
    /// once and memoizes the cost): grow KV by one token and emit the next
    /// token at `end_ms`.
    ///
    /// # Errors
    ///
    /// Propagates out-of-memory growing the KV cache.
    pub fn advance_step(
        &mut self,
        tracker: &mut MemoryTracker,
        label: &str,
        end_ms: f64,
    ) -> SimResult<u64> {
        let grown = self.kv.grow(tracker, 1, label, end_ms)?;
        self.token_times_ms.push(end_ms);
        Ok(grown)
    }

    /// Release the KV cache (the request left the batch), returning the
    /// bytes freed.
    ///
    /// # Errors
    ///
    /// Propagates tracker errors on stale handles.
    pub fn release(&mut self, tracker: &mut MemoryTracker, now_ms: f64) -> SimResult<u64> {
        self.kv.release(tracker, now_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use crate::engine::{Command, SimConfig};
    use crate::kernel::{KernelCategory, KernelDesc};

    fn step_stream() -> CommandStream {
        // A memory-bound step: stream 48 MiB of weights, then a kernel whose
        // memory phase dwarfs its compute phase (the seq-1 regime).
        let mut s = CommandStream::new();
        let w = s.push(Command::transfer(
            "weights",
            48 << 20,
            MemoryTier::Disk,
            MemoryTier::UnifiedMemory,
            &[],
        ));
        let k = KernelDesc::new("step", KernelCategory::Reusable, 5.0e7, 48 << 20, 1 << 16);
        s.push(Command::kernel("mm", k, 0, &[w]));
        s
    }

    fn harness() -> (GpuSimulator, MemoryTracker) {
        let device = DeviceSpec::oneplus_12();
        let tracker = MemoryTracker::for_device(&device);
        (GpuSimulator::new(device, SimConfig::default()), tracker)
    }

    #[test]
    fn batched_stream_scales_kernels_only() {
        let plan = DecodeStepPlan::new(step_stream()).unwrap();
        let b4 = plan.batched(4);
        for (base, batched) in plan.base().commands().iter().zip(b4.commands()) {
            match (&base.kind, &batched.kind) {
                (CommandKind::Kernel { desc: a, .. }, CommandKind::Kernel { desc: b, .. }) => {
                    assert_eq!(b.flops, 4.0 * a.flops);
                    assert_eq!(b.bytes_out, 4 * a.bytes_out);
                    assert_eq!(b.bytes_in, a.bytes_in);
                }
                (
                    CommandKind::Transfer { bytes: a, .. },
                    CommandKind::Transfer { bytes: b, .. },
                ) => {
                    assert_eq!(a, b);
                }
                _ => {}
            }
        }
        assert_eq!(
            plan.batched(1).commands().len(),
            plan.base().commands().len()
        );
    }

    #[test]
    fn batched_step_amortizes_weight_traffic() {
        let plan = DecodeStepPlan::new(step_stream()).unwrap();
        let (sim, mut tracker) = harness();
        let one = plan.replay(&sim, &mut tracker, 1, 0.0).unwrap();
        let eight = plan.replay(&sim, &mut tracker, 8, 0.0).unwrap();
        // Eight sequences per step must cost far less than eight serial steps.
        assert!(eight.makespan_ms > one.makespan_ms);
        assert!(
            eight.makespan_ms < 4.0 * one.makespan_ms,
            "batched step {} vs serial {}",
            eight.makespan_ms,
            8.0 * one.makespan_ms
        );
    }

    #[test]
    fn kv_cache_grows_monotonically_and_releases_fully() {
        let (_, mut tracker) = harness();
        let mut kv = KvCache::new(4096);
        let mut last = 0;
        for step in 0..10 {
            kv.grow(&mut tracker, 1, "kv", step as f64).unwrap();
            assert!(kv.resident_bytes() > last);
            last = kv.resident_bytes();
        }
        assert_eq!(kv.tokens(), 10);
        assert_eq!(tracker.total_in_use(), 10 * 4096);
        let freed = kv.release(&mut tracker, 11.0).unwrap();
        assert_eq!(freed, 10 * 4096);
        assert_eq!(tracker.total_in_use(), 0);
    }

    #[test]
    fn session_emits_exact_token_count_with_increasing_times() {
        let plan = DecodeStepPlan::new(step_stream()).unwrap();
        let (sim, mut tracker) = harness();
        let mut session = DecodeSession::new(16, 5, 4096);
        session.finish_prefill(&mut tracker, "kv", 3.0).unwrap();
        let mut now = 3.0;
        while !session.is_done() {
            let cost = session
                .replay_step(&plan, &sim, &mut tracker, "kv", now)
                .unwrap();
            now += cost.makespan_ms;
        }
        assert_eq!(session.emitted_tokens(), 5);
        let times = session.token_times_ms();
        assert!(times.windows(2).all(|w| w[1] > w[0]));
        // Prompt + output - 1 context tokens resident at the end.
        assert_eq!(session.kv().tokens(), 16 + 5 - 1);
        assert_eq!(session.max_context_tokens(), 20);
        let freed = session.release(&mut tracker, now).unwrap();
        assert_eq!(freed, 20 * 4096);
        assert_eq!(tracker.total_in_use(), 0);
    }

    #[test]
    fn zero_output_clamps_to_one_token() {
        let s = DecodeSession::new(4, 0, 128);
        assert_eq!(s.output_tokens(), 1);
        assert_eq!(s.max_context_tokens(), 4);
    }
}
