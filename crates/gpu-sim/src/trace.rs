//! Time-stamped memory usage traces and execution event logs.
//!
//! Traces are the raw material behind the paper's Figure 6 (memory usage over
//! time under multi-model workloads) and the Peak / Avg. columns of Tables 1
//! and 8.

use serde::{Deserialize, Serialize};

/// One sample of total memory usage at a simulated timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemorySample {
    /// Simulated time in milliseconds.
    pub time_ms: f64,
    /// Total live bytes at that time.
    pub bytes: u64,
}

/// A step-function trace of memory usage over simulated time.
///
/// Samples are recorded at every allocation/free; the value holds until the
/// next sample. Peak is the maximum sample; the average is time-weighted.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MemoryTrace {
    samples: Vec<MemorySample>,
    clamped: u64,
}

impl MemoryTrace {
    /// Create an empty trace.
    pub fn new() -> Self {
        MemoryTrace::default()
    }

    /// Record that total usage is `bytes` from `time_ms` onwards.
    ///
    /// Out-of-order timestamps are clamped to the latest recorded time so the
    /// trace stays monotone (the simulator's event clock never goes backwards,
    /// but callers composing traces may replay slightly stale events — tiny
    /// reorderings across concurrent streams are an accepted modelling
    /// artifact). Clamps are no longer silent: each one increments the
    /// [`clamped`](Self::clamped) counter. Non-finite timestamps are a caller
    /// bug and trip a debug assertion.
    pub fn record(&mut self, time_ms: f64, bytes: u64) {
        debug_assert!(
            time_ms.is_finite(),
            "memory trace timestamps must be finite, got {time_ms}"
        );
        let t = match self.samples.last() {
            Some(last) if time_ms < last.time_ms => {
                self.clamped += 1;
                last.time_ms
            }
            _ => time_ms,
        };
        self.samples.push(MemorySample { time_ms: t, bytes });
    }

    /// Number of samples whose timestamps arrived out of order and were
    /// clamped forward to keep the trace monotone.
    pub fn clamped(&self) -> u64 {
        self.clamped
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The recorded samples in chronological order.
    pub fn samples(&self) -> &[MemorySample] {
        &self.samples
    }

    /// Maximum usage seen, in bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.samples.iter().map(|s| s.bytes).max().unwrap_or(0)
    }

    /// Time-weighted average usage in bytes over the sampled interval. If the
    /// trace has fewer than two samples the last (or zero) value is returned.
    pub fn average_bytes(&self) -> f64 {
        match self.samples.len() {
            0 => 0.0,
            1 => self.samples[0].bytes as f64,
            _ => {
                let start = self.samples.first().unwrap().time_ms;
                let end = self.samples.last().unwrap().time_ms;
                let span = end - start;
                if span <= 0.0 {
                    return self.samples.last().unwrap().bytes as f64;
                }
                let mut weighted = 0.0;
                for pair in self.samples.windows(2) {
                    let dt = pair[1].time_ms - pair[0].time_ms;
                    weighted += pair[0].bytes as f64 * dt;
                }
                weighted / span
            }
        }
    }

    /// Resample the step function at `points` evenly spaced instants between
    /// the first and last timestamps — convenient for plotting Figure 6-style
    /// curves with a fixed number of points.
    pub fn resample(&self, points: usize) -> Vec<MemorySample> {
        if self.samples.is_empty() || points == 0 {
            return Vec::new();
        }
        let start = self.samples.first().unwrap().time_ms;
        let end = self.samples.last().unwrap().time_ms;
        let mut out = Vec::with_capacity(points);
        for i in 0..points {
            let t = if points == 1 {
                start
            } else {
                start + (end - start) * i as f64 / (points - 1) as f64
            };
            out.push(MemorySample {
                time_ms: t,
                bytes: self.value_at(t),
            });
        }
        out
    }

    /// Value of the step function at time `t` (last sample at or before `t`).
    pub fn value_at(&self, t: f64) -> u64 {
        let mut value = 0;
        for s in &self.samples {
            if s.time_ms <= t {
                value = s.bytes;
            } else {
                break;
            }
        }
        value
    }

    /// Append another trace, shifting its timestamps by `offset_ms`. Used to
    /// stitch per-model traces into one multi-model timeline. The source
    /// trace's clamp count carries over: a sample that was clamped while
    /// `other` was recorded stays an out-of-order event after stitching, on
    /// top of any clamping the stitch itself performs at the seam.
    pub fn append_shifted(&mut self, other: &MemoryTrace, offset_ms: f64) {
        self.clamped += other.clamped;
        for s in &other.samples {
            self.record(s.time_ms + offset_ms, s.bytes);
        }
    }
}

/// The kind of activity an execution event represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// A data transfer between memory tiers.
    Transfer,
    /// A compute kernel execution.
    Kernel,
    /// A layout transformation (unified → texture repack).
    Transform,
    /// Framework bookkeeping (graph parsing, allocation, warm-up).
    Overhead,
}

/// One completed activity on the simulated timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionEvent {
    /// Label (kernel or weight name).
    pub label: String,
    /// Activity kind.
    pub kind: EventKind,
    /// Start time in milliseconds.
    pub start_ms: f64,
    /// End time in milliseconds.
    pub end_ms: f64,
    /// Bytes moved (transfers/transforms) or read+written (kernels).
    pub bytes: u64,
}

impl ExecutionEvent {
    /// Duration of the event in milliseconds.
    pub fn duration_ms(&self) -> f64 {
        (self.end_ms - self.start_ms).max(0.0)
    }
}

/// A full execution timeline: every event plus derived busy-time statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    events: Vec<ExecutionEvent>,
}

impl Timeline {
    /// Create an empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Add an event.
    pub fn push(&mut self, event: ExecutionEvent) {
        self.events.push(event);
    }

    /// All events in insertion order.
    pub fn events(&self) -> &[ExecutionEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the timeline holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Latest end time across all events (total makespan), in milliseconds.
    pub fn makespan_ms(&self) -> f64 {
        self.events.iter().map(|e| e.end_ms).fold(0.0, f64::max)
    }

    /// Total busy time of events of `kind` (sum of durations; overlapping
    /// events are counted separately because they run on distinct engines).
    pub fn busy_ms(&self, kind: EventKind) -> f64 {
        self.events
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.duration_ms())
            .sum()
    }

    /// Union length of the intervals of events of `kind` — i.e. wall-clock
    /// time during which at least one such event was active.
    pub fn active_ms(&self, kind: EventKind) -> f64 {
        let mut intervals: Vec<(f64, f64)> = self
            .events
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| (e.start_ms, e.end_ms))
            .collect();
        intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut total = 0.0;
        let mut current: Option<(f64, f64)> = None;
        for (s, e) in intervals {
            match current {
                None => current = Some((s, e)),
                Some((cs, ce)) => {
                    if s <= ce {
                        current = Some((cs, ce.max(e)));
                    } else {
                        total += ce - cs;
                        current = Some((s, e));
                    }
                }
            }
        }
        if let Some((cs, ce)) = current {
            total += ce - cs;
        }
        total
    }

    /// Fraction of the makespan during which compute and transfer activity
    /// overlap — a direct measure of how well loading is hidden behind
    /// execution (the paper's central mechanism).
    pub fn overlap_fraction(&self) -> f64 {
        let makespan = self.makespan_ms();
        if makespan <= 0.0 {
            return 0.0;
        }
        // Sweep: collect interval edges for compute and transfer separately.
        let compute: Vec<(f64, f64)> = self
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Kernel)
            .map(|e| (e.start_ms, e.end_ms))
            .collect();
        let transfer: Vec<(f64, f64)> = self
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Transfer | EventKind::Transform))
            .map(|e| (e.start_ms, e.end_ms))
            .collect();
        let mut overlap = 0.0;
        for &(cs, ce) in &compute {
            for &(ts, te) in &transfer {
                let s = cs.max(ts);
                let e = ce.min(te);
                if e > s {
                    overlap += e - s;
                }
            }
        }
        (overlap / makespan).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace_statistics() {
        let t = MemoryTrace::new();
        assert_eq!(t.peak_bytes(), 0);
        assert_eq!(t.average_bytes(), 0.0);
        assert!(t.is_empty());
        assert!(t.resample(10).is_empty());
    }

    #[test]
    fn single_sample_average_is_value() {
        let mut t = MemoryTrace::new();
        t.record(0.0, 42);
        assert_eq!(t.average_bytes(), 42.0);
        assert_eq!(t.peak_bytes(), 42);
    }

    #[test]
    fn step_function_average() {
        let mut t = MemoryTrace::new();
        t.record(0.0, 100);
        t.record(50.0, 300);
        t.record(100.0, 300);
        // 100 for the first half, 300 for the second half → 200 average.
        assert!((t.average_bytes() - 200.0).abs() < 1e-9);
        assert_eq!(t.peak_bytes(), 300);
    }

    #[test]
    fn out_of_order_timestamps_are_clamped() {
        let mut t = MemoryTrace::new();
        t.record(10.0, 1);
        t.record(5.0, 2);
        assert_eq!(t.samples()[1].time_ms, 10.0);
    }

    #[test]
    fn clamped_counter_tracks_out_of_order_samples() {
        let mut t = MemoryTrace::new();
        assert_eq!(t.clamped(), 0);
        t.record(10.0, 1);
        t.record(5.0, 2); // clamped to 10
        t.record(10.0, 3); // equal timestamps are in order, not clamped
        t.record(8.0, 4); // clamped to 10
        t.record(12.0, 5);
        assert_eq!(t.clamped(), 2);
        // Every surviving timestamp is monotone.
        assert!(t.samples().windows(2).all(|w| w[0].time_ms <= w[1].time_ms));
    }

    #[test]
    fn append_shifted_propagates_the_source_clamp_count() {
        let mut src = MemoryTrace::new();
        src.record(10.0, 1);
        src.record(5.0, 2); // clamped inside the source trace
        assert_eq!(src.clamped(), 1);

        let mut dst = MemoryTrace::new();
        dst.record(0.0, 7);
        dst.record(100.0, 0);
        dst.append_shifted(&src, 50.0);
        // One clamp inherited from the source, plus two at the seam: both
        // shifted samples (50+10 and 50+10) land before dst's last
        // timestamp of 100 and are clamped forward by record().
        assert_eq!(dst.clamped(), 3);
        assert!(dst
            .samples()
            .windows(2)
            .all(|w| w[0].time_ms <= w[1].time_ms));

        // A clean stitch inherits nothing and clamps nothing.
        let mut clean = MemoryTrace::new();
        clean.record(0.0, 3);
        let mut tail = MemoryTrace::new();
        tail.record(0.0, 4);
        clean.append_shifted(&tail, 10.0);
        assert_eq!(clean.clamped(), 0);
    }

    #[test]
    fn peak_is_maximum_over_all_samples() {
        let mut t = MemoryTrace::new();
        for (time, bytes) in [(0.0, 10), (1.0, 500), (2.0, 120), (3.0, 499)] {
            t.record(time, bytes);
        }
        assert_eq!(t.peak_bytes(), 500);
    }

    #[test]
    fn time_weighted_average_with_uneven_intervals() {
        let mut t = MemoryTrace::new();
        t.record(0.0, 100); // holds for 10 ms
        t.record(10.0, 400); // holds for 30 ms
        t.record(40.0, 0);
        // (100·10 + 400·30) / 40 = 325.
        assert!((t.average_bytes() - 325.0).abs() < 1e-9);
    }

    #[test]
    fn value_at_and_resample() {
        let mut t = MemoryTrace::new();
        t.record(0.0, 10);
        t.record(10.0, 20);
        t.record(20.0, 0);
        assert_eq!(t.value_at(-1.0), 0);
        assert_eq!(t.value_at(5.0), 10);
        assert_eq!(t.value_at(15.0), 20);
        assert_eq!(t.value_at(25.0), 0);
        let r = t.resample(3);
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].bytes, 10);
        assert_eq!(r[1].bytes, 20);
        assert_eq!(r[2].bytes, 0);
    }

    #[test]
    fn append_shifted_stitches_traces() {
        let mut a = MemoryTrace::new();
        a.record(0.0, 5);
        a.record(10.0, 0);
        let mut b = MemoryTrace::new();
        b.record(0.0, 7);
        a.append_shifted(&b, 10.0);
        assert_eq!(a.value_at(12.0), 7);
    }

    #[test]
    fn timeline_busy_and_makespan() {
        let mut tl = Timeline::new();
        tl.push(ExecutionEvent {
            label: "load".into(),
            kind: EventKind::Transfer,
            start_ms: 0.0,
            end_ms: 10.0,
            bytes: 100,
        });
        tl.push(ExecutionEvent {
            label: "k0".into(),
            kind: EventKind::Kernel,
            start_ms: 5.0,
            end_ms: 15.0,
            bytes: 50,
        });
        assert_eq!(tl.makespan_ms(), 15.0);
        assert_eq!(tl.busy_ms(EventKind::Transfer), 10.0);
        assert_eq!(tl.busy_ms(EventKind::Kernel), 10.0);
        // 5 ms of overlap over a 15 ms makespan.
        assert!((tl.overlap_fraction() - 5.0 / 15.0).abs() < 1e-9);
    }

    #[test]
    fn active_ms_merges_overlapping_intervals() {
        let mut tl = Timeline::new();
        for (s, e) in [(0.0, 10.0), (5.0, 12.0), (20.0, 25.0)] {
            tl.push(ExecutionEvent {
                label: "t".into(),
                kind: EventKind::Transfer,
                start_ms: s,
                end_ms: e,
                bytes: 1,
            });
        }
        assert!((tl.active_ms(EventKind::Transfer) - 17.0).abs() < 1e-9);
    }

    #[test]
    fn empty_timeline() {
        let tl = Timeline::new();
        assert!(tl.is_empty());
        assert_eq!(tl.makespan_ms(), 0.0);
        assert_eq!(tl.overlap_fraction(), 0.0);
    }
}
