//! The discrete-event execution engine.
//!
//! Modern mobile GPUs (Adreno, Mali) expose independent command queues for
//! compute and for copy/DMA work, which is what lets FlashMem overlap weight
//! streaming with kernel execution. The engine models exactly that: a
//! [`CommandStream`] of allocation, transfer, transform and kernel commands
//! with explicit dependencies is scheduled onto two engine timelines
//! (transfer + compute); memory effects are applied at command completion and
//! recorded in a [`MemoryTracker`].

use std::collections::HashMap;

use flashmem_trace::{TraceKind, TraceLane, TraceRecorder};
use serde::{Deserialize, Serialize};

use crate::bandwidth::{BandwidthModel, MemoryTier};
use crate::device::DeviceSpec;
use crate::energy::{EnergyReport, PowerModel};
use crate::error::{SimError, SimResult};
use crate::kernel::{KernelCostModel, KernelDesc};
use crate::memory::{AllocationId, MemoryTracker};
use crate::trace::{EventKind, ExecutionEvent, MemoryTrace, Timeline};

/// Identifier of a command inside a [`CommandStream`] (its index).
pub type CommandId = usize;

/// Which hardware queue a command executes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueueKind {
    /// The DMA / copy engine queue.
    Transfer,
    /// The compute (SM) queue.
    Compute,
    /// Host-side bookkeeping; executes instantaneously once dependencies are
    /// met (allocations, frees, barriers).
    Host,
}

/// One operation in a command stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CommandKind {
    /// Reserve `bytes` in `tier` under `label`.
    Alloc {
        /// Memory tier to allocate in.
        tier: MemoryTier,
        /// Bytes to reserve.
        bytes: u64,
    },
    /// Release the allocation made by a previous `Alloc` command.
    Free {
        /// The id of the `Alloc` command whose allocation should be released.
        alloc: CommandId,
    },
    /// Move `bytes` from one tier to another on the transfer queue.
    Transfer {
        /// Bytes to move.
        bytes: u64,
        /// Source tier.
        from: MemoryTier,
        /// Destination tier.
        to: MemoryTier,
    },
    /// Layout-transform `bytes` (unified → 2.5D texture repack). The traffic
    /// factor expresses how many times the data is traversed (see
    /// [`WeightLayout::transform_traffic_factor`](crate::texture::WeightLayout)).
    Transform {
        /// Logical bytes being transformed.
        bytes: u64,
        /// Data traversals required by the transformation.
        traffic_factor: f64,
        /// Which queue performs the transformation. Preloading frameworks run
        /// dedicated transform kernels on the compute queue; FlashMem folds the
        /// work into the consuming kernels.
        queue: QueueKind,
    },
    /// Execute a compute kernel, optionally streaming `extra_load_bytes` of
    /// weight data concurrently (pipelined loading).
    Kernel {
        /// The kernel to execute.
        desc: KernelDesc,
        /// Bytes of weight data streamed during the kernel.
        extra_load_bytes: u64,
    },
    /// A pure synchronisation point (no cost, host queue).
    Barrier,
}

/// A command plus its scheduling metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Command {
    /// Human readable label used in the timeline.
    pub label: String,
    /// The operation.
    pub kind: CommandKind,
    /// Commands that must complete before this one starts.
    pub deps: Vec<CommandId>,
}

impl Command {
    /// Convenience constructor for an allocation command.
    pub fn alloc(label: &str, tier: MemoryTier, bytes: u64, deps: &[CommandId]) -> Self {
        Command {
            label: label.to_string(),
            kind: CommandKind::Alloc { tier, bytes },
            deps: deps.to_vec(),
        }
    }

    /// Convenience constructor for a free command.
    pub fn free(label: &str, alloc: CommandId, deps: &[CommandId]) -> Self {
        Command {
            label: label.to_string(),
            kind: CommandKind::Free { alloc },
            deps: deps.to_vec(),
        }
    }

    /// Convenience constructor for a transfer command.
    pub fn transfer(
        label: &str,
        bytes: u64,
        from: MemoryTier,
        to: MemoryTier,
        deps: &[CommandId],
    ) -> Self {
        Command {
            label: label.to_string(),
            kind: CommandKind::Transfer { bytes, from, to },
            deps: deps.to_vec(),
        }
    }

    /// Convenience constructor for a layout transformation command.
    pub fn transform(
        label: &str,
        bytes: u64,
        traffic_factor: f64,
        queue: QueueKind,
        deps: &[CommandId],
    ) -> Self {
        Command {
            label: label.to_string(),
            kind: CommandKind::Transform {
                bytes,
                traffic_factor,
                queue,
            },
            deps: deps.to_vec(),
        }
    }

    /// Convenience constructor for a kernel command.
    pub fn kernel(
        label: &str,
        desc: KernelDesc,
        extra_load_bytes: u64,
        deps: &[CommandId],
    ) -> Self {
        Command {
            label: label.to_string(),
            kind: CommandKind::Kernel {
                desc,
                extra_load_bytes,
            },
            deps: deps.to_vec(),
        }
    }

    /// Convenience constructor for a barrier.
    pub fn barrier(label: &str, deps: &[CommandId]) -> Self {
        Command {
            label: label.to_string(),
            kind: CommandKind::Barrier,
            deps: deps.to_vec(),
        }
    }

    /// The queue this command runs on.
    pub fn queue(&self) -> QueueKind {
        match &self.kind {
            CommandKind::Alloc { .. } | CommandKind::Free { .. } | CommandKind::Barrier => {
                QueueKind::Host
            }
            CommandKind::Transfer { .. } => QueueKind::Transfer,
            CommandKind::Transform { queue, .. } => *queue,
            CommandKind::Kernel { .. } => QueueKind::Compute,
        }
    }
}

/// An ordered list of commands forming one execution.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CommandStream {
    commands: Vec<Command>,
}

impl CommandStream {
    /// Create an empty stream.
    pub fn new() -> Self {
        CommandStream::default()
    }

    /// Append a command, returning its id for use in later dependencies.
    pub fn push(&mut self, command: Command) -> CommandId {
        self.commands.push(command);
        self.commands.len() - 1
    }

    /// The commands in issue order.
    pub fn commands(&self) -> &[Command] {
        &self.commands
    }

    /// Number of commands.
    pub fn len(&self) -> usize {
        self.commands.len()
    }

    /// True if the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }

    /// Validate dependency references (existence and acyclicity under the
    /// "dependencies must precede the command" rule).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownDependency`] or [`SimError::DependencyCycle`].
    pub fn validate(&self) -> SimResult<()> {
        for (idx, cmd) in self.commands.iter().enumerate() {
            for &dep in &cmd.deps {
                if dep >= self.commands.len() {
                    return Err(SimError::UnknownDependency {
                        command: idx,
                        dependency: dep,
                    });
                }
                if dep >= idx {
                    // Forward or self dependencies cannot be satisfied by the
                    // in-order queues and indicate a cycle in the producer.
                    return Err(SimError::DependencyCycle { command: idx });
                }
            }
        }
        Ok(())
    }
}

/// Simulator configuration knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Record a memory usage trace (needed for Figure 6-style plots; small
    /// overhead, on by default).
    pub record_trace: bool,
    /// Charge the per-transfer DMA setup cost (on by default).
    pub charge_transfer_setup: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            record_trace: true,
            charge_transfer_setup: true,
        }
    }
}

/// The result of executing a command stream.
#[derive(Debug, Clone)]
pub struct ExecutionOutcome {
    /// Total simulated wall-clock time (makespan) in milliseconds.
    pub total_time_ms: f64,
    /// Wall-clock time spent before the first kernel became ready to run —
    /// the "initialization" phase reported separately by preloading
    /// frameworks in Table 7.
    pub init_time_ms: f64,
    /// Makespan minus initialization: the execution phase.
    pub exec_time_ms: f64,
    /// Peak total memory footprint in bytes.
    pub peak_memory_bytes: u64,
    /// Time-weighted average memory footprint in bytes.
    pub average_memory_bytes: f64,
    /// Per-event timeline.
    pub timeline: Timeline,
    /// Memory usage trace over time.
    pub memory_trace: MemoryTrace,
    /// Power/energy summary.
    pub energy: EnergyReport,
}

impl ExecutionOutcome {
    /// Peak memory in MiB.
    pub fn peak_memory_mib(&self) -> f64 {
        self.peak_memory_bytes as f64 / crate::MIB
    }

    /// Average memory in MiB.
    pub fn average_memory_mib(&self) -> f64 {
        self.average_memory_bytes / crate::MIB
    }
}

/// Availability clocks for a device's hardware queues, shared by every
/// command stream being stepped onto that device.
///
/// The monolithic [`GpuSimulator::execute`] keeps these clocks internally;
/// multi-tenant serving steps *several* [`StreamStepper`]s against one shared
/// `QueueClocks`, which is exactly how concurrent inferences contend for the
/// GPU's transfer and compute queues.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueueClocks {
    transfer_free_ms: f64,
    compute_free_ms: f64,
}

impl QueueClocks {
    /// Clocks with both queues free at time zero.
    pub fn new() -> Self {
        QueueClocks::default()
    }

    /// Earliest time the given queue can accept new work. The host queue is
    /// always free (bookkeeping commands are instantaneous).
    pub fn ready_ms(&self, queue: QueueKind) -> f64 {
        match queue {
            QueueKind::Transfer => self.transfer_free_ms,
            QueueKind::Compute => self.compute_free_ms,
            QueueKind::Host => 0.0,
        }
    }

    /// Mark `queue` busy until `until_ms`. No-op for the host queue.
    pub fn occupy(&mut self, queue: QueueKind, until_ms: f64) {
        match queue {
            QueueKind::Transfer => self.transfer_free_ms = until_ms,
            QueueKind::Compute => self.compute_free_ms = until_ms,
            QueueKind::Host => {}
        }
    }

    /// Latest busy-until time across both queues.
    pub fn horizon_ms(&self) -> f64 {
        self.transfer_free_ms.max(self.compute_free_ms)
    }

    /// Reset both queues to free-at-zero (used when a device goes idle and
    /// its timeline is re-based onto a new epoch).
    pub fn reset(&mut self) {
        *self = QueueClocks::default();
    }
}

/// The scheduling record of one executed command.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepEvent {
    /// Index of the command inside its stream.
    pub command: CommandId,
    /// Queue the command ran on.
    pub queue: QueueKind,
    /// Start time in (stream-local) milliseconds.
    pub start_ms: f64,
    /// End time in (stream-local) milliseconds.
    pub end_ms: f64,
}

impl StepEvent {
    /// Duration of the command in milliseconds.
    pub fn duration_ms(&self) -> f64 {
        (self.end_ms - self.start_ms).max(0.0)
    }
}

/// Incremental, one-command-at-a-time execution of a [`CommandStream`].
///
/// This is the queue-stepping hook behind `flashmem-serve`: where
/// [`GpuSimulator::execute_with_tracker`] drains a whole stream in one call,
/// a stepper advances a *single* command per [`step`](Self::step) against
/// caller-owned [`QueueClocks`], so an event loop can interleave many
/// in-flight inferences onto one device's transfer/compute queues at
/// per-command granularity. The monolithic executor is itself implemented on
/// top of the stepper, so stepping a stream to completion against fresh
/// clocks is *bit-for-bit* identical to `execute_with_tracker`.
#[derive(Debug, Clone)]
pub struct StreamStepper {
    stream: CommandStream,
    next: usize,
    finish: Vec<f64>,
    allocs: HashMap<CommandId, (MemoryTier, AllocationId)>,
    timeline: Timeline,
    first_kernel_start: Option<f64>,
    floor_ms: f64,
}

impl StreamStepper {
    /// Wrap a validated stream for stepping.
    ///
    /// # Errors
    ///
    /// Propagates [`CommandStream::validate`] errors.
    pub fn new(stream: CommandStream) -> SimResult<Self> {
        stream.validate()?;
        let len = stream.len();
        Ok(StreamStepper {
            stream,
            next: 0,
            finish: vec![0.0; len],
            allocs: HashMap::new(),
            timeline: Timeline::new(),
            first_kernel_start: None,
            floor_ms: 0.0,
        })
    }

    /// Forbid any command of this stream from starting before `floor_ms`
    /// (stream-local time). Serving uses this so a request admitted onto a
    /// partially idle queue cannot execute before its own arrival.
    pub fn with_floor_ms(mut self, floor_ms: f64) -> Self {
        self.floor_ms = floor_ms.max(0.0);
        self
    }

    /// The stream being stepped.
    pub fn stream(&self) -> &CommandStream {
        &self.stream
    }

    /// True once every command has executed.
    pub fn is_done(&self) -> bool {
        self.next >= self.stream.len()
    }

    /// Number of commands not yet executed.
    pub fn remaining(&self) -> usize {
        self.stream.len() - self.next
    }

    /// Queue of the next pending command.
    pub fn peek_queue(&self) -> Option<QueueKind> {
        self.stream.commands().get(self.next).map(Command::queue)
    }

    /// Earliest (stream-local) start time of the next pending command under
    /// the given queue clocks, or `None` when the stream is done.
    pub fn peek_start_ms(&self, clocks: &QueueClocks) -> Option<f64> {
        let cmd = self.stream.commands().get(self.next)?;
        let deps_ready = cmd
            .deps
            .iter()
            .map(|&d| self.finish[d])
            .fold(0.0_f64, f64::max);
        Some(
            deps_ready
                .max(clocks.ready_ms(cmd.queue()))
                .max(self.floor_ms),
        )
    }

    /// Execute the next command against `clocks` and `tracker`, returning its
    /// scheduling record (or `None` when the stream is already done). Memory
    /// effects are recorded at `time_base_ms + start` so several steppers can
    /// share one tracker whose clock runs ahead of their stream-local time.
    ///
    /// # Errors
    ///
    /// Propagates tracker errors — most importantly out-of-memory.
    pub fn step(
        &mut self,
        sim: &GpuSimulator,
        clocks: &mut QueueClocks,
        tracker: &mut MemoryTracker,
        time_base_ms: f64,
    ) -> SimResult<Option<StepEvent>> {
        let idx = self.next;
        let Some(cmd) = self.stream.commands().get(idx) else {
            return Ok(None);
        };
        let deps_ready = cmd
            .deps
            .iter()
            .map(|&d| self.finish[d])
            .fold(0.0_f64, f64::max);
        let queue = cmd.queue();
        let start = deps_ready.max(clocks.ready_ms(queue)).max(self.floor_ms);

        let (duration, bytes, event_kind) = match &cmd.kind {
            CommandKind::Alloc { tier, bytes } => {
                let id = tracker.allocate(*tier, *bytes, &cmd.label, time_base_ms + start)?;
                self.allocs.insert(idx, (*tier, id));
                (0.0, *bytes, None)
            }
            CommandKind::Free { alloc } => {
                let (tier, id) = self
                    .allocs
                    .remove(alloc)
                    .ok_or(SimError::UnknownDependency {
                        command: idx,
                        dependency: *alloc,
                    })?;
                tracker.free(tier, id, time_base_ms + start)?;
                (0.0, 0, None)
            }
            CommandKind::Barrier => (0.0, 0, None),
            CommandKind::Transfer { bytes, from, to } => {
                let mut t = sim.bandwidth.transfer_time_ms(*bytes, *from, *to)?;
                if !sim.config.charge_transfer_setup {
                    t = (t - sim.bandwidth.transfer_setup_ms).max(0.0);
                }
                (t, *bytes, Some(EventKind::Transfer))
            }
            CommandKind::Transform {
                bytes,
                traffic_factor,
                ..
            } => {
                let traffic = (*bytes as f64 * traffic_factor.max(0.0)) as u64;
                let t = if traffic == 0 {
                    0.0
                } else {
                    sim.bandwidth.transfer_time_ms(
                        traffic,
                        MemoryTier::UnifiedMemory,
                        MemoryTier::TextureMemory,
                    )?
                };
                (t, *bytes, Some(EventKind::Transform))
            }
            CommandKind::Kernel {
                desc,
                extra_load_bytes,
            } => {
                let t = sim.cost.latency_with_extra_load_ms(desc, *extra_load_bytes);
                if self.first_kernel_start.is_none() {
                    self.first_kernel_start = Some(start);
                }
                (
                    t,
                    desc.total_bytes() + extra_load_bytes,
                    Some(EventKind::Kernel),
                )
            }
        };

        let end = start + duration;
        self.finish[idx] = end;
        self.next += 1;
        if queue != QueueKind::Host {
            clocks.occupy(queue, end);
        }
        if let Some(kind) = event_kind {
            self.timeline.push(ExecutionEvent {
                label: cmd.label.clone(),
                kind,
                start_ms: start,
                end_ms: end,
                bytes,
            });
        }
        Ok(Some(StepEvent {
            command: idx,
            queue,
            start_ms: start,
            end_ms: end,
        }))
    }

    /// [`step`](Self::step) that additionally records the executed command
    /// as a queue-occupancy span in `trace`, stamped at
    /// `trace_base_ms + start` (the global fleet clock). Host-queue
    /// bookkeeping commands are not traced — they occupy no hardware queue.
    /// A single branch when the recorder is disabled.
    ///
    /// # Errors
    ///
    /// Exactly [`step`](Self::step)'s errors; tracing never fails.
    #[allow(clippy::too_many_arguments)]
    pub fn step_traced(
        &mut self,
        sim: &GpuSimulator,
        clocks: &mut QueueClocks,
        tracker: &mut MemoryTracker,
        time_base_ms: f64,
        trace_base_ms: f64,
        trace: &mut TraceRecorder,
    ) -> SimResult<Option<StepEvent>> {
        let timeline_before = self.timeline.len();
        let event = self.step(sim, clocks, tracker, time_base_ms)?;
        if let Some(ev) = &event {
            if trace.enabled() && ev.queue != QueueKind::Host {
                // Commands that moved data pushed a timeline event carrying
                // their byte count; bookkeeping ones did not.
                let bytes = if self.timeline.len() > timeline_before {
                    self.timeline.events()[timeline_before].bytes
                } else {
                    0
                };
                let lane = match ev.queue {
                    QueueKind::Transfer => TraceLane::TransferQueue,
                    _ => TraceLane::ComputeQueue,
                };
                trace.span_bytes(
                    TraceKind::Command,
                    lane,
                    &self.stream.commands()[ev.command].label,
                    trace_base_ms + ev.start_ms,
                    trace_base_ms + ev.end_ms,
                    bytes,
                );
            }
        }
        Ok(event)
    }

    /// The per-event timeline accumulated so far (stream-local times).
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Stream-local time at which the first kernel started, if any ran yet.
    pub fn first_kernel_start_ms(&self) -> Option<f64> {
        self.first_kernel_start
    }

    /// Stream-local completion time: latest event end or command finish.
    pub fn makespan_ms(&self) -> f64 {
        self.timeline
            .makespan_ms()
            .max(self.finish.iter().copied().fold(0.0_f64, f64::max))
    }

    /// Free every allocation this stream still holds (model eviction at the
    /// end of a served request), at absolute tracker time `now_ms`.
    ///
    /// # Errors
    ///
    /// Propagates tracker errors on stale handles (a stepper bug, not a
    /// modelled outcome).
    pub fn release_remaining(
        &mut self,
        tracker: &mut MemoryTracker,
        now_ms: f64,
    ) -> SimResult<u64> {
        let mut live: Vec<(CommandId, (MemoryTier, AllocationId))> = self.allocs.drain().collect();
        live.sort_by_key(|(cmd, _)| *cmd);
        let mut freed = 0;
        for (_, (tier, id)) in live {
            freed += tracker.free(tier, id, now_ms)?;
        }
        Ok(freed)
    }

    /// Suspend at the current command boundary, keeping the stream's
    /// allocations resident. `now_ms` is the stream-local suspension time
    /// (recorded for accounting; resuming via [`Suspension::resume`] does not
    /// depend on it). Commands already issued keep their finish times — a
    /// kernel that was dispatched before the suspension still completes.
    pub fn suspend(self, clocks: &QueueClocks, now_ms: f64) -> Suspension {
        Suspension {
            stepper: self,
            clocks: *clocks,
            suspended_at_ms: now_ms,
            evicted: Vec::new(),
        }
    }

    /// Suspend and release every allocation the stream still holds back to
    /// `tracker` (recorded at `time_base_ms + now_ms`, like
    /// [`step`](Self::step)'s memory effects) — what a preempting scheduler
    /// does to free the device for a higher-priority inference. The released
    /// set is remembered inside the [`Suspension`] so
    /// [`Suspension::resume_into`] can re-acquire the identical residency.
    ///
    /// # Errors
    ///
    /// Propagates tracker errors on stale handles (a stepper bug, not a
    /// modelled outcome).
    pub fn suspend_evicting(
        mut self,
        clocks: &QueueClocks,
        tracker: &mut MemoryTracker,
        now_ms: f64,
        time_base_ms: f64,
    ) -> SimResult<Suspension> {
        let mut live: Vec<(CommandId, (MemoryTier, AllocationId))> = self.allocs.drain().collect();
        live.sort_by_key(|(cmd, _)| *cmd);
        let mut evicted = Vec::with_capacity(live.len());
        for (command, (tier, id)) in live {
            let label = match tier {
                MemoryTier::TextureMemory => tracker.texture().get(id),
                _ => tracker.unified().get(id),
            }
            .map(|alloc| alloc.label.clone())
            .unwrap_or_default();
            let bytes = tracker.free(tier, id, time_base_ms + now_ms)?;
            evicted.push(EvictedAllocation {
                command,
                tier,
                bytes,
                label,
            });
        }
        Ok(Suspension {
            stepper: self,
            clocks: *clocks,
            suspended_at_ms: now_ms,
            evicted,
        })
    }

    /// [`suspend_evicting`](Self::suspend_evicting) that additionally
    /// records a preemption instant (tagged with the evicted byte count) on
    /// `lane` in `trace`, stamped at `time_base_ms + now_ms`.
    ///
    /// # Errors
    ///
    /// Exactly [`suspend_evicting`](Self::suspend_evicting)'s errors.
    #[allow(clippy::too_many_arguments)]
    pub fn suspend_evicting_traced(
        self,
        clocks: &QueueClocks,
        tracker: &mut MemoryTracker,
        now_ms: f64,
        time_base_ms: f64,
        trace: &mut TraceRecorder,
        lane: TraceLane,
        label: &str,
    ) -> SimResult<Suspension> {
        let suspension = self.suspend_evicting(clocks, tracker, now_ms, time_base_ms)?;
        if trace.enabled() {
            trace.instant_bytes(
                TraceKind::Preempt,
                lane,
                &format!("preempt {label}"),
                time_base_ms + now_ms,
                suspension.evicted_bytes(),
            );
        }
        Ok(suspension)
    }

    /// Bytes this stream currently holds in the tracker, split as
    /// `(unified, texture)` — what an evicting suspension would release.
    pub fn resident_split(&self, tracker: &MemoryTracker) -> (u64, u64) {
        let mut unified = 0;
        let mut texture = 0;
        for (tier, id) in self.allocs.values() {
            match tier {
                MemoryTier::TextureMemory => {
                    texture += tracker.texture().get(*id).map_or(0, |a| a.bytes);
                }
                _ => {
                    unified += tracker.unified().get(*id).map_or(0, |a| a.bytes);
                }
            }
        }
        (unified, texture)
    }

    /// Finalize a fully stepped stream into the same [`ExecutionOutcome`]
    /// the monolithic executor produces: samples the tracker at the makespan
    /// and summarises timeline, memory and energy.
    pub fn finish(self, sim: &GpuSimulator, tracker: &mut MemoryTracker) -> ExecutionOutcome {
        let total = self.makespan_ms();
        tracker.sample(total);
        let init = self.first_kernel_start.unwrap_or(total);
        let energy = sim.power.report(&self.timeline);
        ExecutionOutcome {
            total_time_ms: total,
            init_time_ms: init,
            exec_time_ms: (total - init).max(0.0),
            peak_memory_bytes: tracker.peak_bytes(),
            average_memory_bytes: tracker.average_bytes(),
            timeline: self.timeline,
            memory_trace: if sim.config.record_trace {
                tracker.trace().clone()
            } else {
                MemoryTrace::new()
            },
            energy,
        }
    }
}

/// What resuming a preempted stream costs.
///
/// When the serving layer suspends an inference to make room for a
/// higher-priority one, the suspended stream's resident weights are usually
/// evicted (see [`StreamStepper::suspend_evicting`]). Getting them resident
/// again is not free on real hardware: unified-memory pages must be re-read
/// from disk and texture-backed weights re-packed into the 2.5D layout. This
/// knob controls how much of that work is charged when the stream resumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreemptionCost {
    /// Fixed per-resume overhead in milliseconds (command-buffer rebuild,
    /// context re-setup). Negative values are treated as zero.
    pub fixed_ms: f64,
    /// Charge re-loading the evicted bytes: disk → unified memory for
    /// everything, plus a unified → texture repack for the texture-resident
    /// part. When `false`, eviction is modelled as free to undo (the
    /// optimistic lower bound).
    pub reload_evicted: bool,
}

impl PreemptionCost {
    /// Resuming is free: no fixed overhead, no re-residency traffic.
    pub fn free() -> Self {
        PreemptionCost {
            fixed_ms: 0.0,
            reload_evicted: false,
        }
    }

    /// Charge full re-residency of the evicted bytes (the realistic default).
    pub fn reload() -> Self {
        PreemptionCost {
            fixed_ms: 0.0,
            reload_evicted: true,
        }
    }

    /// Add a fixed per-resume overhead (builder style).
    pub fn with_fixed_ms(mut self, fixed_ms: f64) -> Self {
        self.fixed_ms = fixed_ms;
        self
    }

    /// Milliseconds charged for resuming a stream that had
    /// `unified_bytes` + `texture_bytes` resident when it was suspended.
    ///
    /// # Errors
    ///
    /// Propagates bandwidth-model errors (none for the tiers used here).
    pub fn penalty_ms(
        &self,
        sim: &GpuSimulator,
        unified_bytes: u64,
        texture_bytes: u64,
    ) -> SimResult<f64> {
        let mut penalty = self.fixed_ms.max(0.0);
        if self.reload_evicted {
            let reload = unified_bytes + texture_bytes;
            if reload > 0 {
                penalty += sim.bandwidth.transfer_time_ms(
                    reload,
                    MemoryTier::Disk,
                    MemoryTier::UnifiedMemory,
                )?;
            }
            if texture_bytes > 0 {
                penalty += sim.bandwidth.transfer_time_ms(
                    texture_bytes,
                    MemoryTier::UnifiedMemory,
                    MemoryTier::TextureMemory,
                )?;
            }
        }
        Ok(penalty)
    }
}

/// One allocation released by an evicting suspension, remembered so the
/// resume path can re-acquire the identical residency.
#[derive(Debug, Clone, PartialEq)]
struct EvictedAllocation {
    command: CommandId,
    tier: MemoryTier,
    bytes: u64,
    label: String,
}

/// A checkpoint of a partially executed [`CommandStream`].
///
/// A [`StreamStepper`] advances one command per [`step`](StreamStepper::step),
/// so every boundary between commands is a natural yield point. `Suspension`
/// freezes the stepper there — queue clocks, per-command finish times (the
/// in-flight transfers/kernels that were already issued), the accumulated
/// timeline, and the resident-memory state — so the stream can be set aside
/// and deterministically resumed later.
///
/// Two flavours:
///
/// * [`StreamStepper::suspend`] keeps the stream's allocations resident.
///   Resuming via [`Suspension::resume`] restores the captured clocks and is
///   *bit-for-bit* identical to never having suspended at all (the oracle in
///   `crates/serve/tests/preemption.rs` proves this on full
///   `ExecutionReport`s).
/// * [`StreamStepper::suspend_evicting`] additionally releases every live
///   allocation back to the tracker (what a preempting scheduler does to free
///   the device). Resuming via [`Suspension::resume_into`] re-acquires the
///   identical residency and charges a configurable [`PreemptionCost`].
#[derive(Debug, Clone)]
pub struct Suspension {
    stepper: StreamStepper,
    clocks: QueueClocks,
    suspended_at_ms: f64,
    evicted: Vec<EvictedAllocation>,
}

impl Suspension {
    /// The queue clocks captured at suspension time.
    pub fn clocks(&self) -> QueueClocks {
        self.clocks
    }

    /// Stream-local time at which the stream was suspended.
    pub fn suspended_at_ms(&self) -> f64 {
        self.suspended_at_ms
    }

    /// Number of commands that had not yet executed when suspended.
    pub fn remaining(&self) -> usize {
        self.stepper.remaining()
    }

    /// Bytes released by an evicting suspension, split as
    /// `(unified, texture)`. Both zero for a memory-resident suspension.
    pub fn evicted_split(&self) -> (u64, u64) {
        let mut unified = 0;
        let mut texture = 0;
        for alloc in &self.evicted {
            match alloc.tier {
                MemoryTier::TextureMemory => texture += alloc.bytes,
                _ => unified += alloc.bytes,
            }
        }
        (unified, texture)
    }

    /// Total bytes released by an evicting suspension.
    pub fn evicted_bytes(&self) -> u64 {
        let (u, t) = self.evicted_split();
        u + t
    }

    /// True when `tracker` currently has room to re-acquire the evicted
    /// residency — the admission check a scheduler performs before calling
    /// [`resume_into`](Self::resume_into).
    pub fn can_resume(&self, tracker: &MemoryTracker) -> bool {
        let (unified, texture) = self.evicted_split();
        unified <= tracker.unified().available()
            && texture <= tracker.texture().available()
            && unified + texture <= tracker.budget().saturating_sub(tracker.total_in_use())
    }

    /// Undo the suspension exactly: the stepper and the captured queue clocks
    /// come back untouched, so stepping onward is bit-for-bit identical to an
    /// uninterrupted run. Only valid for memory-resident suspensions; an
    /// evicted one must go through [`resume_into`](Self::resume_into).
    pub fn resume(self) -> (StreamStepper, QueueClocks) {
        (self.stepper, self.clocks)
    }

    /// Resume onto live scheduler state: re-acquire any evicted residency
    /// from `tracker` (recorded at `time_base_ms + resume_at_ms`, like
    /// [`StreamStepper::step`]'s memory effects) and forbid the stream from
    /// issuing commands before `resume_at_ms` plus the re-residency penalty
    /// charged by `cost`. Returns the resumed stepper and the penalty in
    /// milliseconds.
    ///
    /// The caller supplies the clocks to step against (usually the shared,
    /// since-advanced ones — the snapshot's clocks are for
    /// [`resume`](Self::resume)).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`] when the evicted residency no longer
    /// fits; the tracker is left unchanged in that case (all partial
    /// re-allocations are rolled back), so the suspension can be retried
    /// later — check [`can_resume`](Self::can_resume) first to avoid the
    /// round-trip.
    pub fn resume_into(
        self,
        sim: &GpuSimulator,
        tracker: &mut MemoryTracker,
        resume_at_ms: f64,
        time_base_ms: f64,
        cost: &PreemptionCost,
    ) -> SimResult<(StreamStepper, f64)> {
        let (unified, texture) = self.evicted_split();
        let mut stepper = self.stepper;
        let penalty = cost.penalty_ms(sim, unified, texture)?;
        let now = time_base_ms + resume_at_ms;
        let mut acquired: Vec<(MemoryTier, AllocationId)> = Vec::new();
        for alloc in &self.evicted {
            match tracker.allocate(alloc.tier, alloc.bytes, &alloc.label, now) {
                Ok(id) => {
                    stepper.allocs.insert(alloc.command, (alloc.tier, id));
                    acquired.push((alloc.tier, id));
                }
                Err(error) => {
                    for (tier, id) in acquired {
                        tracker.free(tier, id, now)?;
                    }
                    return Err(error);
                }
            }
        }
        stepper.floor_ms = stepper
            .floor_ms
            .max(self.suspended_at_ms)
            .max(resume_at_ms + penalty);
        Ok((stepper, penalty))
    }

    /// [`resume_into`](Self::resume_into) that additionally records the
    /// resume (and its reload penalty, as a span when non-zero) on `lane`
    /// in `trace`, stamped at `time_base_ms + resume_at_ms`.
    ///
    /// # Errors
    ///
    /// Exactly [`resume_into`](Self::resume_into)'s errors; nothing is
    /// recorded on the failure path.
    #[allow(clippy::too_many_arguments)]
    pub fn resume_into_traced(
        self,
        sim: &GpuSimulator,
        tracker: &mut MemoryTracker,
        resume_at_ms: f64,
        time_base_ms: f64,
        cost: &PreemptionCost,
        trace: &mut TraceRecorder,
        lane: TraceLane,
        label: &str,
    ) -> SimResult<(StreamStepper, f64)> {
        let evicted = self.evicted_bytes();
        let (stepper, penalty) =
            self.resume_into(sim, tracker, resume_at_ms, time_base_ms, cost)?;
        if trace.enabled() {
            let start = time_base_ms + resume_at_ms;
            trace.span_bytes(
                TraceKind::Resume,
                lane,
                &format!("resume {label}"),
                start,
                start + penalty,
                evicted,
            );
        }
        Ok((stepper, penalty))
    }
}

/// The discrete-event mobile GPU simulator.
#[derive(Debug, Clone)]
pub struct GpuSimulator {
    device: DeviceSpec,
    config: SimConfig,
    bandwidth: BandwidthModel,
    cost: KernelCostModel,
    power: PowerModel,
}

impl GpuSimulator {
    /// Create a simulator for `device` with `config`.
    pub fn new(device: DeviceSpec, config: SimConfig) -> Self {
        GpuSimulator {
            bandwidth: BandwidthModel::new(device.clone()),
            cost: KernelCostModel::new(device.clone()),
            power: PowerModel::new(device.clone()),
            device,
            config,
        }
    }

    /// The simulated device.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// The kernel cost model (shared with planners that need latency
    /// estimates before execution).
    pub fn cost_model(&self) -> &KernelCostModel {
        &self.cost
    }

    /// The bandwidth model.
    pub fn bandwidth_model(&self) -> &BandwidthModel {
        &self.bandwidth
    }

    /// Execute a command stream with a fresh memory tracker sized for the
    /// device.
    ///
    /// # Errors
    ///
    /// Propagates stream validation errors and out-of-memory conditions.
    pub fn execute(&mut self, stream: &CommandStream) -> SimResult<ExecutionOutcome> {
        let mut tracker = MemoryTracker::for_device(&self.device);
        self.execute_with_tracker(stream, &mut tracker)
    }

    /// Execute a command stream against a caller-provided memory tracker
    /// (used by multi-model scenarios that keep memory across executions).
    ///
    /// # Errors
    ///
    /// * [`SimError::UnknownDependency`] / [`SimError::DependencyCycle`] when
    ///   the stream is malformed.
    /// * [`SimError::OutOfMemory`] when an allocation exceeds the device or
    ///   budget capacity — this is a *modelled* outcome (e.g. GPTN-1.3B on the
    ///   Xiaomi Mi 6), not a simulator bug.
    pub fn execute_with_tracker(
        &mut self,
        stream: &CommandStream,
        tracker: &mut MemoryTracker,
    ) -> SimResult<ExecutionOutcome> {
        let mut stepper = StreamStepper::new(stream.clone())?;
        let mut clocks = QueueClocks::new();
        while !stepper.is_done() {
            stepper.step(self, &mut clocks, tracker, 0.0)?;
        }
        Ok(stepper.finish(self, tracker))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{KernelCategory, LaunchDims};

    fn simulator() -> GpuSimulator {
        GpuSimulator::new(DeviceSpec::oneplus_12(), SimConfig::default())
    }

    fn small_kernel(name: &str) -> KernelDesc {
        KernelDesc::new(name, KernelCategory::Reusable, 1.0e9, 8 << 20, 4 << 20)
            .with_launch(LaunchDims::new([512, 512, 1], [8, 8, 1]))
    }

    #[test]
    fn empty_stream_is_free() {
        let mut sim = simulator();
        let out = sim.execute(&CommandStream::new()).unwrap();
        assert_eq!(out.total_time_ms, 0.0);
        assert_eq!(out.peak_memory_bytes, 0);
    }

    #[test]
    fn sequential_dependencies_serialize() {
        let mut sim = simulator();
        let mut s = CommandStream::new();
        let a = s.push(Command::transfer(
            "load",
            100 << 20,
            MemoryTier::Disk,
            MemoryTier::UnifiedMemory,
            &[],
        ));
        s.push(Command::kernel("k", small_kernel("k"), 0, &[a]));
        let out = sim.execute(&s).unwrap();
        let events = out.timeline.events();
        assert_eq!(events.len(), 2);
        assert!(events[1].start_ms >= events[0].end_ms);
        assert!(out.init_time_ms > 0.0);
    }

    #[test]
    fn independent_queues_overlap() {
        let mut sim = simulator();
        // Transfer and kernel with no dependency: they should overlap.
        let mut s = CommandStream::new();
        s.push(Command::transfer(
            "load_next",
            200 << 20,
            MemoryTier::Disk,
            MemoryTier::UnifiedMemory,
            &[],
        ));
        s.push(Command::kernel("k", small_kernel("k"), 0, &[]));
        let out = sim.execute(&s).unwrap();
        assert!(out.timeline.overlap_fraction() > 0.0);
        // Makespan is shorter than the serial sum.
        let serial: f64 = out.timeline.events().iter().map(|e| e.duration_ms()).sum();
        assert!(out.total_time_ms < serial);
    }

    #[test]
    fn same_queue_commands_serialize_even_without_deps() {
        let mut sim = simulator();
        let mut s = CommandStream::new();
        s.push(Command::transfer(
            "t0",
            50 << 20,
            MemoryTier::Disk,
            MemoryTier::UnifiedMemory,
            &[],
        ));
        s.push(Command::transfer(
            "t1",
            50 << 20,
            MemoryTier::Disk,
            MemoryTier::UnifiedMemory,
            &[],
        ));
        let out = sim.execute(&s).unwrap();
        let e = out.timeline.events();
        assert!(e[1].start_ms >= e[0].end_ms);
    }

    #[test]
    fn allocation_lifecycle_tracked() {
        let mut sim = simulator();
        let mut s = CommandStream::new();
        let a = s.push(Command::alloc(
            "weights",
            MemoryTier::UnifiedMemory,
            100 << 20,
            &[],
        ));
        let t = s.push(Command::transfer(
            "load",
            100 << 20,
            MemoryTier::Disk,
            MemoryTier::UnifiedMemory,
            &[a],
        ));
        let f = s.push(Command::free("weights", a, &[t]));
        // A second, weight-free phase after the release: the average footprint
        // over the whole run must now sit below the peak.
        s.push(Command::transfer(
            "load_next_model",
            100 << 20,
            MemoryTier::Disk,
            MemoryTier::UnifiedMemory,
            &[f],
        ));
        let out = sim.execute(&s).unwrap();
        assert_eq!(out.peak_memory_bytes, 100 << 20);
        assert!(out.average_memory_bytes < out.peak_memory_bytes as f64);
    }

    #[test]
    fn oom_is_reported() {
        let device = DeviceSpec::xiaomi_mi_6();
        let mut sim = GpuSimulator::new(device.clone(), SimConfig::default());
        let mut s = CommandStream::new();
        s.push(Command::alloc(
            "huge",
            MemoryTier::UnifiedMemory,
            device.app_budget_bytes + 1,
            &[],
        ));
        assert!(matches!(sim.execute(&s), Err(SimError::OutOfMemory { .. })));
    }

    #[test]
    fn invalid_dependency_rejected() {
        let mut sim = simulator();
        let mut s = CommandStream::new();
        s.push(Command::barrier("b", &[5]));
        assert!(matches!(
            sim.execute(&s),
            Err(SimError::UnknownDependency { .. })
        ));
    }

    #[test]
    fn forward_dependency_is_a_cycle() {
        let mut s = CommandStream::new();
        s.push(Command {
            label: "self".into(),
            kind: CommandKind::Barrier,
            deps: vec![0],
        });
        assert!(matches!(
            s.validate(),
            Err(SimError::DependencyCycle { .. })
        ));
    }

    #[test]
    fn transform_charged_on_requested_queue() {
        let mut sim = simulator();
        let mut s = CommandStream::new();
        s.push(Command::transform(
            "repack",
            64 << 20,
            3.0,
            QueueKind::Compute,
            &[],
        ));
        s.push(Command::kernel("k", small_kernel("k"), 0, &[]));
        let out = sim.execute(&s).unwrap();
        // Both occupy the compute queue, so they serialize.
        let e = out.timeline.events();
        assert!(e[1].start_ms >= e[0].end_ms);
    }

    #[test]
    fn extra_load_bytes_slow_the_kernel_down() {
        let mut sim = simulator();
        let k = small_kernel("k");
        let mut plain = CommandStream::new();
        plain.push(Command::kernel("k", k.clone(), 0, &[]));
        let mut loaded = CommandStream::new();
        loaded.push(Command::kernel("k", k, 64 << 20, &[]));
        let a = sim.execute(&plain).unwrap().total_time_ms;
        let b = sim.execute(&loaded).unwrap().total_time_ms;
        assert!(b > a);
    }

    fn streaming_like_stream() -> CommandStream {
        // Alloc → load → kernel chains with an independent prefetch, shaped
        // like the streaming executor's output.
        let mut s = CommandStream::new();
        let a0 = s.push(Command::alloc(
            "w0.um",
            MemoryTier::UnifiedMemory,
            64 << 20,
            &[],
        ));
        let l0 = s.push(Command::transfer(
            "w0.load",
            64 << 20,
            MemoryTier::Disk,
            MemoryTier::UnifiedMemory,
            &[a0],
        ));
        let k0 = s.push(Command::kernel("k0", small_kernel("k0"), 8 << 20, &[l0]));
        let a1 = s.push(Command::alloc(
            "w1.um",
            MemoryTier::UnifiedMemory,
            32 << 20,
            &[],
        ));
        let l1 = s.push(Command::transfer(
            "w1.load",
            32 << 20,
            MemoryTier::Disk,
            MemoryTier::UnifiedMemory,
            &[a1],
        ));
        let k1 = s.push(Command::kernel("k1", small_kernel("k1"), 0, &[k0, l1]));
        s.push(Command::free("w0.um_free", a0, &[k1]));
        s.push(Command::free("w1.um_free", a1, &[k1]));
        s
    }

    #[test]
    fn stepping_to_completion_matches_monolithic_execution() {
        let stream = streaming_like_stream();
        let mut sim = simulator();
        let expected = sim.execute(&stream).unwrap();

        let sim2 = simulator();
        let mut tracker = MemoryTracker::for_device(sim2.device());
        let mut stepper = StreamStepper::new(stream).unwrap();
        let mut clocks = QueueClocks::new();
        while !stepper.is_done() {
            stepper.step(&sim2, &mut clocks, &mut tracker, 0.0).unwrap();
        }
        let stepped = stepper.finish(&sim2, &mut tracker);

        assert_eq!(stepped.total_time_ms, expected.total_time_ms);
        assert_eq!(stepped.init_time_ms, expected.init_time_ms);
        assert_eq!(stepped.peak_memory_bytes, expected.peak_memory_bytes);
        assert_eq!(stepped.average_memory_bytes, expected.average_memory_bytes);
        assert_eq!(stepped.timeline.events(), expected.timeline.events());
        assert_eq!(
            stepped.memory_trace.samples(),
            expected.memory_trace.samples()
        );
    }

    #[test]
    fn two_steppers_contend_for_shared_queue_clocks() {
        let sim = simulator();
        let mut tracker = MemoryTracker::for_device(sim.device());
        let mut clocks = QueueClocks::new();
        let mut a = StreamStepper::new(streaming_like_stream()).unwrap();
        let mut b = StreamStepper::new(streaming_like_stream()).unwrap();

        // Alternate fairly: always advance the stepper whose next command can
        // start earliest (ties favour `a`), exactly like the serve loop.
        while !a.is_done() || !b.is_done() {
            let sa = a.peek_start_ms(&clocks).unwrap_or(f64::INFINITY);
            let sb = b.peek_start_ms(&clocks).unwrap_or(f64::INFINITY);
            if sa <= sb {
                a.step(&sim, &mut clocks, &mut tracker, 0.0).unwrap();
            } else {
                b.step(&sim, &mut clocks, &mut tracker, 0.0).unwrap();
            }
        }

        // Interleaved makespan must beat running the two streams back to back
        // (the whole point of sharing the dual queues), yet neither stream
        // can finish faster than it would alone.
        let mut solo_sim = simulator();
        let solo = solo_sim.execute(&streaming_like_stream()).unwrap();
        let shared_makespan = a.makespan_ms().max(b.makespan_ms());
        assert!(shared_makespan < 2.0 * solo.total_time_ms);
        assert!(a.makespan_ms() >= solo.total_time_ms - 1e-9);
        assert!(b.makespan_ms() >= solo.total_time_ms - 1e-9);
    }

    #[test]
    fn floor_delays_every_command() {
        let sim = simulator();
        let mut tracker = MemoryTracker::for_device(sim.device());
        let mut clocks = QueueClocks::new();
        let mut s = CommandStream::new();
        s.push(Command::kernel("k", small_kernel("k"), 0, &[]));
        let mut stepper = StreamStepper::new(s).unwrap().with_floor_ms(25.0);
        let ev = stepper
            .step(&sim, &mut clocks, &mut tracker, 0.0)
            .unwrap()
            .unwrap();
        assert_eq!(ev.start_ms, 25.0);
    }

    #[test]
    fn release_remaining_frees_leftover_allocations() {
        let sim = simulator();
        let mut tracker = MemoryTracker::for_device(sim.device());
        let mut clocks = QueueClocks::new();
        let mut s = CommandStream::new();
        s.push(Command::alloc(
            "persistent",
            MemoryTier::TextureMemory,
            10 << 20,
            &[],
        ));
        s.push(Command::kernel("k", small_kernel("k"), 0, &[]));
        let mut stepper = StreamStepper::new(s).unwrap();
        while !stepper.is_done() {
            stepper.step(&sim, &mut clocks, &mut tracker, 0.0).unwrap();
        }
        assert_eq!(tracker.total_in_use(), 10 << 20);
        let freed = stepper.release_remaining(&mut tracker, 50.0).unwrap();
        assert_eq!(freed, 10 << 20);
        assert_eq!(tracker.total_in_use(), 0);
    }

    #[test]
    fn suspend_resume_is_bit_identical_at_every_boundary() {
        let stream = streaming_like_stream();
        let mut sim = simulator();
        let expected = sim.execute(&stream).unwrap();

        for suspend_at in 0..stream.len() {
            let sim = simulator();
            let mut tracker = MemoryTracker::for_device(sim.device());
            let mut stepper = StreamStepper::new(stream.clone()).unwrap();
            let mut clocks = QueueClocks::new();
            for _ in 0..suspend_at {
                stepper.step(&sim, &mut clocks, &mut tracker, 0.0).unwrap();
            }
            let suspension = stepper.suspend(&clocks, clocks.horizon_ms());
            assert_eq!(suspension.remaining(), stream.len() - suspend_at);
            assert_eq!(suspension.evicted_bytes(), 0);
            let (mut stepper, mut clocks) = suspension.resume();
            while !stepper.is_done() {
                stepper.step(&sim, &mut clocks, &mut tracker, 0.0).unwrap();
            }
            let resumed = stepper.finish(&sim, &mut tracker);
            assert_eq!(resumed.total_time_ms, expected.total_time_ms);
            assert_eq!(resumed.init_time_ms, expected.init_time_ms);
            assert_eq!(resumed.peak_memory_bytes, expected.peak_memory_bytes);
            assert_eq!(resumed.average_memory_bytes, expected.average_memory_bytes);
            assert_eq!(resumed.timeline.events(), expected.timeline.events());
            assert_eq!(
                resumed.memory_trace.samples(),
                expected.memory_trace.samples()
            );
        }
    }

    #[test]
    fn evicting_suspension_releases_and_reacquires_residency() {
        let sim = simulator();
        let mut tracker = MemoryTracker::for_device(sim.device());
        let mut clocks = QueueClocks::new();
        let mut stepper = StreamStepper::new(streaming_like_stream()).unwrap();
        // Execute alloc + load (commands 0-1), so 64 MiB is resident.
        stepper.step(&sim, &mut clocks, &mut tracker, 0.0).unwrap();
        stepper.step(&sim, &mut clocks, &mut tracker, 0.0).unwrap();
        assert_eq!(tracker.total_in_use(), 64 << 20);
        let (unified, texture) = stepper.resident_split(&tracker);
        assert_eq!((unified, texture), (64 << 20, 0));

        let now = clocks.horizon_ms();
        let suspension = stepper
            .suspend_evicting(&clocks, &mut tracker, now, 0.0)
            .unwrap();
        assert_eq!(tracker.total_in_use(), 0);
        assert_eq!(suspension.evicted_bytes(), 64 << 20);
        assert!(suspension.can_resume(&tracker));

        let (mut stepper, penalty) = suspension
            .resume_into(
                &sim,
                &mut tracker,
                now + 100.0,
                0.0,
                &PreemptionCost::free(),
            )
            .unwrap();
        assert_eq!(penalty, 0.0);
        assert_eq!(tracker.total_in_use(), 64 << 20);
        // The stream completes; the Free commands find their re-acquired
        // allocations (no lost handles).
        while !stepper.is_done() {
            stepper.step(&sim, &mut clocks, &mut tracker, 0.0).unwrap();
        }
        assert_eq!(tracker.total_in_use(), 0);
    }

    #[test]
    fn resume_penalty_charges_reload_and_delays_the_stream() {
        let sim = simulator();
        let mut tracker = MemoryTracker::for_device(sim.device());
        let mut clocks = QueueClocks::new();
        let mut stepper = StreamStepper::new(streaming_like_stream()).unwrap();
        stepper.step(&sim, &mut clocks, &mut tracker, 0.0).unwrap();
        stepper.step(&sim, &mut clocks, &mut tracker, 0.0).unwrap();
        let now = clocks.horizon_ms();
        let suspension = stepper
            .suspend_evicting(&clocks, &mut tracker, now, 0.0)
            .unwrap();
        let cost = PreemptionCost::reload().with_fixed_ms(2.0);
        let (mut stepper, penalty) = suspension
            .resume_into(&sim, &mut tracker, now, 0.0, &cost)
            .unwrap();
        // 64 MiB back through disk → unified is far from free.
        assert!(penalty > 2.0, "penalty {penalty}");
        let event = stepper
            .step(&sim, &mut clocks, &mut tracker, 0.0)
            .unwrap()
            .unwrap();
        assert!(event.start_ms >= now + penalty - 1e-9);
    }

    #[test]
    fn resume_into_rolls_back_on_oom() {
        let sim = simulator();
        let mut tracker = MemoryTracker::for_device(sim.device());
        let mut clocks = QueueClocks::new();
        let mut stepper = StreamStepper::new(streaming_like_stream()).unwrap();
        stepper.step(&sim, &mut clocks, &mut tracker, 0.0).unwrap();
        let suspension = stepper
            .suspend_evicting(&clocks, &mut tracker, 0.0, 0.0)
            .unwrap();
        // Fill the budget so the 64 MiB re-acquisition cannot fit.
        let hog_bytes = tracker.budget() - (32 << 20);
        let hog = tracker
            .allocate(MemoryTier::UnifiedMemory, hog_bytes, "hog", 0.0)
            .unwrap();
        assert!(!suspension.can_resume(&tracker));
        let err = suspension
            .resume_into(&sim, &mut tracker, 0.0, 0.0, &PreemptionCost::free())
            .unwrap_err();
        assert!(matches!(err, SimError::OutOfMemory { .. }));
        // Rollback: only the hog remains.
        assert_eq!(tracker.total_in_use(), hog_bytes);
        tracker.free(MemoryTier::UnifiedMemory, hog, 0.0).unwrap();
    }

    #[test]
    fn energy_report_produced() {
        let mut sim = simulator();
        let mut s = CommandStream::new();
        s.push(Command::kernel("k", small_kernel("k"), 0, &[]));
        let out = sim.execute(&s).unwrap();
        assert!(out.energy.energy_j > 0.0);
        assert!(out.energy.average_power_w > sim.device().idle_power_w);
    }
}
