//! The discrete-event execution engine.
//!
//! Modern mobile GPUs (Adreno, Mali) expose independent command queues for
//! compute and for copy/DMA work, which is what lets FlashMem overlap weight
//! streaming with kernel execution. The engine models exactly that: a
//! [`CommandStream`] of allocation, transfer, transform and kernel commands
//! with explicit dependencies is scheduled onto two engine timelines
//! (transfer + compute); memory effects are applied at command completion and
//! recorded in a [`MemoryTracker`].

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::bandwidth::{BandwidthModel, MemoryTier};
use crate::device::DeviceSpec;
use crate::energy::{EnergyReport, PowerModel};
use crate::error::{SimError, SimResult};
use crate::kernel::{KernelCostModel, KernelDesc};
use crate::memory::{AllocationId, MemoryTracker};
use crate::trace::{EventKind, ExecutionEvent, MemoryTrace, Timeline};

/// Identifier of a command inside a [`CommandStream`] (its index).
pub type CommandId = usize;

/// Which hardware queue a command executes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueueKind {
    /// The DMA / copy engine queue.
    Transfer,
    /// The compute (SM) queue.
    Compute,
    /// Host-side bookkeeping; executes instantaneously once dependencies are
    /// met (allocations, frees, barriers).
    Host,
}

/// One operation in a command stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CommandKind {
    /// Reserve `bytes` in `tier` under `label`.
    Alloc {
        /// Memory tier to allocate in.
        tier: MemoryTier,
        /// Bytes to reserve.
        bytes: u64,
    },
    /// Release the allocation made by a previous `Alloc` command.
    Free {
        /// The id of the `Alloc` command whose allocation should be released.
        alloc: CommandId,
    },
    /// Move `bytes` from one tier to another on the transfer queue.
    Transfer {
        /// Bytes to move.
        bytes: u64,
        /// Source tier.
        from: MemoryTier,
        /// Destination tier.
        to: MemoryTier,
    },
    /// Layout-transform `bytes` (unified → 2.5D texture repack). The traffic
    /// factor expresses how many times the data is traversed (see
    /// [`WeightLayout::transform_traffic_factor`](crate::texture::WeightLayout)).
    Transform {
        /// Logical bytes being transformed.
        bytes: u64,
        /// Data traversals required by the transformation.
        traffic_factor: f64,
        /// Which queue performs the transformation. Preloading frameworks run
        /// dedicated transform kernels on the compute queue; FlashMem folds the
        /// work into the consuming kernels.
        queue: QueueKind,
    },
    /// Execute a compute kernel, optionally streaming `extra_load_bytes` of
    /// weight data concurrently (pipelined loading).
    Kernel {
        /// The kernel to execute.
        desc: KernelDesc,
        /// Bytes of weight data streamed during the kernel.
        extra_load_bytes: u64,
    },
    /// A pure synchronisation point (no cost, host queue).
    Barrier,
}

/// A command plus its scheduling metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Command {
    /// Human readable label used in the timeline.
    pub label: String,
    /// The operation.
    pub kind: CommandKind,
    /// Commands that must complete before this one starts.
    pub deps: Vec<CommandId>,
}

impl Command {
    /// Convenience constructor for an allocation command.
    pub fn alloc(label: &str, tier: MemoryTier, bytes: u64, deps: &[CommandId]) -> Self {
        Command {
            label: label.to_string(),
            kind: CommandKind::Alloc { tier, bytes },
            deps: deps.to_vec(),
        }
    }

    /// Convenience constructor for a free command.
    pub fn free(label: &str, alloc: CommandId, deps: &[CommandId]) -> Self {
        Command {
            label: label.to_string(),
            kind: CommandKind::Free { alloc },
            deps: deps.to_vec(),
        }
    }

    /// Convenience constructor for a transfer command.
    pub fn transfer(
        label: &str,
        bytes: u64,
        from: MemoryTier,
        to: MemoryTier,
        deps: &[CommandId],
    ) -> Self {
        Command {
            label: label.to_string(),
            kind: CommandKind::Transfer { bytes, from, to },
            deps: deps.to_vec(),
        }
    }

    /// Convenience constructor for a layout transformation command.
    pub fn transform(
        label: &str,
        bytes: u64,
        traffic_factor: f64,
        queue: QueueKind,
        deps: &[CommandId],
    ) -> Self {
        Command {
            label: label.to_string(),
            kind: CommandKind::Transform {
                bytes,
                traffic_factor,
                queue,
            },
            deps: deps.to_vec(),
        }
    }

    /// Convenience constructor for a kernel command.
    pub fn kernel(
        label: &str,
        desc: KernelDesc,
        extra_load_bytes: u64,
        deps: &[CommandId],
    ) -> Self {
        Command {
            label: label.to_string(),
            kind: CommandKind::Kernel {
                desc,
                extra_load_bytes,
            },
            deps: deps.to_vec(),
        }
    }

    /// Convenience constructor for a barrier.
    pub fn barrier(label: &str, deps: &[CommandId]) -> Self {
        Command {
            label: label.to_string(),
            kind: CommandKind::Barrier,
            deps: deps.to_vec(),
        }
    }

    /// The queue this command runs on.
    pub fn queue(&self) -> QueueKind {
        match &self.kind {
            CommandKind::Alloc { .. } | CommandKind::Free { .. } | CommandKind::Barrier => {
                QueueKind::Host
            }
            CommandKind::Transfer { .. } => QueueKind::Transfer,
            CommandKind::Transform { queue, .. } => *queue,
            CommandKind::Kernel { .. } => QueueKind::Compute,
        }
    }
}

/// An ordered list of commands forming one execution.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CommandStream {
    commands: Vec<Command>,
}

impl CommandStream {
    /// Create an empty stream.
    pub fn new() -> Self {
        CommandStream::default()
    }

    /// Append a command, returning its id for use in later dependencies.
    pub fn push(&mut self, command: Command) -> CommandId {
        self.commands.push(command);
        self.commands.len() - 1
    }

    /// The commands in issue order.
    pub fn commands(&self) -> &[Command] {
        &self.commands
    }

    /// Number of commands.
    pub fn len(&self) -> usize {
        self.commands.len()
    }

    /// True if the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }

    /// Validate dependency references (existence and acyclicity under the
    /// "dependencies must precede the command" rule).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownDependency`] or [`SimError::DependencyCycle`].
    pub fn validate(&self) -> SimResult<()> {
        for (idx, cmd) in self.commands.iter().enumerate() {
            for &dep in &cmd.deps {
                if dep >= self.commands.len() {
                    return Err(SimError::UnknownDependency {
                        command: idx,
                        dependency: dep,
                    });
                }
                if dep >= idx {
                    // Forward or self dependencies cannot be satisfied by the
                    // in-order queues and indicate a cycle in the producer.
                    return Err(SimError::DependencyCycle { command: idx });
                }
            }
        }
        Ok(())
    }
}

/// Simulator configuration knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Record a memory usage trace (needed for Figure 6-style plots; small
    /// overhead, on by default).
    pub record_trace: bool,
    /// Charge the per-transfer DMA setup cost (on by default).
    pub charge_transfer_setup: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            record_trace: true,
            charge_transfer_setup: true,
        }
    }
}

/// The result of executing a command stream.
#[derive(Debug, Clone)]
pub struct ExecutionOutcome {
    /// Total simulated wall-clock time (makespan) in milliseconds.
    pub total_time_ms: f64,
    /// Wall-clock time spent before the first kernel became ready to run —
    /// the "initialization" phase reported separately by preloading
    /// frameworks in Table 7.
    pub init_time_ms: f64,
    /// Makespan minus initialization: the execution phase.
    pub exec_time_ms: f64,
    /// Peak total memory footprint in bytes.
    pub peak_memory_bytes: u64,
    /// Time-weighted average memory footprint in bytes.
    pub average_memory_bytes: f64,
    /// Per-event timeline.
    pub timeline: Timeline,
    /// Memory usage trace over time.
    pub memory_trace: MemoryTrace,
    /// Power/energy summary.
    pub energy: EnergyReport,
}

impl ExecutionOutcome {
    /// Peak memory in MiB.
    pub fn peak_memory_mib(&self) -> f64 {
        self.peak_memory_bytes as f64 / crate::MIB
    }

    /// Average memory in MiB.
    pub fn average_memory_mib(&self) -> f64 {
        self.average_memory_bytes / crate::MIB
    }
}

/// The discrete-event mobile GPU simulator.
#[derive(Debug, Clone)]
pub struct GpuSimulator {
    device: DeviceSpec,
    config: SimConfig,
    bandwidth: BandwidthModel,
    cost: KernelCostModel,
    power: PowerModel,
}

impl GpuSimulator {
    /// Create a simulator for `device` with `config`.
    pub fn new(device: DeviceSpec, config: SimConfig) -> Self {
        GpuSimulator {
            bandwidth: BandwidthModel::new(device.clone()),
            cost: KernelCostModel::new(device.clone()),
            power: PowerModel::new(device.clone()),
            device,
            config,
        }
    }

    /// The simulated device.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// The kernel cost model (shared with planners that need latency
    /// estimates before execution).
    pub fn cost_model(&self) -> &KernelCostModel {
        &self.cost
    }

    /// The bandwidth model.
    pub fn bandwidth_model(&self) -> &BandwidthModel {
        &self.bandwidth
    }

    /// Execute a command stream with a fresh memory tracker sized for the
    /// device.
    ///
    /// # Errors
    ///
    /// Propagates stream validation errors and out-of-memory conditions.
    pub fn execute(&mut self, stream: &CommandStream) -> SimResult<ExecutionOutcome> {
        let mut tracker = MemoryTracker::for_device(&self.device);
        self.execute_with_tracker(stream, &mut tracker)
    }

    /// Execute a command stream against a caller-provided memory tracker
    /// (used by multi-model scenarios that keep memory across executions).
    ///
    /// # Errors
    ///
    /// * [`SimError::UnknownDependency`] / [`SimError::DependencyCycle`] when
    ///   the stream is malformed.
    /// * [`SimError::OutOfMemory`] when an allocation exceeds the device or
    ///   budget capacity — this is a *modelled* outcome (e.g. GPTN-1.3B on the
    ///   Xiaomi Mi 6), not a simulator bug.
    pub fn execute_with_tracker(
        &mut self,
        stream: &CommandStream,
        tracker: &mut MemoryTracker,
    ) -> SimResult<ExecutionOutcome> {
        stream.validate()?;

        let mut finish: Vec<f64> = vec![0.0; stream.len()];
        let mut allocs: HashMap<CommandId, (MemoryTier, AllocationId)> = HashMap::new();
        let mut queue_free: HashMap<QueueKind, f64> = HashMap::new();
        let mut timeline = Timeline::new();
        let mut first_kernel_start: Option<f64> = None;

        let setup = if self.config.charge_transfer_setup {
            self.bandwidth.transfer_setup_ms
        } else {
            0.0
        };

        for (idx, cmd) in stream.commands().iter().enumerate() {
            let deps_ready = cmd.deps.iter().map(|&d| finish[d]).fold(0.0_f64, f64::max);
            let queue = cmd.queue();
            let queue_ready = *queue_free.get(&queue).unwrap_or(&0.0);
            let start = deps_ready.max(queue_ready);

            let (duration, bytes, event_kind) = match &cmd.kind {
                CommandKind::Alloc { tier, bytes } => {
                    let id = tracker.allocate(*tier, *bytes, &cmd.label, start)?;
                    allocs.insert(idx, (*tier, id));
                    (0.0, *bytes, None)
                }
                CommandKind::Free { alloc } => {
                    let (tier, id) = allocs.remove(alloc).ok_or(SimError::UnknownDependency {
                        command: idx,
                        dependency: *alloc,
                    })?;
                    tracker.free(tier, id, start)?;
                    (0.0, 0, None)
                }
                CommandKind::Barrier => (0.0, 0, None),
                CommandKind::Transfer { bytes, from, to } => {
                    let mut t = self.bandwidth.transfer_time_ms(*bytes, *from, *to)?;
                    if !self.config.charge_transfer_setup {
                        t = (t - self.bandwidth.transfer_setup_ms).max(0.0);
                    }
                    let _ = setup;
                    (t, *bytes, Some(EventKind::Transfer))
                }
                CommandKind::Transform {
                    bytes,
                    traffic_factor,
                    ..
                } => {
                    let traffic = (*bytes as f64 * traffic_factor.max(0.0)) as u64;
                    let t = if traffic == 0 {
                        0.0
                    } else {
                        self.bandwidth.transfer_time_ms(
                            traffic,
                            MemoryTier::UnifiedMemory,
                            MemoryTier::TextureMemory,
                        )?
                    };
                    (t, *bytes, Some(EventKind::Transform))
                }
                CommandKind::Kernel {
                    desc,
                    extra_load_bytes,
                } => {
                    let t = self
                        .cost
                        .latency_with_extra_load_ms(desc, *extra_load_bytes);
                    if first_kernel_start.is_none() {
                        first_kernel_start = Some(start);
                    }
                    (
                        t,
                        desc.total_bytes() + extra_load_bytes,
                        Some(EventKind::Kernel),
                    )
                }
            };

            let end = start + duration;
            finish[idx] = end;
            if queue != QueueKind::Host {
                queue_free.insert(queue, end);
            }
            if let Some(kind) = event_kind {
                timeline.push(ExecutionEvent {
                    label: cmd.label.clone(),
                    kind,
                    start_ms: start,
                    end_ms: end,
                    bytes,
                });
            }
        }

        let total = timeline
            .makespan_ms()
            .max(finish.iter().copied().fold(0.0_f64, f64::max));
        tracker.sample(total);

        let init = first_kernel_start.unwrap_or(total);
        let energy = self.power.report(&timeline);
        Ok(ExecutionOutcome {
            total_time_ms: total,
            init_time_ms: init,
            exec_time_ms: (total - init).max(0.0),
            peak_memory_bytes: tracker.peak_bytes(),
            average_memory_bytes: tracker.average_bytes(),
            timeline,
            memory_trace: if self.config.record_trace {
                tracker.trace().clone()
            } else {
                MemoryTrace::new()
            },
            energy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{KernelCategory, LaunchDims};

    fn simulator() -> GpuSimulator {
        GpuSimulator::new(DeviceSpec::oneplus_12(), SimConfig::default())
    }

    fn small_kernel(name: &str) -> KernelDesc {
        KernelDesc::new(name, KernelCategory::Reusable, 1.0e9, 8 << 20, 4 << 20)
            .with_launch(LaunchDims::new([512, 512, 1], [8, 8, 1]))
    }

    #[test]
    fn empty_stream_is_free() {
        let mut sim = simulator();
        let out = sim.execute(&CommandStream::new()).unwrap();
        assert_eq!(out.total_time_ms, 0.0);
        assert_eq!(out.peak_memory_bytes, 0);
    }

    #[test]
    fn sequential_dependencies_serialize() {
        let mut sim = simulator();
        let mut s = CommandStream::new();
        let a = s.push(Command::transfer(
            "load",
            100 << 20,
            MemoryTier::Disk,
            MemoryTier::UnifiedMemory,
            &[],
        ));
        s.push(Command::kernel("k", small_kernel("k"), 0, &[a]));
        let out = sim.execute(&s).unwrap();
        let events = out.timeline.events();
        assert_eq!(events.len(), 2);
        assert!(events[1].start_ms >= events[0].end_ms);
        assert!(out.init_time_ms > 0.0);
    }

    #[test]
    fn independent_queues_overlap() {
        let mut sim = simulator();
        // Transfer and kernel with no dependency: they should overlap.
        let mut s = CommandStream::new();
        s.push(Command::transfer(
            "load_next",
            200 << 20,
            MemoryTier::Disk,
            MemoryTier::UnifiedMemory,
            &[],
        ));
        s.push(Command::kernel("k", small_kernel("k"), 0, &[]));
        let out = sim.execute(&s).unwrap();
        assert!(out.timeline.overlap_fraction() > 0.0);
        // Makespan is shorter than the serial sum.
        let serial: f64 = out.timeline.events().iter().map(|e| e.duration_ms()).sum();
        assert!(out.total_time_ms < serial);
    }

    #[test]
    fn same_queue_commands_serialize_even_without_deps() {
        let mut sim = simulator();
        let mut s = CommandStream::new();
        s.push(Command::transfer(
            "t0",
            50 << 20,
            MemoryTier::Disk,
            MemoryTier::UnifiedMemory,
            &[],
        ));
        s.push(Command::transfer(
            "t1",
            50 << 20,
            MemoryTier::Disk,
            MemoryTier::UnifiedMemory,
            &[],
        ));
        let out = sim.execute(&s).unwrap();
        let e = out.timeline.events();
        assert!(e[1].start_ms >= e[0].end_ms);
    }

    #[test]
    fn allocation_lifecycle_tracked() {
        let mut sim = simulator();
        let mut s = CommandStream::new();
        let a = s.push(Command::alloc(
            "weights",
            MemoryTier::UnifiedMemory,
            100 << 20,
            &[],
        ));
        let t = s.push(Command::transfer(
            "load",
            100 << 20,
            MemoryTier::Disk,
            MemoryTier::UnifiedMemory,
            &[a],
        ));
        let f = s.push(Command::free("weights", a, &[t]));
        // A second, weight-free phase after the release: the average footprint
        // over the whole run must now sit below the peak.
        s.push(Command::transfer(
            "load_next_model",
            100 << 20,
            MemoryTier::Disk,
            MemoryTier::UnifiedMemory,
            &[f],
        ));
        let out = sim.execute(&s).unwrap();
        assert_eq!(out.peak_memory_bytes, 100 << 20);
        assert!(out.average_memory_bytes < out.peak_memory_bytes as f64);
    }

    #[test]
    fn oom_is_reported() {
        let device = DeviceSpec::xiaomi_mi_6();
        let mut sim = GpuSimulator::new(device.clone(), SimConfig::default());
        let mut s = CommandStream::new();
        s.push(Command::alloc(
            "huge",
            MemoryTier::UnifiedMemory,
            device.app_budget_bytes + 1,
            &[],
        ));
        assert!(matches!(sim.execute(&s), Err(SimError::OutOfMemory { .. })));
    }

    #[test]
    fn invalid_dependency_rejected() {
        let mut sim = simulator();
        let mut s = CommandStream::new();
        s.push(Command::barrier("b", &[5]));
        assert!(matches!(
            sim.execute(&s),
            Err(SimError::UnknownDependency { .. })
        ));
    }

    #[test]
    fn forward_dependency_is_a_cycle() {
        let mut s = CommandStream::new();
        s.push(Command {
            label: "self".into(),
            kind: CommandKind::Barrier,
            deps: vec![0],
        });
        assert!(matches!(
            s.validate(),
            Err(SimError::DependencyCycle { .. })
        ));
    }

    #[test]
    fn transform_charged_on_requested_queue() {
        let mut sim = simulator();
        let mut s = CommandStream::new();
        s.push(Command::transform(
            "repack",
            64 << 20,
            3.0,
            QueueKind::Compute,
            &[],
        ));
        s.push(Command::kernel("k", small_kernel("k"), 0, &[]));
        let out = sim.execute(&s).unwrap();
        // Both occupy the compute queue, so they serialize.
        let e = out.timeline.events();
        assert!(e[1].start_ms >= e[0].end_ms);
    }

    #[test]
    fn extra_load_bytes_slow_the_kernel_down() {
        let mut sim = simulator();
        let k = small_kernel("k");
        let mut plain = CommandStream::new();
        plain.push(Command::kernel("k", k.clone(), 0, &[]));
        let mut loaded = CommandStream::new();
        loaded.push(Command::kernel("k", k, 64 << 20, &[]));
        let a = sim.execute(&plain).unwrap().total_time_ms;
        let b = sim.execute(&loaded).unwrap().total_time_ms;
        assert!(b > a);
    }

    #[test]
    fn energy_report_produced() {
        let mut sim = simulator();
        let mut s = CommandStream::new();
        s.push(Command::kernel("k", small_kernel("k"), 0, &[]));
        let out = sim.execute(&s).unwrap();
        assert!(out.energy.energy_j > 0.0);
        assert!(out.energy.average_power_w > sim.device().idle_power_w);
    }
}
