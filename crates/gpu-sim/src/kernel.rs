//! GPU kernel descriptors and the per-kernel latency cost model.
//!
//! A kernel is characterised by its arithmetic work (FLOPs), the bytes it
//! reads and writes, its launch geometry (global/local work sizes, mirroring
//! the GWS/LWS features used by the paper's XGBoost profiler in Figure 4) and
//! a coarse *category* that determines how well it tolerates concurrent data
//! loading (Table 5).

use serde::{Deserialize, Serialize};

use crate::cache::{AccessPattern, TextureCacheModel};
use crate::device::DeviceSpec;
use crate::texture::{Texture2p5dLayout, WeightLayout};

/// Coarse operator category from Table 5 of the paper.
///
/// The category determines memory-bandwidth pressure, load-capacity tolerance
/// and computational intensity, and therefore how much extra weight streaming
/// can be overlapped with the kernel (Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelCategory {
    /// Element-wise operators (ReLU, Add, Mul, ...): memory-bound, simple
    /// arithmetic, tolerate very large concurrent loads (300% threshold).
    Elemental,
    /// Structured-reuse operators (Conv, MatMul): compute-bound with loop
    /// tiling, tolerate moderate concurrent loads (20% threshold).
    Reusable,
    /// Hierarchical operators (Softmax, LayerNorm): multi-pass reductions with
    /// synchronisation, tolerate essentially no concurrent loads (0%).
    Hierarchical,
}

impl KernelCategory {
    /// The fraction of the kernel's own input volume that can be additionally
    /// streamed while staying under a ~20-30% latency penalty — the
    /// "load-capacity tolerance" of Table 5 / Section 4.2.
    pub fn load_tolerance_ratio(&self) -> f64 {
        match self {
            KernelCategory::Elemental => 3.00,
            KernelCategory::Reusable => 0.20,
            KernelCategory::Hierarchical => 0.00,
        }
    }

    /// Sensitivity coefficient of latency to concurrent data loading: latency
    /// multiplier ≈ 1 + sensitivity × (extra bytes / own bytes). Calibrated so
    /// that the Figure 2 curves are reproduced: Softmax/LayerNorm blow up
    /// quickly, element-wise ops absorb several times their input, MatMul sits
    /// in between but has large absolute latency.
    pub fn overlap_sensitivity(&self) -> f64 {
        match self {
            KernelCategory::Elemental => 0.05,
            KernelCategory::Reusable => 0.22,
            KernelCategory::Hierarchical => 1.10,
        }
    }

    /// Short lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            KernelCategory::Elemental => "elemental",
            KernelCategory::Reusable => "reusable",
            KernelCategory::Hierarchical => "hierarchical",
        }
    }
}

impl std::fmt::Display for KernelCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Global / local work-group geometry of a kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LaunchDims {
    /// Global work size per dimension.
    pub gws: [u64; 3],
    /// Local work size per dimension.
    pub lws: [u64; 3],
}

impl LaunchDims {
    /// Create launch dimensions; zero entries are promoted to one.
    pub fn new(gws: [u64; 3], lws: [u64; 3]) -> Self {
        let fix = |d: [u64; 3]| [d[0].max(1), d[1].max(1), d[2].max(1)];
        LaunchDims {
            gws: fix(gws),
            lws: fix(lws),
        }
    }

    /// Total number of work items.
    pub fn global_items(&self) -> u64 {
        self.gws.iter().product()
    }

    /// Work items per work group.
    pub fn local_items(&self) -> u64 {
        self.lws.iter().product()
    }

    /// Number of work groups dispatched.
    pub fn work_groups(&self) -> u64 {
        self.global_items().div_ceil(self.local_items().max(1))
    }

    /// Occupancy proxy in `(0, 1]`: how well the local size fills a wave/warp
    /// of 64 lanes.
    pub fn occupancy(&self) -> f64 {
        let lanes = 64.0;
        let local = self.local_items() as f64;
        let waves = (local / lanes).ceil();
        (local / (waves * lanes)).clamp(0.05, 1.0)
    }
}

impl Default for LaunchDims {
    fn default() -> Self {
        LaunchDims::new([1024, 1, 1], [64, 1, 1])
    }
}

/// Description of one GPU kernel to be simulated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelDesc {
    /// Kernel name (usually `<op>_<layer index>`).
    pub name: String,
    /// Operator category (drives the overlap-interference model).
    pub category: KernelCategory,
    /// Arithmetic work in floating-point operations.
    pub flops: f64,
    /// Bytes read by the kernel (weights + activations).
    pub bytes_in: u64,
    /// Bytes written by the kernel.
    pub bytes_out: u64,
    /// Launch geometry.
    pub launch: LaunchDims,
    /// Layout of the weights this kernel reads.
    pub weight_layout: WeightLayout,
    /// Access pattern used when reading weights.
    pub access_pattern: AccessPattern,
    /// True if the kernel executes in FP16 (the paper's default precision).
    pub fp16: bool,
    /// Whether the kernel was rewritten with the branch-free pipelined
    /// template of Section 4.4. Pipelined kernels hide part of their own
    /// memory latency and absorb streamed loads more gracefully.
    pub pipelined: bool,
    /// Extra warp-divergence penalty factor in `[0, 1)`; non-zero for naive
    /// interleaved kernels that guard loads with per-thread conditionals.
    pub divergence_penalty: f64,
}

impl KernelDesc {
    /// Create a kernel descriptor with sensible defaults (FP16, optimized 2.5D
    /// weights, streaming access, not pipelined).
    pub fn new(
        name: &str,
        category: KernelCategory,
        flops: f64,
        bytes_in: u64,
        bytes_out: u64,
    ) -> Self {
        KernelDesc {
            name: name.to_string(),
            category,
            flops: flops.max(0.0),
            bytes_in,
            bytes_out,
            launch: LaunchDims::default(),
            weight_layout: WeightLayout::Texture2p5dOptimized,
            access_pattern: AccessPattern::RowStreaming,
            fp16: true,
            pipelined: false,
            divergence_penalty: 0.0,
        }
    }

    /// Set the launch geometry.
    pub fn with_launch(mut self, launch: LaunchDims) -> Self {
        self.launch = launch;
        self
    }

    /// Set the weight layout.
    pub fn with_weight_layout(mut self, layout: WeightLayout) -> Self {
        self.weight_layout = layout;
        self
    }

    /// Set the access pattern.
    pub fn with_access_pattern(mut self, pattern: AccessPattern) -> Self {
        self.access_pattern = pattern;
        self
    }

    /// Mark the kernel as using the branch-free pipelined template.
    pub fn pipelined(mut self, enabled: bool) -> Self {
        self.pipelined = enabled;
        if enabled {
            self.divergence_penalty = 0.0;
        }
        self
    }

    /// Set a warp-divergence penalty (naive interleaving).
    pub fn with_divergence_penalty(mut self, penalty: f64) -> Self {
        self.divergence_penalty = penalty.clamp(0.0, 0.95);
        self
    }

    /// Select FP16 (true) or FP32 (false) execution.
    pub fn with_fp16(mut self, fp16: bool) -> Self {
        self.fp16 = fp16;
        self
    }

    /// Total bytes moved by the kernel.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_in + self.bytes_out
    }

    /// Arithmetic intensity in FLOPs per byte.
    pub fn arithmetic_intensity(&self) -> f64 {
        let b = self.total_bytes();
        if b == 0 {
            f64::INFINITY
        } else {
            self.flops / b as f64
        }
    }
}

/// The kernel latency cost model for a specific device.
///
/// Latency is a roofline-style maximum of compute time and memory time, scaled
/// by occupancy, divergence and pipeline factors, plus the device's fixed
/// launch overhead. Concurrent streamed loads inflate latency according to the
/// kernel category's sensitivity (Figure 2).
#[derive(Debug, Clone)]
pub struct KernelCostModel {
    device: DeviceSpec,
    cache: TextureCacheModel,
}

impl KernelCostModel {
    /// Build a cost model for `device` with the default texture-cache model.
    pub fn new(device: DeviceSpec) -> Self {
        KernelCostModel {
            device,
            cache: TextureCacheModel::default(),
        }
    }

    /// Build a cost model with a custom texture-cache model.
    pub fn with_cache(device: DeviceSpec, cache: TextureCacheModel) -> Self {
        KernelCostModel { device, cache }
    }

    /// The device this model targets.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Baseline latency of the kernel in milliseconds with **no** concurrent
    /// streaming.
    pub fn latency_ms(&self, kernel: &KernelDesc) -> f64 {
        self.latency_with_extra_load_ms(kernel, 0)
    }

    /// Latency of the kernel in milliseconds while `extra_load_bytes` of
    /// weight data are being streamed/transformed concurrently by the same
    /// SMs (the pipelined-loading interference model).
    pub fn latency_with_extra_load_ms(&self, kernel: &KernelDesc, extra_load_bytes: u64) -> f64 {
        let flops = self.device.flops_for(kernel.fp16);
        let occupancy = kernel.launch.occupancy();
        // Compute phase: ideal FLOP time degraded by occupancy and divergence.
        let compute_ms = if kernel.flops > 0.0 {
            (kernel.flops / (flops * occupancy.max(0.05))) * 1e3
                / (1.0 - kernel.divergence_penalty).max(0.05)
        } else {
            0.0
        };

        // Memory phase: weight/activation reads through the texture hierarchy,
        // writes to unified memory.
        let layout = Texture2p5dLayout::for_elements(
            (kernel.bytes_in / if kernel.fp16 { 2 } else { 4 }).max(1),
            if kernel.fp16 { 2 } else { 4 },
        );
        let read_bw = self.cache.effective_read_bandwidth(
            &layout,
            kernel.weight_layout,
            kernel.access_pattern,
            self.device.texture_bw,
            self.device.texture_cache_bw,
        );
        let write_bw = self.device.unified_bw;
        let memory_ms =
            (kernel.bytes_in as f64 / read_bw + kernel.bytes_out as f64 / write_bw) * 1e3;

        // Roofline with partial overlap: pipelined kernels overlap compute and
        // memory almost perfectly; naive kernels only partially.
        let overlap = if kernel.pipelined { 0.95 } else { 0.60 };
        let serial = compute_ms + memory_ms;
        let parallel = compute_ms.max(memory_ms);
        let mut base = overlap * parallel + (1.0 - overlap) * serial;

        // Interference from concurrently streamed weight chunks.
        if extra_load_bytes > 0 {
            let own = kernel.total_bytes().max(1) as f64;
            let ratio = extra_load_bytes as f64 / own;
            let mut sensitivity = kernel.category.overlap_sensitivity();
            if kernel.pipelined {
                // The branch-free pipelined template hides a good part of the
                // extra traffic behind arithmetic.
                sensitivity *= 0.55;
            }
            base *= 1.0 + sensitivity * ratio;
            // The streamed bytes also have to physically move UM→TM; charge the
            // part that cannot be hidden behind compute.
            let stream_ms = extra_load_bytes as f64 / self.device.texture_bw * 1e3;
            let hidden = (parallel - memory_ms).max(0.0);
            base += (stream_ms - hidden).max(0.0) * 0.15;
        }

        base + self.device.kernel_launch_overhead_ms
    }

    /// Relative latency increase caused by streaming `extra_load_bytes`
    /// concurrently, as a fraction (0.2 == 20% slower). This is the quantity
    /// plotted on Figure 2's thresholds.
    pub fn overlap_penalty(&self, kernel: &KernelDesc, extra_load_bytes: u64) -> f64 {
        let base = self.latency_ms(kernel);
        if base <= 0.0 {
            return 0.0;
        }
        self.latency_with_extra_load_ms(kernel, extra_load_bytes) / base - 1.0
    }

    /// Maximum number of extra bytes that can be streamed during this kernel
    /// while keeping the latency penalty below `max_penalty` (e.g. 0.2 for the
    /// 20% threshold). Found by bisection on the monotone penalty function.
    pub fn max_extra_load_bytes(&self, kernel: &KernelDesc, max_penalty: f64) -> u64 {
        if max_penalty <= 0.0 {
            return 0;
        }
        let mut lo = 0u64;
        let mut hi = kernel.total_bytes().max(1) * 16;
        if self.overlap_penalty(kernel, hi) <= max_penalty {
            return hi;
        }
        while hi - lo > 1024 {
            let mid = lo + (hi - lo) / 2;
            if self.overlap_penalty(kernel, mid) <= max_penalty {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> KernelCostModel {
        KernelCostModel::new(DeviceSpec::oneplus_12())
    }

    fn matmul() -> KernelDesc {
        // 1024x1024x1024 GEMM in fp16: 2 GFLOP, 4 MiB in, 2 MiB out.
        KernelDesc::new(
            "matmul",
            KernelCategory::Reusable,
            2.0 * 1024.0 * 1024.0 * 1024.0,
            6 << 20,
            2 << 20,
        )
        .with_launch(LaunchDims::new([1024, 1024, 1], [8, 8, 1]))
    }

    fn layernorm() -> KernelDesc {
        KernelDesc::new(
            "layernorm",
            KernelCategory::Hierarchical,
            6.0e6,
            2 << 20,
            2 << 20,
        )
        .with_launch(LaunchDims::new([1024, 1, 1], [32, 1, 1]))
    }

    fn relu() -> KernelDesc {
        KernelDesc::new("relu", KernelCategory::Elemental, 1.0e6, 4 << 20, 4 << 20)
            .with_launch(LaunchDims::new([1 << 20, 1, 1], [64, 1, 1]))
    }

    #[test]
    fn latency_positive_and_includes_launch_overhead() {
        let m = model();
        for k in [matmul(), layernorm(), relu()] {
            let t = m.latency_ms(&k);
            assert!(t >= m.device().kernel_launch_overhead_ms, "{}: {t}", k.name);
        }
    }

    #[test]
    fn matmul_slowest_relu_fast() {
        let m = model();
        assert!(m.latency_ms(&matmul()) > m.latency_ms(&relu()));
    }

    #[test]
    fn extra_load_monotonically_increases_latency() {
        let m = model();
        let k = matmul();
        let mut prev = m.latency_ms(&k);
        for extra in [1u64 << 20, 4 << 20, 16 << 20, 64 << 20] {
            let t = m.latency_with_extra_load_ms(&k, extra);
            assert!(t >= prev, "latency should not decrease with load");
            prev = t;
        }
    }

    #[test]
    fn hierarchical_ops_most_sensitive_to_overlap() {
        // Figure 2: at equal *relative* extra volume, Softmax/LayerNorm blow up
        // far faster than element-wise or MatMul kernels.
        let m = model();
        let ln = layernorm();
        let rl = relu();
        let mm = matmul();
        let penalty = |k: &KernelDesc| m.overlap_penalty(k, k.total_bytes());
        assert!(penalty(&ln) > penalty(&mm));
        assert!(penalty(&mm) > penalty(&rl));
    }

    #[test]
    fn elemental_tolerates_300_percent() {
        // Figure 2 / Section 4.2: element-wise kernels have tiny baseline
        // latency, so even streaming 3x their own input adds only a small
        // *absolute* amount of time — which is why the paper grants them a
        // 300% load-capacity threshold.
        let m = model();
        let k = relu();
        let increase = m.latency_with_extra_load_ms(&k, 3 * k.total_bytes()) - m.latency_ms(&k);
        assert!(increase < 0.3, "absolute increase {increase} ms");
    }

    #[test]
    fn hierarchical_exceeds_threshold_immediately() {
        let m = model();
        let k = layernorm();
        let p = m.overlap_penalty(&k, k.total_bytes() / 2);
        assert!(p > 0.3, "penalty {p}");
    }

    #[test]
    fn pipelined_kernels_absorb_more_load() {
        let m = model();
        let naive = matmul();
        let piped = matmul().pipelined(true);
        let extra = 2 * naive.total_bytes();
        assert!(
            m.overlap_penalty(&piped, extra) < m.overlap_penalty(&naive, extra),
            "pipelined kernel should hide streamed loads better"
        );
    }

    #[test]
    fn divergence_penalty_slows_kernel() {
        let m = model();
        let clean = matmul();
        let diverged = matmul().with_divergence_penalty(0.4);
        assert!(m.latency_ms(&diverged) > m.latency_ms(&clean));
    }

    #[test]
    fn linear_buffer_layout_is_much_slower_for_memory_bound_ops() {
        // A read-heavy memory-bound kernel (weights dominate traffic) suffers
        // badly when weights sit in a flat unified-memory buffer instead of a
        // 2.5D texture — the mechanism behind ExecuTorch's slowdowns.
        let m = model();
        let read_heavy = KernelDesc::new(
            "gather",
            KernelCategory::Elemental,
            1.0e6,
            16 << 20,
            1 << 20,
        )
        .with_launch(LaunchDims::new([1 << 20, 1, 1], [64, 1, 1]));
        let lin = read_heavy
            .clone()
            .with_weight_layout(WeightLayout::LinearBuffer);
        let ratio = m.latency_ms(&lin) / m.latency_ms(&read_heavy);
        assert!(ratio > 1.5, "ratio {ratio}");
    }

    #[test]
    fn max_extra_load_respects_threshold() {
        let m = model();
        let k = matmul();
        let cap = m.max_extra_load_bytes(&k, 0.20);
        assert!(cap > 0);
        let p = m.overlap_penalty(&k, cap);
        assert!(p <= 0.21, "penalty at cap {p}");
        assert_eq!(m.max_extra_load_bytes(&k, 0.0), 0);
    }

    #[test]
    fn capacity_ordering_matches_table_5() {
        // Elemental tolerance > reusable > hierarchical, per own-volume ratio.
        let m = model();
        let cap_ratio =
            |k: &KernelDesc| m.max_extra_load_bytes(k, 0.25) as f64 / k.total_bytes() as f64;
        assert!(cap_ratio(&relu()) > cap_ratio(&matmul()));
        assert!(cap_ratio(&matmul()) > cap_ratio(&layernorm()));
    }

    #[test]
    fn occupancy_and_work_groups() {
        let d = LaunchDims::new([100, 1, 1], [0, 1, 1]);
        assert_eq!(d.local_items(), 1);
        assert_eq!(d.work_groups(), 100);
        let full = LaunchDims::new([1024, 1, 1], [64, 1, 1]);
        assert!((full.occupancy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fp32_slower_than_fp16_for_compute_bound() {
        let m = model();
        let k16 = matmul();
        let k32 = matmul().with_fp16(false);
        assert!(m.latency_ms(&k32) > m.latency_ms(&k16));
    }

    #[test]
    fn arithmetic_intensity() {
        let k = matmul();
        assert!(k.arithmetic_intensity() > 100.0);
        let zero = KernelDesc::new("z", KernelCategory::Elemental, 1.0, 0, 0);
        assert!(zero.arithmetic_intensity().is_infinite());
    }
}
