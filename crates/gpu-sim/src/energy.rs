//! Power and energy modelling.
//!
//! Table 9 of the paper reports **average power** (W) and **energy** (J) per
//! inference for DeepViT and SD-UNet across frameworks. The simulator derives
//! both from the execution timeline: each engine (SMs, transfer/DMA, DRAM)
//! draws additional power while busy, on top of a platform idle floor, and
//! energy is the integral of power over the makespan.

use serde::{Deserialize, Serialize};

use crate::device::DeviceSpec;
use crate::trace::{EventKind, Timeline};

/// Power/energy summary of one execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Average power over the execution in watts.
    pub average_power_w: f64,
    /// Total energy in joules.
    pub energy_j: f64,
    /// Wall-clock duration in milliseconds the report covers.
    pub duration_ms: f64,
    /// Fraction of the makespan during which the SMs were busy.
    pub sm_utilization: f64,
    /// Fraction of the makespan during which transfer engines were busy.
    pub transfer_utilization: f64,
}

/// Converts a timeline into power/energy figures for a given device.
#[derive(Debug, Clone)]
pub struct PowerModel {
    device: DeviceSpec,
}

impl PowerModel {
    /// Build a power model for `device`.
    pub fn new(device: DeviceSpec) -> Self {
        PowerModel { device }
    }

    /// The device this model targets.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Compute the energy report for a timeline.
    ///
    /// The model is utilisation-based: during the fraction of time the SMs are
    /// active the GPU draws `sm_power_w` extra; transfer/transform activity
    /// draws `transfer_power_w + dram_power_w`; the idle floor applies for the
    /// whole makespan. Running compute and transfers concurrently therefore
    /// *raises* instantaneous power (as the paper observes for FlashMem vs
    /// SmartMem) while usually lowering total energy because the makespan
    /// shrinks.
    pub fn report(&self, timeline: &Timeline) -> EnergyReport {
        let makespan = timeline.makespan_ms();
        if makespan <= 0.0 {
            return EnergyReport {
                average_power_w: self.device.idle_power_w,
                energy_j: 0.0,
                duration_ms: 0.0,
                sm_utilization: 0.0,
                transfer_utilization: 0.0,
            };
        }
        let sm_active = timeline.active_ms(EventKind::Kernel);
        let transfer_active =
            timeline.active_ms(EventKind::Transfer) + timeline.active_ms(EventKind::Transform);
        let transfer_active = transfer_active.min(makespan);
        let sm_util = (sm_active / makespan).clamp(0.0, 1.0);
        let tr_util = (transfer_active / makespan).clamp(0.0, 1.0);

        let seconds = makespan / 1e3;
        let idle_j = self.device.idle_power_w * seconds;
        let sm_j = self.device.sm_power_w * (sm_active / 1e3);
        let tr_j =
            (self.device.transfer_power_w + self.device.dram_power_w) * (transfer_active / 1e3);
        let energy = idle_j + sm_j + tr_j;
        EnergyReport {
            average_power_w: energy / seconds,
            energy_j: energy,
            duration_ms: makespan,
            sm_utilization: sm_util,
            transfer_utilization: tr_util,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::ExecutionEvent;

    fn event(kind: EventKind, start: f64, end: f64) -> ExecutionEvent {
        ExecutionEvent {
            label: "e".into(),
            kind,
            start_ms: start,
            end_ms: end,
            bytes: 0,
        }
    }

    #[test]
    fn empty_timeline_draws_idle_power_and_zero_energy() {
        let m = PowerModel::new(DeviceSpec::oneplus_12());
        let r = m.report(&Timeline::new());
        assert_eq!(r.energy_j, 0.0);
        assert_eq!(r.average_power_w, m.device().idle_power_w);
    }

    #[test]
    fn zero_makespan_timeline_reports_zero_energy() {
        // Not just the empty timeline: instantaneous (zero-duration) events
        // span no wall-clock time, so no energy can have been drawn.
        let m = PowerModel::new(DeviceSpec::oneplus_12());
        let mut tl = Timeline::new();
        tl.push(event(EventKind::Kernel, 0.0, 0.0));
        tl.push(event(EventKind::Transfer, 0.0, 0.0));
        let r = m.report(&tl);
        assert_eq!(r.duration_ms, 0.0);
        assert_eq!(r.energy_j, 0.0);
        assert_eq!(r.sm_utilization, 0.0);
        assert_eq!(r.transfer_utilization, 0.0);
        assert_eq!(r.average_power_w, m.device().idle_power_w);
    }

    #[test]
    fn energy_is_additive_across_any_command_boundary_split() {
        // A gapless serial timeline split at any command boundary must obey
        // E(full) = E(prefix) + E(suffix-rebased-to-zero): energy is a time
        // integral, so cutting the integration interval cannot create or
        // destroy joules. This is the property fleet-level accounting relies
        // on when summing per-request segments into device totals.
        let m = PowerModel::new(DeviceSpec::oneplus_12());
        let segments = [
            (EventKind::Transfer, 0.0, 100.0),
            (EventKind::Kernel, 100.0, 250.0),
            (EventKind::Transform, 250.0, 300.0),
            (EventKind::Kernel, 300.0, 420.0),
            (EventKind::Transfer, 420.0, 500.0),
        ];
        let mut full = Timeline::new();
        for &(kind, start, end) in &segments {
            full.push(event(kind, start, end));
        }
        let total = m.report(&full).energy_j;
        assert!(total > 0.0);

        let boundaries: Vec<f64> = segments.iter().map(|&(_, _, end)| end).collect();
        for &cut in &boundaries {
            let mut prefix = Timeline::new();
            let mut suffix = Timeline::new();
            for &(kind, start, end) in &segments {
                if end <= cut {
                    prefix.push(event(kind, start, end));
                } else {
                    // Re-base the suffix so its makespan covers only its own
                    // wall-clock span.
                    suffix.push(event(kind, start - cut, end - cut));
                }
            }
            let split = m.report(&prefix).energy_j + m.report(&suffix).energy_j;
            assert!(
                (split - total).abs() < 1e-9 * total,
                "split at {cut} ms: {split} J vs {total} J"
            );
        }
    }

    #[test]
    fn busy_sms_raise_power_above_idle() {
        let m = PowerModel::new(DeviceSpec::oneplus_12());
        let mut tl = Timeline::new();
        tl.push(event(EventKind::Kernel, 0.0, 1000.0));
        let r = m.report(&tl);
        assert!(r.average_power_w > m.device().idle_power_w);
        assert!((r.sm_utilization - 1.0).abs() < 1e-9);
        assert!(r.energy_j > 0.0);
    }

    #[test]
    fn overlapping_execution_uses_less_energy_than_serial() {
        // Same work: 1 s of compute and 1 s of transfer.
        let m = PowerModel::new(DeviceSpec::oneplus_12());
        let mut serial = Timeline::new();
        serial.push(event(EventKind::Transfer, 0.0, 1000.0));
        serial.push(event(EventKind::Kernel, 1000.0, 2000.0));
        let mut overlapped = Timeline::new();
        overlapped.push(event(EventKind::Transfer, 0.0, 1000.0));
        overlapped.push(event(EventKind::Kernel, 0.0, 1000.0));

        let rs = m.report(&serial);
        let ro = m.report(&overlapped);
        // Overlap: higher instantaneous power, lower energy (shorter makespan).
        assert!(ro.average_power_w > rs.average_power_w);
        assert!(ro.energy_j < rs.energy_j);
    }

    #[test]
    fn energy_scales_with_duration() {
        let m = PowerModel::new(DeviceSpec::oneplus_12());
        let mut short = Timeline::new();
        short.push(event(EventKind::Kernel, 0.0, 500.0));
        let mut long = Timeline::new();
        long.push(event(EventKind::Kernel, 0.0, 5000.0));
        assert!(m.report(&long).energy_j > 5.0 * m.report(&short).energy_j);
    }

    #[test]
    fn utilizations_are_fractions() {
        let m = PowerModel::new(DeviceSpec::pixel_8());
        let mut tl = Timeline::new();
        tl.push(event(EventKind::Kernel, 0.0, 100.0));
        tl.push(event(EventKind::Transfer, 0.0, 400.0));
        let r = m.report(&tl);
        assert!(r.sm_utilization > 0.0 && r.sm_utilization <= 1.0);
        assert!(r.transfer_utilization > 0.0 && r.transfer_utilization <= 1.0);
        assert!((r.sm_utilization - 0.25).abs() < 1e-9);
    }
}
