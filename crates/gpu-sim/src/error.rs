//! Error types for the GPU simulator.

use std::fmt;

use crate::fault::FaultKind;

/// Result alias used throughout the simulator.
pub type SimResult<T> = Result<T, SimError>;

/// Errors produced by the GPU memory-hierarchy simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// An allocation would exceed the capacity of a memory pool.
    ///
    /// This is how the simulator reproduces the "device ran out of memory
    /// during initialization" cases of Figure 10 in the paper.
    OutOfMemory {
        /// Name of the pool that overflowed (for example `"unified"`).
        pool: String,
        /// Bytes requested by the failing allocation.
        requested: u64,
        /// Bytes still available in the pool at the time of the request.
        available: u64,
        /// Total capacity of the pool.
        capacity: u64,
    },
    /// An allocation handle was freed twice or never existed.
    UnknownAllocation {
        /// The stale handle's numeric id.
        id: u64,
    },
    /// A command referenced a dependency that does not exist in the stream.
    UnknownDependency {
        /// Index of the offending command.
        command: usize,
        /// The dependency id that could not be resolved.
        dependency: usize,
    },
    /// The command stream contains a dependency cycle and cannot be scheduled.
    DependencyCycle {
        /// Index of a command participating in the cycle.
        command: usize,
    },
    /// A transfer was requested between two tiers with no modelled path.
    InvalidTransfer {
        /// Source tier name.
        from: String,
        /// Destination tier name.
        to: String,
    },
    /// A parameter was outside its valid range (negative bandwidth, zero-sized
    /// work-groups and similar misconfigurations).
    InvalidParameter {
        /// Human readable description of the invalid parameter.
        message: String,
    },
    /// A worker thread panicked while advancing a device timeline — e.g. a
    /// scheduling policy implementation panicked inside the serve fleet's
    /// parallel fan-out. The panic is caught on the worker and surfaced as
    /// this error so a buggy policy fails the run instead of hanging it.
    WorkerPanic {
        /// Rendering of the panic payload (the `&str`/`String` panic message
        /// when there was one).
        message: String,
    },
    /// An **injected** fault from a seeded [`FaultPlan`](crate::fault::FaultPlan)
    /// fired: a simulated device loss, transient kernel fault or spurious
    /// OOM spike. Unlike [`WorkerPanic`](Self::WorkerPanic) this is expected
    /// chaos, not a bug — harness layers route it through their normal
    /// per-request outcome path (and, when recovery is armed, their
    /// retry/failover machinery) instead of failing the whole run.
    Fault {
        /// The kind of injected fault.
        kind: FaultKind,
        /// Simulated instant the fault fired at, in milliseconds.
        at_ms: f64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfMemory {
                pool,
                requested,
                available,
                capacity,
            } => write!(
                f,
                "out of memory in pool `{pool}`: requested {requested} bytes, \
                 {available} of {capacity} bytes available"
            ),
            SimError::UnknownAllocation { id } => {
                write!(f, "unknown or already-freed allocation handle {id}")
            }
            SimError::UnknownDependency {
                command,
                dependency,
            } => write!(
                f,
                "command {command} depends on unknown command {dependency}"
            ),
            SimError::DependencyCycle { command } => {
                write!(f, "dependency cycle detected involving command {command}")
            }
            SimError::InvalidTransfer { from, to } => {
                write!(f, "no modelled transfer path from {from} to {to}")
            }
            SimError::InvalidParameter { message } => {
                write!(f, "invalid parameter: {message}")
            }
            SimError::WorkerPanic { message } => {
                write!(f, "worker thread panicked: {message}")
            }
            SimError::Fault { kind, at_ms } => {
                write!(f, "injected fault: {kind} at {at_ms:.0} ms")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = SimError::OutOfMemory {
            pool: "unified".to_string(),
            requested: 100,
            available: 10,
            capacity: 50,
        };
        let text = err.to_string();
        assert!(text.contains("unified"));
        assert!(text.contains("100"));
        assert!(text.starts_with("out of memory"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }

    #[test]
    fn worker_panic_display_carries_the_payload() {
        let err = SimError::WorkerPanic {
            message: "policy exploded".to_string(),
        };
        assert_eq!(err.to_string(), "worker thread panicked: policy exploded");
    }

    #[test]
    fn injected_fault_display_names_the_kind_and_instant() {
        let err = SimError::Fault {
            kind: FaultKind::OomSpike,
            at_ms: 1_234.8,
        };
        assert_eq!(err.to_string(), "injected fault: oom-spike at 1235 ms");
    }

    #[test]
    fn unknown_dependency_display() {
        let err = SimError::UnknownDependency {
            command: 3,
            dependency: 9,
        };
        assert_eq!(err.to_string(), "command 3 depends on unknown command 9");
    }
}
