//! A tiny deterministic pseudo-random number generator.
//!
//! The profiler's sampling sweep and the workspace's property-style tests
//! only need a reproducible, reasonably well-mixed integer stream; with no
//! registry access in this environment the `rand` crate is unavailable, so
//! we use SplitMix64 (Steele et al., "Fast splittable pseudorandom number
//! generators", OOPSLA 2014) — the same generator `rand` itself uses to seed
//! `StdRng` state.

/// SplitMix64 pseudo-random number generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn gen_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "gen_range_inclusive: lo {lo} > hi {hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_u64() % (span + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn full_u64_range_does_not_overflow() {
        let mut rng = SplitMix64::seed_from_u64(9);
        for _ in 0..10 {
            let _ = rng.gen_range_inclusive(0, u64::MAX);
        }
        assert_eq!(rng.gen_range_inclusive(5, 5), 5);
    }

    #[test]
    fn range_respects_bounds_and_hits_all_values() {
        let mut rng = SplitMix64::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = rng.gen_range_inclusive(2, 5);
            assert!((2..=5).contains(&v));
            seen[(v - 2) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
