//! Device specifications for the mobile GPUs evaluated in the paper.
//!
//! The paper evaluates on four smartphones (Section 5.1):
//!
//! | Device       | GPU          | RAM   |
//! |--------------|--------------|-------|
//! | OnePlus 12   | Adreno 750   | 16 GB |
//! | OnePlus 11   | Adreno 740   | 16 GB |
//! | Google Pixel 8 | Mali-G715 MP7 | 8 GB |
//! | Xiaomi Mi 6  | Adreno 540   | 6 GB  |
//!
//! The bandwidth hierarchy (disk → unified memory → texture memory → texture
//! cache) follows Figure 1: 1.5 GB/s, 65 GB/s, 172 GB/s and 560 GB/s on the
//! flagship OnePlus 12; older devices scale these down.

use serde::{Deserialize, Serialize};

use crate::{GIB, MIB};

/// Static description of a simulated mobile device (SoC + GPU + memory).
///
/// All bandwidths are expressed in **bytes per second** and compute throughput
/// in **FLOP/s** so that latency formulas stay unit-consistent; convenience
/// constructors accept the GB/s / GFLOPS figures quoted in the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name of the phone, e.g. `"OnePlus 12"`.
    pub name: String,
    /// GPU model, e.g. `"Adreno 750"`.
    pub gpu: String,
    /// Total system RAM in bytes (unified memory capacity shared by CPU+GPU).
    pub ram_bytes: u64,
    /// Portion of RAM realistically available to a single app's GPU workload,
    /// in bytes. Android keeps a sizeable share for the OS and other apps.
    pub app_budget_bytes: u64,
    /// Maximum texture memory the driver lets one process bind, in bytes.
    pub texture_budget_bytes: u64,
    /// Sequential read bandwidth from flash storage (disk → unified memory).
    pub disk_bw: f64,
    /// Unified memory bandwidth available to copy engines (UM ↔ UM / staging).
    pub unified_bw: f64,
    /// Texture memory bandwidth (unified memory → texture memory uploads and
    /// SM reads that miss the texture cache).
    pub texture_bw: f64,
    /// Texture cache bandwidth (SM reads that hit the dedicated 2D cache).
    pub texture_cache_bw: f64,
    /// Peak FP16 throughput of the GPU in FLOP/s.
    pub fp16_flops: f64,
    /// Peak FP32 throughput of the GPU in FLOP/s.
    pub fp32_flops: f64,
    /// Number of streaming multiprocessors / shader cores.
    pub num_sms: u32,
    /// Fixed per-kernel launch overhead in milliseconds (driver + command
    /// buffer submission). Mobile GPUs pay a noticeable cost per dispatch.
    pub kernel_launch_overhead_ms: f64,
    /// Idle (baseline) platform power in watts.
    pub idle_power_w: f64,
    /// Additional power drawn when the SMs are busy, in watts.
    pub sm_power_w: f64,
    /// Additional power drawn by DMA/copy engines during transfers, in watts.
    pub transfer_power_w: f64,
    /// Additional power drawn by DRAM when streaming weights, in watts.
    pub dram_power_w: f64,
}

impl DeviceSpec {
    /// Create a device spec from the headline figures usually quoted in spec
    /// sheets (GB/s bandwidths, GFLOPS compute, GB memory).
    ///
    /// # Panics
    ///
    /// Does not panic; invalid (non-positive) figures are clamped to a small
    /// positive epsilon so the cost model never divides by zero.
    #[allow(clippy::too_many_arguments)]
    pub fn from_headline(
        name: &str,
        gpu: &str,
        ram_gb: f64,
        disk_gbps: f64,
        unified_gbps: f64,
        texture_gbps: f64,
        texture_cache_gbps: f64,
        fp16_gflops: f64,
        num_sms: u32,
    ) -> Self {
        let clamp = |v: f64| if v <= 0.0 { 1e-3 } else { v };
        let ram_bytes = (clamp(ram_gb) * GIB) as u64;
        DeviceSpec {
            name: name.to_string(),
            gpu: gpu.to_string(),
            ram_bytes,
            // Empirically Android grants roughly two thirds of physical RAM to
            // a foreground app before the low-memory killer intervenes (the
            // rest is pinned by the OS, other apps and the display pipeline).
            app_budget_bytes: (ram_bytes as f64 * 0.65) as u64,
            // Texture bindings are capped well below total RAM.
            texture_budget_bytes: (ram_bytes as f64 * 0.45) as u64,
            disk_bw: clamp(disk_gbps) * 1e9,
            unified_bw: clamp(unified_gbps) * 1e9,
            texture_bw: clamp(texture_gbps) * 1e9,
            texture_cache_bw: clamp(texture_cache_gbps) * 1e9,
            fp16_flops: clamp(fp16_gflops) * 1e9,
            fp32_flops: clamp(fp16_gflops) * 1e9 / 2.0,
            num_sms,
            kernel_launch_overhead_ms: 0.015,
            idle_power_w: 0.9,
            sm_power_w: 3.6,
            transfer_power_w: 1.1,
            dram_power_w: 0.8,
        }
    }

    /// The OnePlus 12 (Adreno 750, 16 GB RAM) — the paper's primary device.
    ///
    /// Bandwidths follow Figure 1 of the paper: disk 1.5 GB/s, unified memory
    /// 65 GB/s, texture memory 172 GB/s, texture cache 560 GB/s.
    pub fn oneplus_12() -> Self {
        Self::from_headline(
            "OnePlus 12",
            "Adreno 750",
            16.0,
            1.5,
            65.0,
            172.0,
            560.0,
            2800.0,
            6,
        )
    }

    /// The OnePlus 11 (Adreno 740, 16 GB RAM).
    pub fn oneplus_11() -> Self {
        Self::from_headline(
            "OnePlus 11",
            "Adreno 740",
            16.0,
            1.3,
            58.0,
            150.0,
            470.0,
            2300.0,
            6,
        )
    }

    /// The Google Pixel 8 (Mali-G715 MP7, 8 GB RAM).
    pub fn pixel_8() -> Self {
        Self::from_headline(
            "Google Pixel 8",
            "Mali-G715 MP7",
            8.0,
            1.2,
            51.0,
            110.0,
            340.0,
            1600.0,
            7,
        )
    }

    /// The Xiaomi Mi 6 (Adreno 540, 6 GB RAM) — the oldest, most constrained
    /// device in the evaluation.
    pub fn xiaomi_mi_6() -> Self {
        Self::from_headline(
            "Xiaomi Mi 6",
            "Adreno 540",
            6.0,
            0.7,
            29.0,
            58.0,
            170.0,
            560.0,
            4,
        )
    }

    /// The Samsung Galaxy A54 5G (Exynos 1380, Mali-G68 MP5, 8 GB RAM) — a
    /// mid-range Mali phone. UFS 2.2 storage and a narrow LPDDR4X bus put it
    /// between the Mi 6 and the Pixel 8 in the hierarchy.
    pub fn galaxy_a54() -> Self {
        Self::from_headline(
            "Samsung Galaxy A54",
            "Mali-G68 MP5",
            8.0,
            1.0,
            22.0,
            55.0,
            180.0,
            970.0,
            5,
        )
    }

    /// The Samsung Galaxy Tab S9 (Snapdragon 8 Gen 2, Adreno 740, 12 GB RAM)
    /// — a tablet-class device with near-flagship bandwidth but a larger
    /// thermal envelope, so sustained figures sit slightly under the
    /// OnePlus 11's peaks.
    pub fn galaxy_tab_s9() -> Self {
        Self::from_headline(
            "Samsung Galaxy Tab S9",
            "Adreno 740",
            12.0,
            1.4,
            55.0,
            145.0,
            455.0,
            2450.0,
            6,
        )
    }

    /// A laptop-class integrated GPU: AMD Radeon 780M (Ryzen 7 7840U,
    /// 32 GB LPDDR5x). NVMe storage and a wide memory bus dwarf every phone;
    /// the 12 RDNA3 compute units deliver roughly 3× the flagship phone's
    /// FP16 throughput.
    pub fn radeon_780m_laptop() -> Self {
        Self::from_headline(
            "Ryzen 7840U Laptop",
            "Radeon 780M",
            32.0,
            5.0,
            105.0,
            240.0,
            780.0,
            8600.0,
            12,
        )
    }

    /// All devices evaluated in the paper (flagship first), followed by the
    /// expanded fleet: a Mali mid-ranger, a tablet and a laptop iGPU, so
    /// portability sweeps (Figure 10) and serving fleets cover a realistic
    /// device population.
    pub fn all_evaluated() -> Vec<DeviceSpec> {
        vec![
            Self::oneplus_12(),
            Self::oneplus_11(),
            Self::pixel_8(),
            Self::xiaomi_mi_6(),
            Self::galaxy_a54(),
            Self::galaxy_tab_s9(),
            Self::radeon_780m_laptop(),
        ]
    }

    /// The four phones of the paper's own evaluation (Section 5.1), without
    /// the expanded fleet.
    pub fn paper_devices() -> Vec<DeviceSpec> {
        vec![
            Self::oneplus_12(),
            Self::oneplus_11(),
            Self::pixel_8(),
            Self::xiaomi_mi_6(),
        ]
    }

    /// Effective FLOP/s for the given precision (true → FP16, false → FP32).
    pub fn flops_for(&self, fp16: bool) -> f64 {
        if fp16 {
            self.fp16_flops
        } else {
            self.fp32_flops
        }
    }

    /// Application memory budget in MiB (the threshold used for OOM checks).
    pub fn app_budget_mib(&self) -> f64 {
        self.app_budget_bytes as f64 / MIB
    }

    /// Override the per-app memory budget (useful for multi-model scenarios
    /// where the user imposes a manual cap, e.g. the 1.5 GB cap in Figure 6).
    pub fn with_app_budget_bytes(mut self, bytes: u64) -> Self {
        self.app_budget_bytes = bytes;
        self
    }

    /// Override the kernel launch overhead.
    pub fn with_launch_overhead_ms(mut self, ms: f64) -> Self {
        self.kernel_launch_overhead_ms = ms.max(0.0);
        self
    }

    /// A rough per-device "capability score" used by higher layers to scale
    /// expectations across devices: geometric mean of compute and texture
    /// bandwidth relative to the OnePlus 12.
    pub fn capability_score(&self) -> f64 {
        let flagship = DeviceSpec::oneplus_12();
        let c = self.fp16_flops / flagship.fp16_flops;
        let b = self.texture_bw / flagship.texture_bw;
        (c * b).sqrt()
    }
}

impl Default for DeviceSpec {
    fn default() -> Self {
        Self::oneplus_12()
    }
}

impl std::fmt::Display for DeviceSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({}, {:.0} GB RAM, {:.0} GFLOPS fp16)",
            self.name,
            self.gpu,
            self.ram_bytes as f64 / GIB,
            self.fp16_flops / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flagship_matches_figure_1_bandwidths() {
        let d = DeviceSpec::oneplus_12();
        assert_eq!(d.disk_bw, 1.5e9);
        assert_eq!(d.unified_bw, 65.0e9);
        assert_eq!(d.texture_bw, 172.0e9);
        assert_eq!(d.texture_cache_bw, 560.0e9);
        assert_eq!(d.ram_bytes, 16 * (GIB as u64));
    }

    #[test]
    fn all_devices_have_positive_parameters() {
        for d in DeviceSpec::all_evaluated() {
            assert!(d.disk_bw > 0.0, "{}", d.name);
            assert!(d.unified_bw > 0.0);
            assert!(d.texture_bw > 0.0);
            assert!(d.texture_cache_bw > 0.0);
            assert!(d.fp16_flops > 0.0);
            assert!(d.app_budget_bytes > 0);
            assert!(d.app_budget_bytes < d.ram_bytes);
            assert!(d.texture_budget_bytes < d.ram_bytes);
        }
    }

    #[test]
    fn bandwidth_hierarchy_is_monotone() {
        for d in DeviceSpec::all_evaluated() {
            assert!(d.disk_bw < d.unified_bw, "{}", d.name);
            assert!(d.unified_bw < d.texture_bw, "{}", d.name);
            assert!(d.texture_bw < d.texture_cache_bw, "{}", d.name);
        }
    }

    #[test]
    fn flagship_has_highest_capability() {
        let flagship = DeviceSpec::oneplus_12();
        assert!((flagship.capability_score() - 1.0).abs() < 1e-9);
        for d in [
            DeviceSpec::oneplus_11(),
            DeviceSpec::pixel_8(),
            DeviceSpec::xiaomi_mi_6(),
        ] {
            assert!(d.capability_score() < 1.0, "{}", d.name);
        }
    }

    #[test]
    fn mi6_is_the_most_constrained() {
        let mi6 = DeviceSpec::xiaomi_mi_6();
        for d in DeviceSpec::all_evaluated() {
            assert!(mi6.ram_bytes <= d.ram_bytes);
            assert!(mi6.capability_score() <= d.capability_score() + 1e-12);
        }
    }

    #[test]
    fn expanded_fleet_contains_the_paper_devices_plus_three() {
        let all = DeviceSpec::all_evaluated();
        let paper = DeviceSpec::paper_devices();
        assert_eq!(paper.len(), 4);
        assert_eq!(all.len(), paper.len() + 3);
        for d in &paper {
            assert!(all.iter().any(|a| a.name == d.name), "{} missing", d.name);
        }
    }

    #[test]
    fn new_presets_sit_where_expected_in_the_hierarchy() {
        let a54 = DeviceSpec::galaxy_a54();
        let tab = DeviceSpec::galaxy_tab_s9();
        let laptop = DeviceSpec::radeon_780m_laptop();
        let mi6 = DeviceSpec::xiaomi_mi_6();
        let flagship = DeviceSpec::oneplus_12();
        // Mali mid-ranger: above the Mi 6, below the Pixel 8.
        assert!(a54.capability_score() > mi6.capability_score());
        assert!(a54.capability_score() < DeviceSpec::pixel_8().capability_score());
        // Tablet: near the OnePlus 11, under the flagship.
        assert!(tab.capability_score() < flagship.capability_score());
        assert!(tab.capability_score() > a54.capability_score());
        // Laptop iGPU: the only device above the flagship phone.
        assert!(laptop.capability_score() > flagship.capability_score());
        assert!(laptop.ram_bytes > flagship.ram_bytes);
    }

    #[test]
    fn headline_clamps_nonpositive_values() {
        let d = DeviceSpec::from_headline("x", "y", -1.0, 0.0, -3.0, 0.0, 0.0, 0.0, 1);
        assert!(d.disk_bw > 0.0);
        assert!(d.fp16_flops > 0.0);
        assert!(d.ram_bytes > 0);
    }

    #[test]
    fn fp32_is_half_rate() {
        let d = DeviceSpec::oneplus_12();
        assert!((d.flops_for(false) - d.flops_for(true) / 2.0).abs() < 1.0);
    }

    #[test]
    fn display_mentions_gpu_and_name() {
        let text = DeviceSpec::pixel_8().to_string();
        assert!(text.contains("Pixel 8"));
        assert!(text.contains("Mali"));
    }

    #[test]
    fn budget_override() {
        let d = DeviceSpec::oneplus_12().with_app_budget_bytes(1_500 * (MIB as u64));
        assert_eq!(d.app_budget_bytes, 1_500 * (MIB as u64));
    }

    #[test]
    fn default_is_flagship() {
        assert_eq!(DeviceSpec::default(), DeviceSpec::oneplus_12());
    }
}
