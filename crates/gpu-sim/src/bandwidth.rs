//! Memory tiers and transfer-time modelling.
//!
//! The simulator models the four-step weight path from Figure 1 of the paper:
//! disk → unified memory → 2.5D texture memory → streaming multiprocessors
//! (through the texture cache). Each hop has a distinct bandwidth, and the
//! transfer time of a hop is `bytes / bandwidth` plus a small fixed DMA setup
//! cost.

use serde::{Deserialize, Serialize};

use crate::device::DeviceSpec;
use crate::error::{SimError, SimResult};

/// A level of the mobile GPU memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MemoryTier {
    /// Flash storage (UFS). Weights start here.
    Disk,
    /// LPDDR unified memory shared between CPU and GPU.
    UnifiedMemory,
    /// 2.5D texture memory: GPU-resident image objects with a tiled layout.
    TextureMemory,
    /// The dedicated texture cache in front of the SMs.
    TextureCache,
    /// Streaming multiprocessor register/shared memory (compute endpoint).
    StreamingMultiprocessor,
}

impl MemoryTier {
    /// Human readable, lowercase name of the tier.
    pub fn name(&self) -> &'static str {
        match self {
            MemoryTier::Disk => "disk",
            MemoryTier::UnifiedMemory => "unified memory",
            MemoryTier::TextureMemory => "texture memory",
            MemoryTier::TextureCache => "texture cache",
            MemoryTier::StreamingMultiprocessor => "streaming multiprocessor",
        }
    }

    /// All tiers ordered from the slowest/farthest to the fastest/closest.
    pub fn all() -> [MemoryTier; 5] {
        [
            MemoryTier::Disk,
            MemoryTier::UnifiedMemory,
            MemoryTier::TextureMemory,
            MemoryTier::TextureCache,
            MemoryTier::StreamingMultiprocessor,
        ]
    }

    /// Distance (number of hops) between two tiers along the linear hierarchy.
    pub fn hops_to(&self, other: MemoryTier) -> usize {
        let idx = |t: MemoryTier| MemoryTier::all().iter().position(|x| *x == t).unwrap();
        idx(*self).abs_diff(idx(other))
    }
}

impl std::fmt::Display for MemoryTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Transfer-time model over the memory hierarchy of a specific device.
#[derive(Debug, Clone)]
pub struct BandwidthModel {
    device: DeviceSpec,
    /// Fixed per-transfer setup latency in milliseconds (DMA descriptor setup,
    /// cache maintenance, driver call). Applied once per transfer command.
    pub transfer_setup_ms: f64,
}

impl BandwidthModel {
    /// Build a bandwidth model for `device`.
    pub fn new(device: DeviceSpec) -> Self {
        BandwidthModel {
            device,
            transfer_setup_ms: 0.02,
        }
    }

    /// The device this model describes.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Bandwidth in bytes/second of the single hop `from → to`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidTransfer`] if the pair is not an adjacent or
    /// downstream pair in the hierarchy (e.g. texture memory → disk).
    pub fn hop_bandwidth(&self, from: MemoryTier, to: MemoryTier) -> SimResult<f64> {
        use MemoryTier::*;
        let bw = match (from, to) {
            (Disk, UnifiedMemory) => self.device.disk_bw,
            (UnifiedMemory, TextureMemory) => self.device.texture_bw,
            (UnifiedMemory, UnifiedMemory) => self.device.unified_bw,
            (UnifiedMemory, StreamingMultiprocessor) => self.device.unified_bw,
            (TextureMemory, TextureCache) => self.device.texture_bw,
            (TextureMemory, StreamingMultiprocessor) => self.device.texture_bw,
            (TextureCache, StreamingMultiprocessor) => self.device.texture_cache_bw,
            _ => {
                return Err(SimError::InvalidTransfer {
                    from: from.name().to_string(),
                    to: to.name().to_string(),
                })
            }
        };
        Ok(bw)
    }

    /// Time in milliseconds to move `bytes` across the single hop `from → to`,
    /// including the fixed setup cost.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::InvalidTransfer`] for unmodelled hops.
    pub fn transfer_time_ms(&self, bytes: u64, from: MemoryTier, to: MemoryTier) -> SimResult<f64> {
        if bytes == 0 {
            return Ok(0.0);
        }
        let bw = self.hop_bandwidth(from, to)?;
        Ok(self.transfer_setup_ms + (bytes as f64 / bw) * 1e3)
    }

    /// Time to move `bytes` along the full multi-hop path from `from` to `to`,
    /// assuming store-and-forward at every intermediate tier (the pessimistic
    /// path used by preloading frameworks that materialize every copy).
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::InvalidTransfer`] if `from` is not upstream of
    /// `to` in the hierarchy.
    pub fn path_time_ms(&self, bytes: u64, from: MemoryTier, to: MemoryTier) -> SimResult<f64> {
        let order = MemoryTier::all();
        let start = order.iter().position(|t| *t == from).unwrap();
        let end = order.iter().position(|t| *t == to).unwrap();
        if start > end {
            return Err(SimError::InvalidTransfer {
                from: from.name().to_string(),
                to: to.name().to_string(),
            });
        }
        let mut total = 0.0;
        let mut idx = start;
        while idx < end {
            // The texture-cache tier is transparent for bulk uploads: data
            // uploaded from unified memory lands directly in texture memory,
            // and only SM reads traverse the cache.
            let a = order[idx];
            let b = order[idx + 1];
            if a == MemoryTier::TextureMemory && b == MemoryTier::TextureCache && end != idx + 1 {
                idx += 1;
                continue;
            }
            total += self.transfer_time_ms(bytes, a, b)?;
            idx += 1;
        }
        Ok(total)
    }

    /// Effective bandwidth (bytes/s) of streaming `bytes` along a path,
    /// derived from [`path_time_ms`](Self::path_time_ms).
    pub fn effective_path_bandwidth(
        &self,
        bytes: u64,
        from: MemoryTier,
        to: MemoryTier,
    ) -> SimResult<f64> {
        let t = self.path_time_ms(bytes, from, to)?;
        if t <= 0.0 {
            return Ok(f64::INFINITY);
        }
        Ok(bytes as f64 / (t / 1e3))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> BandwidthModel {
        BandwidthModel::new(DeviceSpec::oneplus_12())
    }

    #[test]
    fn disk_to_um_dominates_path_time() {
        let m = model();
        let bytes = 512 * 1024 * 1024u64; // 512 MiB of weights
        let disk = m
            .transfer_time_ms(bytes, MemoryTier::Disk, MemoryTier::UnifiedMemory)
            .unwrap();
        let full = m
            .path_time_ms(bytes, MemoryTier::Disk, MemoryTier::TextureMemory)
            .unwrap();
        assert!(full > disk);
        // Disk is >40x slower than the UM→TM hop, so it should account for
        // more than 95% of the end-to-end path.
        assert!(disk / full > 0.95);
    }

    #[test]
    fn zero_bytes_is_free() {
        let m = model();
        assert_eq!(
            m.transfer_time_ms(0, MemoryTier::Disk, MemoryTier::UnifiedMemory)
                .unwrap(),
            0.0
        );
    }

    #[test]
    fn invalid_direction_is_rejected() {
        let m = model();
        let err = m
            .transfer_time_ms(10, MemoryTier::TextureMemory, MemoryTier::Disk)
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidTransfer { .. }));
        assert!(m
            .path_time_ms(10, MemoryTier::TextureCache, MemoryTier::Disk)
            .is_err());
    }

    #[test]
    fn transfer_time_scales_linearly_with_bytes() {
        let m = model();
        let t1 = m
            .transfer_time_ms(100 << 20, MemoryTier::Disk, MemoryTier::UnifiedMemory)
            .unwrap()
            - m.transfer_setup_ms;
        let t2 = m
            .transfer_time_ms(200 << 20, MemoryTier::Disk, MemoryTier::UnifiedMemory)
            .unwrap()
            - m.transfer_setup_ms;
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn hop_distance() {
        assert_eq!(MemoryTier::Disk.hops_to(MemoryTier::TextureMemory), 2);
        assert_eq!(
            MemoryTier::StreamingMultiprocessor.hops_to(MemoryTier::Disk),
            4
        );
        assert_eq!(MemoryTier::Disk.hops_to(MemoryTier::Disk), 0);
    }

    #[test]
    fn one_gigabyte_from_disk_takes_roughly_700ms_on_flagship() {
        // 1 GB at 1.5 GB/s ≈ 0.67 s — sanity anchor against Table 1, where
        // loading multi-GB models takes seconds.
        let m = model();
        let t = m
            .transfer_time_ms(1_000_000_000, MemoryTier::Disk, MemoryTier::UnifiedMemory)
            .unwrap();
        assert!(t > 600.0 && t < 750.0, "t = {t}");
    }

    #[test]
    fn effective_bandwidth_bounded_by_slowest_hop() {
        let m = model();
        let eff = m
            .effective_path_bandwidth(1 << 30, MemoryTier::Disk, MemoryTier::TextureMemory)
            .unwrap();
        assert!(eff <= m.device().disk_bw);
    }

    #[test]
    fn texture_cache_hop_is_fastest() {
        let m = model();
        let cache = m
            .hop_bandwidth(
                MemoryTier::TextureCache,
                MemoryTier::StreamingMultiprocessor,
            )
            .unwrap();
        let tm = m
            .hop_bandwidth(
                MemoryTier::TextureMemory,
                MemoryTier::StreamingMultiprocessor,
            )
            .unwrap();
        assert!(cache > tm);
    }
}
