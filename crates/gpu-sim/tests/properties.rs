//! Property-based tests for the simulator substrate: memory accounting,
//! trace statistics, bandwidth monotonicity and command-stream scheduling
//! invariants must hold for arbitrary (valid) inputs, not just the scenarios
//! exercised by the unit tests.

use proptest::prelude::*;

use flashmem_gpu_sim::bandwidth::{BandwidthModel, MemoryTier};
use flashmem_gpu_sim::engine::{Command, CommandStream, GpuSimulator, SimConfig};
use flashmem_gpu_sim::kernel::{KernelCategory, KernelCostModel, KernelDesc, LaunchDims};
use flashmem_gpu_sim::memory::MemoryTracker;
use flashmem_gpu_sim::trace::MemoryTrace;
use flashmem_gpu_sim::DeviceSpec;

fn any_category() -> impl Strategy<Value = KernelCategory> {
    prop_oneof![
        Just(KernelCategory::Elemental),
        Just(KernelCategory::Reusable),
        Just(KernelCategory::Hierarchical),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn trace_peak_bounds_average(samples in proptest::collection::vec((0.0f64..1e6, 0u64..1u64 << 32), 1..40)) {
        let mut trace = MemoryTrace::new();
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for (t, bytes) in &sorted {
            trace.record(*t, *bytes);
        }
        let peak = trace.peak_bytes();
        let avg = trace.average_bytes();
        prop_assert!(avg <= peak as f64 + 1e-6);
        prop_assert!(peak <= sorted.iter().map(|(_, b)| *b).max().unwrap());
        // Resampling never exceeds the peak either.
        for s in trace.resample(16) {
            prop_assert!(s.bytes <= peak);
        }
    }

    #[test]
    fn transfer_time_is_monotone_in_bytes(
        a in 0u64..1u64 << 30,
        b in 0u64..1u64 << 30,
    ) {
        let model = BandwidthModel::new(DeviceSpec::oneplus_12());
        let (small, large) = if a <= b { (a, b) } else { (b, a) };
        let t_small = model
            .transfer_time_ms(small, MemoryTier::Disk, MemoryTier::UnifiedMemory)
            .unwrap();
        let t_large = model
            .transfer_time_ms(large, MemoryTier::Disk, MemoryTier::UnifiedMemory)
            .unwrap();
        prop_assert!(t_small <= t_large + 1e-9);
    }

    #[test]
    fn kernel_latency_positive_and_monotone_in_extra_load(
        category in any_category(),
        flops in 1.0e6f64..1.0e11,
        bytes_in in 1u64..1u64 << 27,
        bytes_out in 1u64..1u64 << 26,
        extra in 0u64..1u64 << 27,
    ) {
        let cost = KernelCostModel::new(DeviceSpec::oneplus_12());
        let kernel = KernelDesc::new("k", category, flops, bytes_in, bytes_out)
            .with_launch(LaunchDims::new([4096, 1, 1], [64, 1, 1]));
        let base = cost.latency_ms(&kernel);
        let loaded = cost.latency_with_extra_load_ms(&kernel, extra);
        prop_assert!(base > 0.0);
        prop_assert!(loaded >= base - 1e-9);
        // Capacity bisections respect their own threshold.
        let cap = cost.max_extra_load_bytes(&kernel, 0.2);
        if cap > 0 {
            prop_assert!(cost.overlap_penalty(&kernel, cap) <= 0.21);
        }
    }

    #[test]
    fn memory_tracker_never_goes_negative_and_respects_budget(
        ops in proptest::collection::vec((0u64..1u64 << 24, any::<bool>()), 1..60)
    ) {
        let budget = 1u64 << 28;
        let mut tracker = MemoryTracker::new(budget, budget, budget);
        let mut live: Vec<(flashmem_gpu_sim::memory::AllocationId, bool)> = Vec::new();
        let mut clock = 0.0;
        for (bytes, use_texture) in ops {
            clock += 1.0;
            let tier = if use_texture {
                MemoryTier::TextureMemory
            } else {
                MemoryTier::UnifiedMemory
            };
            match tracker.allocate(tier, bytes, "x", clock) {
                Ok(id) => live.push((id, use_texture)),
                Err(_) => {
                    // Over budget: free everything and continue.
                    for (id, tex) in live.drain(..) {
                        let tier = if tex { MemoryTier::TextureMemory } else { MemoryTier::UnifiedMemory };
                        tracker.free(tier, id, clock).unwrap();
                    }
                }
            }
            prop_assert!(tracker.total_in_use() <= budget);
        }
        prop_assert!(tracker.peak_bytes() <= budget);
        prop_assert!(tracker.average_bytes() <= tracker.peak_bytes() as f64 + 1e-6);
    }

    #[test]
    fn command_streams_schedule_without_time_travel(
        kernel_count in 1usize..20,
        transfer_bytes in 1u64..1u64 << 26,
    ) {
        let mut stream = CommandStream::new();
        let mut prev: Option<usize> = None;
        for i in 0..kernel_count {
            let deps: Vec<usize> = prev.into_iter().collect();
            let load = stream.push(Command::transfer(
                &format!("t{i}"),
                transfer_bytes,
                MemoryTier::Disk,
                MemoryTier::UnifiedMemory,
                &deps,
            ));
            let kernel = KernelDesc::new(
                &format!("k{i}"),
                KernelCategory::Reusable,
                1.0e8,
                1 << 20,
                1 << 20,
            );
            prev = Some(stream.push(Command::kernel(&format!("k{i}"), kernel, 0, &[load])));
        }
        let mut sim = GpuSimulator::new(DeviceSpec::oneplus_12(), SimConfig::default());
        let outcome = sim.execute(&stream).unwrap();
        // Every event respects causality and the makespan covers all events.
        for event in outcome.timeline.events() {
            prop_assert!(event.end_ms >= event.start_ms);
            prop_assert!(event.end_ms <= outcome.total_time_ms + 1e-9);
        }
        // Kernels are serialized on the compute queue in emission order.
        let kernel_events: Vec<_> = outcome
            .timeline
            .events()
            .iter()
            .filter(|e| matches!(e.kind, flashmem_gpu_sim::trace::EventKind::Kernel))
            .collect();
        for pair in kernel_events.windows(2) {
            prop_assert!(pair[1].start_ms >= pair[0].end_ms - 1e-9);
        }
    }
}
