//! Property-style tests for the simulator substrate: memory accounting,
//! trace statistics, bandwidth monotonicity and command-stream scheduling
//! invariants must hold for arbitrary (valid) inputs, not just the scenarios
//! exercised by the unit tests.
//!
//! The random instances come from a seeded [`SplitMix64`] sweep instead of
//! proptest (unavailable offline), so every run exercises the same corpus.

use flashmem_gpu_sim::bandwidth::{BandwidthModel, MemoryTier};
use flashmem_gpu_sim::engine::{Command, CommandStream, GpuSimulator, SimConfig};
use flashmem_gpu_sim::kernel::{KernelCategory, KernelCostModel, KernelDesc, LaunchDims};
use flashmem_gpu_sim::memory::MemoryTracker;
use flashmem_gpu_sim::rng::SplitMix64;
use flashmem_gpu_sim::trace::MemoryTrace;
use flashmem_gpu_sim::DeviceSpec;

const CASES: usize = 64;

fn category(rng: &mut SplitMix64) -> KernelCategory {
    match rng.gen_range_inclusive(0, 2) {
        0 => KernelCategory::Elemental,
        1 => KernelCategory::Reusable,
        _ => KernelCategory::Hierarchical,
    }
}

#[test]
fn trace_peak_bounds_average() {
    let mut rng = SplitMix64::seed_from_u64(11);
    for _ in 0..CASES {
        let samples: Vec<(f64, u64)> = (0..rng.gen_range_inclusive(1, 39))
            .map(|_| (rng.gen_f64() * 1e6, rng.next_u64() >> 32))
            .collect();
        let mut trace = MemoryTrace::new();
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for (t, bytes) in &sorted {
            trace.record(*t, *bytes);
        }
        let peak = trace.peak_bytes();
        let avg = trace.average_bytes();
        assert!(avg <= peak as f64 + 1e-6);
        assert!(peak <= sorted.iter().map(|(_, b)| *b).max().unwrap());
        // Resampling never exceeds the peak either.
        for s in trace.resample(16) {
            assert!(s.bytes <= peak);
        }
    }
}

#[test]
fn transfer_time_is_monotone_in_bytes() {
    let mut rng = SplitMix64::seed_from_u64(12);
    let model = BandwidthModel::new(DeviceSpec::oneplus_12());
    for _ in 0..CASES {
        let a = rng.next_u64() >> 34; // < 1 GiB
        let b = rng.next_u64() >> 34;
        let (small, large) = if a <= b { (a, b) } else { (b, a) };
        let t_small = model
            .transfer_time_ms(small, MemoryTier::Disk, MemoryTier::UnifiedMemory)
            .unwrap();
        let t_large = model
            .transfer_time_ms(large, MemoryTier::Disk, MemoryTier::UnifiedMemory)
            .unwrap();
        assert!(t_small <= t_large + 1e-9, "{small} vs {large}");
    }
}

#[test]
fn kernel_latency_positive_and_monotone_in_extra_load() {
    let mut rng = SplitMix64::seed_from_u64(13);
    let cost = KernelCostModel::new(DeviceSpec::oneplus_12());
    for _ in 0..CASES {
        let category = category(&mut rng);
        let flops = 1.0e6 + rng.gen_f64() * (1.0e11 - 1.0e6);
        let bytes_in = rng.gen_range_inclusive(1, (1 << 27) - 1);
        let bytes_out = rng.gen_range_inclusive(1, (1 << 26) - 1);
        let extra = rng.gen_range_inclusive(0, (1 << 27) - 1);
        let kernel = KernelDesc::new("k", category, flops, bytes_in, bytes_out)
            .with_launch(LaunchDims::new([4096, 1, 1], [64, 1, 1]));
        let base = cost.latency_ms(&kernel);
        let loaded = cost.latency_with_extra_load_ms(&kernel, extra);
        assert!(base > 0.0);
        assert!(loaded >= base - 1e-9);
        // Capacity bisections respect their own threshold.
        let cap = cost.max_extra_load_bytes(&kernel, 0.2);
        if cap > 0 {
            assert!(cost.overlap_penalty(&kernel, cap) <= 0.21);
        }
    }
}

#[test]
fn memory_tracker_never_goes_negative_and_respects_budget() {
    let mut rng = SplitMix64::seed_from_u64(14);
    for _ in 0..CASES {
        let budget = 1u64 << 28;
        let mut tracker = MemoryTracker::new(budget, budget, budget);
        let mut live: Vec<(flashmem_gpu_sim::memory::AllocationId, bool)> = Vec::new();
        let mut clock = 0.0;
        for _ in 0..rng.gen_range_inclusive(1, 59) {
            let bytes = rng.gen_range_inclusive(0, (1 << 24) - 1);
            let use_texture = rng.gen_range_inclusive(0, 1) == 1;
            clock += 1.0;
            let tier = if use_texture {
                MemoryTier::TextureMemory
            } else {
                MemoryTier::UnifiedMemory
            };
            match tracker.allocate(tier, bytes, "x", clock) {
                Ok(id) => live.push((id, use_texture)),
                Err(_) => {
                    // Over budget: free everything and continue.
                    for (id, tex) in live.drain(..) {
                        let tier = if tex {
                            MemoryTier::TextureMemory
                        } else {
                            MemoryTier::UnifiedMemory
                        };
                        tracker.free(tier, id, clock).unwrap();
                    }
                }
            }
            assert!(tracker.total_in_use() <= budget);
        }
        assert!(tracker.peak_bytes() <= budget);
        assert!(tracker.average_bytes() <= tracker.peak_bytes() as f64 + 1e-6);
    }
}

#[test]
fn command_streams_schedule_without_time_travel() {
    let mut rng = SplitMix64::seed_from_u64(15);
    for _ in 0..CASES {
        let kernel_count = rng.gen_range_inclusive(1, 19) as usize;
        let transfer_bytes = rng.gen_range_inclusive(1, (1 << 26) - 1);
        let mut stream = CommandStream::new();
        let mut prev: Option<usize> = None;
        for i in 0..kernel_count {
            let deps: Vec<usize> = prev.into_iter().collect();
            let load = stream.push(Command::transfer(
                &format!("t{i}"),
                transfer_bytes,
                MemoryTier::Disk,
                MemoryTier::UnifiedMemory,
                &deps,
            ));
            let kernel = KernelDesc::new(
                &format!("k{i}"),
                KernelCategory::Reusable,
                1.0e8,
                1 << 20,
                1 << 20,
            );
            prev = Some(stream.push(Command::kernel(&format!("k{i}"), kernel, 0, &[load])));
        }
        let mut sim = GpuSimulator::new(DeviceSpec::oneplus_12(), SimConfig::default());
        let outcome = sim.execute(&stream).unwrap();
        // Every event respects causality and the makespan covers all events.
        for event in outcome.timeline.events() {
            assert!(event.end_ms >= event.start_ms);
            assert!(event.end_ms <= outcome.total_time_ms + 1e-9);
        }
        // Kernels are serialized on the compute queue in emission order.
        let kernel_events: Vec<_> = outcome
            .timeline
            .events()
            .iter()
            .filter(|e| matches!(e.kind, flashmem_gpu_sim::trace::EventKind::Kernel))
            .collect();
        for pair in kernel_events.windows(2) {
            assert!(pair[1].start_ms >= pair[0].end_ms - 1e-9);
        }
    }
}
