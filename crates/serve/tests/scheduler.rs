//! Scheduler and plan-cache guarantees:
//!
//! 1. the FIFO policy reproduces the legacy `flashmem-core`
//!    `MultiModelRunner::run_fifo` reports **byte for byte** (the legacy
//!    algorithm is re-implemented here, verbatim, as the oracle);
//! 2. the priority policy never exhibits priority inversion;
//! 3. plan-cache hits return artifacts identical to cold compiles;
//!
//! plus affinity-sharding and tenant-cap behaviour.

use flashmem_core::{ArtifactCache, FlashMem, FlashMemConfig, InferenceEngine};
use flashmem_gpu_sim::memory::MemoryTracker;
use flashmem_gpu_sim::trace::MemoryTrace;
use flashmem_gpu_sim::DeviceSpec;
use flashmem_graph::{ModelSpec, ModelZoo};
use flashmem_serve::{
    AffinityPolicy, ArrivalPattern, InvocationResult, MultiModelReport, MultiModelRunner,
    PriorityPolicy, ServeEngine, ServeRequest, WorkloadSpec,
};

/// The legacy `MultiModelRunner::run_fifo` of flashmem-core PR 1, kept
/// verbatim as the oracle the scheduler's FIFO mode must match exactly.
fn legacy_run_fifo(
    device: &DeviceSpec,
    config: &FlashMemConfig,
    memory_cap_bytes: Option<u64>,
    queue: &[ModelSpec],
    iterations: usize,
) -> MultiModelReport {
    let device = match memory_cap_bytes {
        Some(cap) => device.clone().with_app_budget_bytes(cap),
        None => device.clone(),
    };
    let runtime = FlashMem::new(device.clone()).with_config(config.clone());
    let compiled: Vec<_> = queue
        .iter()
        .map(|m| (m, runtime.compile(m.graph())))
        .collect();

    let mut tracker = MemoryTracker::for_device(&device);
    let mut invocations = Vec::new();
    let mut stitched = MemoryTrace::new();
    let mut clock_ms = 0.0;
    let mut peak_mb: f64 = 0.0;
    let mut weighted_mem = 0.0;

    for round in 0..iterations {
        for (idx, (model, compiled_model)) in compiled.iter().enumerate() {
            tracker.reset_trace();
            let report = runtime
                .run_compiled_with_tracker(model.graph(), compiled_model, &mut tracker)
                .expect("legacy fifo run succeeds");
            let sequence = round * queue.len() + idx;
            invocations.push(InvocationResult {
                model: model.abbr.clone(),
                sequence,
                latency_ms: report.integrated_latency_ms,
                peak_memory_mb: report.peak_memory_mb,
            });
            stitched.append_shifted(&report.memory_trace, clock_ms);
            weighted_mem += report.average_memory_mb * report.integrated_latency_ms;
            clock_ms += report.integrated_latency_ms;
            peak_mb = peak_mb.max(report.peak_memory_mb);
            tracker.evict_all(clock_ms);
            stitched.record(clock_ms, 0);
        }
    }

    MultiModelReport {
        invocations,
        total_latency_ms: clock_ms,
        peak_memory_mb: peak_mb,
        average_memory_mb: if clock_ms > 0.0 {
            weighted_mem / clock_ms
        } else {
            0.0
        },
        memory_trace: stitched,
    }
}

fn queue() -> Vec<ModelSpec> {
    vec![ModelZoo::gptneo_small(), ModelZoo::vit()]
}

#[test]
fn fifo_policy_matches_legacy_multi_model_runner_byte_for_byte() {
    let device = DeviceSpec::oneplus_12();
    let config = FlashMemConfig::memory_priority();
    let legacy = legacy_run_fifo(&device, &config, None, &queue(), 2);
    let scheduled = MultiModelRunner::new(device, config)
        .run_fifo(&queue(), 2)
        .expect("scheduler fifo runs");
    // PartialEq on f64 fields: only exact bit equality passes.
    assert_eq!(legacy, scheduled);
}

#[test]
fn fifo_policy_matches_legacy_under_the_figure_6_cap() {
    let device = DeviceSpec::oneplus_12();
    let config = FlashMemConfig::memory_priority();
    let cap = 1_536u64 * 1024 * 1024;
    let legacy = legacy_run_fifo(&device, &config, Some(cap), &queue(), 2);
    let scheduled = MultiModelRunner::new(device, config)
        .with_memory_cap_bytes(cap)
        .run_fifo(&queue(), 2)
        .expect("scheduler fifo runs under the cap");
    assert_eq!(legacy, scheduled);
    // And the stitched trace is the full Figure 6 curve, not a summary.
    assert_eq!(
        legacy.memory_trace.samples(),
        scheduled.memory_trace.samples()
    );
}

/// No priority inversion: whenever a higher-priority request was already
/// pending when a lower-priority one started on the same device, the
/// higher-priority one must have started no later.
fn assert_no_priority_inversion(report: &flashmem_serve::ServeReport) {
    for a in report.outcomes.iter().filter(|o| o.succeeded()) {
        for b in report.outcomes.iter().filter(|o| o.succeeded()) {
            if a.seq == b.seq || a.device_index != b.device_index {
                continue;
            }
            if a.priority > b.priority && a.arrival_ms <= b.start_ms + 1e-9 {
                assert!(
                    a.start_ms <= b.start_ms + 1e-9,
                    "priority inversion: seq {} (prio {}, arrived {:.0}, started {:.0}) \
                     behind seq {} (prio {}, started {:.0})",
                    a.seq,
                    a.priority,
                    a.arrival_ms,
                    a.start_ms,
                    b.seq,
                    b.priority,
                    b.start_ms
                );
            }
        }
    }
}

#[test]
fn priority_policy_never_inverts_priorities() {
    let models = [
        ModelZoo::gptneo_small(),
        ModelZoo::resnet50(),
        ModelZoo::vit(),
    ];
    // Seeded bursty arrivals: many requests pending simultaneously is the
    // regime where inversion would show.
    for seed in [1u64, 7, 23] {
        let workload = WorkloadSpec {
            pattern: ArrivalPattern::Bursty {
                burst_size: 4,
                gap_ms: 500.0,
            },
            requests: 12,
            tenants: 3,
            priority_levels: 4,
            seed,
        };
        let requests = workload.generate(&models);
        let report = ServeEngine::new(
            vec![DeviceSpec::oneplus_12()],
            FlashMemConfig::memory_priority(),
        )
        .with_policy(Box::new(PriorityPolicy::new()))
        .run(&requests)
        .expect("priority run succeeds");
        assert_eq!(report.completed(), 12, "seed {seed}");
        assert_no_priority_inversion(&report);
    }
}

#[test]
fn plan_cache_hits_return_identical_artifacts_to_cold_compiles() {
    let cache = ArtifactCache::new();
    let device = DeviceSpec::oneplus_12();
    let model = ModelZoo::gptneo_small();
    let engine = FlashMem::new(device.clone()).with_config(FlashMemConfig::memory_priority());

    let (cold, was_hit_cold) = cache.compile(&engine, &model, &device).unwrap();
    let (warm, was_hit_warm) = cache.compile(&engine, &model, &device).unwrap();
    assert!(!was_hit_cold);
    assert!(was_hit_warm);

    // Identical artifacts execute to identical reports (ExecutionReport is
    // PartialEq over every float field, so this is exact).
    let from_cold = engine.execute(&model, &cold, &device).unwrap();
    let from_warm = engine.execute(&model, &warm, &device).unwrap();
    assert_eq!(from_cold, from_warm);

    // A fresh compile outside the cache is also identical: compilation is
    // deterministic, caching only skips work.
    // UFCS: `FlashMem` also has an inherent graph-level `compile`.
    let recompiled = InferenceEngine::compile(&engine, &model, &device).unwrap();
    let from_recompiled = engine.execute(&model, &recompiled, &device).unwrap();
    assert_eq!(from_cold, from_recompiled);
}

#[test]
fn serving_twice_with_a_shared_cache_hits_and_reproduces_latencies() {
    let cache = std::sync::Arc::new(ArtifactCache::new());
    let requests: Vec<ServeRequest> = queue()
        .into_iter()
        .map(|m| ServeRequest::new(m, "app"))
        .collect();
    let run = |cache: &std::sync::Arc<ArtifactCache>| {
        ServeEngine::new(
            vec![DeviceSpec::oneplus_12()],
            FlashMemConfig::memory_priority(),
        )
        .with_cache(std::sync::Arc::clone(cache))
        .run(&requests)
        .expect("serve run succeeds")
    };
    let first = run(&cache);
    let misses_after_first = cache.stats().misses;
    let second = run(&cache);
    // Second run compiles nothing new…
    assert_eq!(cache.stats().misses, misses_after_first);
    assert!(cache.stats().hits >= requests.len() as u64);
    // …and produces bit-identical latencies.
    for (a, b) in first.outcomes.iter().zip(&second.outcomes) {
        assert_eq!(a.latency_ms, b.latency_ms);
        assert_eq!(a.peak_memory_mb, b.peak_memory_mb);
    }
    assert!(second.outcomes.iter().all(|o| o.cache_hit));
}

#[test]
fn affinity_policy_pins_each_tenant_to_one_device() {
    let fleet = vec![
        DeviceSpec::oneplus_12(),
        DeviceSpec::galaxy_tab_s9(),
        DeviceSpec::pixel_8(),
    ];
    let workload = WorkloadSpec {
        pattern: ArrivalPattern::Steady { interval_ms: 100.0 },
        requests: 12,
        tenants: 4,
        priority_levels: 1,
        seed: 5,
    };
    let requests = workload.generate(&[ModelZoo::gptneo_small(), ModelZoo::vit()]);
    let report = ServeEngine::new(fleet, FlashMemConfig::memory_priority())
        .with_policy(Box::new(AffinityPolicy::new()))
        .run(&requests)
        .expect("affinity run succeeds");
    let mut tenant_device: std::collections::HashMap<&str, usize> = Default::default();
    for outcome in &report.outcomes {
        let device = tenant_device
            .entry(outcome.tenant.as_str())
            .or_insert(outcome.device_index);
        assert_eq!(
            *device, outcome.device_index,
            "tenant {} bounced between devices",
            outcome.tenant
        );
    }
}

#[test]
fn tenant_cap_serializes_a_tenants_concurrent_requests() {
    let model = ModelZoo::gptneo_small();
    let requests = vec![
        ServeRequest::new(model.clone(), "capped"),
        ServeRequest::new(model.clone(), "capped"),
        ServeRequest::new(model, "free"),
    ];
    // Cap the tenant at 1.5× one request's estimated working set: enough for
    // one in-flight inference, not two.
    let device = DeviceSpec::oneplus_12();
    let engine = FlashMem::new(device.clone()).with_config(FlashMemConfig::memory_priority());
    let artifact = InferenceEngine::compile(&engine, &requests[0].model, &device).unwrap();
    let estimate = flashmem_serve::server::estimate_resident_bytes(&artifact, &requests[0].model);
    let report = ServeEngine::new(vec![device], FlashMemConfig::memory_priority())
        .with_policy(Box::new(PriorityPolicy::with_max_in_flight(3)))
        .with_tenant_cap("capped", estimate + estimate / 2)
        .run(&requests)
        .expect("capped run succeeds");
    assert_eq!(report.completed(), 3);
    let capped: Vec<_> = report
        .outcomes
        .iter()
        .filter(|o| o.tenant == "capped")
        .collect();
    assert_eq!(capped.len(), 2);
    // The tenant's two requests must not have overlapped in time.
    let (a, b) = (capped[0], capped[1]);
    let serialized = a.completion_ms <= b.start_ms + 1e-6 || b.completion_ms <= a.start_ms + 1e-6;
    assert!(
        serialized,
        "capped tenant overlapped: [{:.0},{:.0}] vs [{:.0},{:.0}]",
        a.start_ms, a.completion_ms, b.start_ms, b.completion_ms
    );
}
