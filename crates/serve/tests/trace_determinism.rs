//! Cross-layer trace determinism.
//!
//! The tracing design promises two things the rest of the repo's
//! determinism discipline depends on:
//!
//! 1. **Width-independence** — each device fills its own recorder inside
//!    its pool job and the buffers merge at the same ordered commit point
//!    as the outcomes, so the exported Chrome trace of a `--threads 4` run
//!    is *byte-identical* to the width-1 (exact serial path) run.
//! 2. **Zero perturbation** — enabling tracing must not change the
//!    schedule: a traced report with its trace stripped is byte-identical
//!    to the untraced report.

use std::sync::Arc;

use flashmem_core::pool::ThreadPool;
use flashmem_core::{ArtifactCache, FlashMemConfig};
use flashmem_gpu_sim::DeviceSpec;
use flashmem_graph::ModelZoo;
use flashmem_serve::{
    chrome_trace, ArrivalPattern, DeadlinePreemptivePolicy, EdfPolicy, FifoPolicy, SchedulePolicy,
    ServeEngine, ServeReport, ServeRequest, TraceConfig, TraceKind, WorkloadSpec,
};

fn workload() -> Vec<ServeRequest> {
    WorkloadSpec {
        pattern: ArrivalPattern::Bursty {
            burst_size: 6,
            gap_ms: 900.0,
        },
        requests: 12,
        tenants: 3,
        priority_levels: 3,
        seed: 0xD7_2ACE,
    }
    .generate(&[ModelZoo::gptneo_small(), ModelZoo::vit()])
}

/// A fresh engine per run: the plan cache's warmth is process-history
/// dependent, so sharing one cache across runs would make the *first* run
/// see different cache hit/miss events than the second.
fn engine(policy: Box<dyn SchedulePolicy>, trace: TraceConfig) -> ServeEngine {
    ServeEngine::new(
        vec![DeviceSpec::oneplus_12(), DeviceSpec::pixel_8()],
        FlashMemConfig::memory_priority(),
    )
    .with_policy(policy)
    .with_cache(Arc::new(ArtifactCache::new()))
    .with_tenant_slo("tenant-0", 900.0)
    .with_tenant_slo("tenant-1", 2_500.0)
    .with_tenant_slo("tenant-2", 6_000.0)
    .with_trace(trace)
}

type PolicyFactory = Box<dyn Fn() -> Box<dyn SchedulePolicy>>;

fn traced_run(make_policy: &dyn Fn() -> Box<dyn SchedulePolicy>, threads: usize) -> ServeReport {
    let pool = ThreadPool::with_threads(threads);
    engine(make_policy(), TraceConfig::enabled())
        .run_on(&pool, &workload())
        .expect("traced run succeeds")
}

#[test]
fn exported_trace_is_byte_identical_across_pool_widths() {
    let policies: Vec<(&str, PolicyFactory)> = vec![
        ("fifo", Box::new(|| Box::new(FifoPolicy) as _)),
        (
            "edf",
            Box::new(|| Box::new(EdfPolicy::with_max_in_flight(2)) as _),
        ),
        (
            "deadline_preemptive",
            Box::new(|| Box::new(DeadlinePreemptivePolicy::new()) as _),
        ),
    ];
    for (name, make_policy) in &policies {
        let serial = traced_run(make_policy, 1);
        let parallel = traced_run(make_policy, 4);
        let serial_trace = serial.trace.as_ref().expect("tracing was enabled");
        let parallel_trace = parallel.trace.as_ref().expect("tracing was enabled");
        assert!(
            serial_trace.total_events() > 0,
            "{name}: traced run recorded nothing"
        );
        assert_eq!(
            chrome_trace(serial_trace),
            chrome_trace(parallel_trace),
            "{name}: exported trace diverged between pool widths"
        );
        // The reports agree too — same placement, same schedule.
        assert_eq!(
            format!("{serial:?}"),
            format!("{parallel:?}"),
            "{name}: traced reports diverged between pool widths"
        );
    }
}

#[test]
fn tracing_does_not_perturb_the_report() {
    let untraced = engine(Box::new(FifoPolicy), TraceConfig::disabled())
        .run(&workload())
        .expect("untraced run succeeds");
    let mut traced = engine(Box::new(FifoPolicy), TraceConfig::enabled())
        .run(&workload())
        .expect("traced run succeeds");
    assert!(untraced.trace.is_none());
    assert!(traced.trace.is_some());
    // Strip the recording itself; everything else must be byte-identical.
    traced.trace = None;
    assert_eq!(format!("{untraced:?}"), format!("{traced:?}"));
}

#[test]
fn request_lifecycles_cover_arrival_to_completion() {
    let report = traced_run(&|| Box::new(DeadlinePreemptivePolicy::new()) as _, 4);
    let trace = report.trace.as_ref().expect("tracing was enabled");
    // Preemptive single-slot traffic under bursts exercises the whole
    // event vocabulary: queue waits, admissions, command spans, runs and
    // completions at minimum.
    let kinds: std::collections::HashSet<TraceKind> = trace
        .processes
        .iter()
        .flat_map(|p| p.events.iter().map(|e| e.kind))
        .collect();
    for kind in [
        TraceKind::QueueWait,
        TraceKind::Admit,
        TraceKind::Command,
        TraceKind::Running,
        TraceKind::Complete,
    ] {
        assert!(kinds.contains(&kind), "no {kind:?} event recorded");
    }
    // Cache activity is traced per admission: 12 requests, each either a
    // hit or a miss.
    let cache_events = trace
        .processes
        .iter()
        .flat_map(|p| p.events.iter())
        .filter(|e| matches!(e.kind, TraceKind::CacheHit | TraceKind::CacheMiss))
        .count();
    assert_eq!(cache_events, report.outcomes.len());
    // Every completed request's phase breakdown reconciles exactly.
    for outcome in &report.outcomes {
        assert!(
            (outcome.phases.total_ms() - outcome.latency_ms).abs() < 1e-6,
            "{:?} does not sum to {}",
            outcome.phases,
            outcome.latency_ms
        );
    }
}

#[test]
fn ring_buffer_cap_bounds_the_trace_and_counts_drops() {
    let report = engine(
        Box::new(FifoPolicy),
        TraceConfig::enabled().with_events_per_device(4),
    )
    .run(&workload())
    .expect("capped traced run succeeds");
    let trace = report.trace.as_ref().expect("tracing was enabled");
    assert!(trace.processes.iter().all(|p| p.events.len() <= 4));
    assert!(
        trace.dropped_events() > 0,
        "a 4-event ring must drop under this workload"
    );
    // Dropping trace events must not change the schedule either.
    let uncapped = engine(Box::new(FifoPolicy), TraceConfig::enabled())
        .run(&workload())
        .expect("uncapped traced run succeeds");
    let strip = |mut r: ServeReport| {
        r.trace = None;
        format!("{r:?}")
    };
    assert_eq!(strip(report), strip(uncapped));
}
