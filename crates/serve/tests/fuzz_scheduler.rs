//! Seeded scheduler fuzz harness.
//!
//! A SplitMix64-driven property loop that hammers **every** scheduling
//! policy (FIFO, priority, affinity, preemptive-priority, EDF,
//! least-laxity, deadline-preemptive) with randomized workloads (arrival
//! pattern × request count × tenants × priorities × deadlines × fleet size
//! × tenant caps) and asserts the scheduler's invariants on each run:
//!
//! * **No lost or duplicated requests** — every submitted sequence number
//!   appears in the outcomes exactly once.
//! * **Timeline sanity / monotone completions** — no request starts before
//!   it arrives or completes before it starts, the device makespan covers
//!   every completion, and under exclusive (single-slot, non-preemptive)
//!   policies the per-device execution windows are disjoint with
//!   completions monotone in admission order.
//! * **Per-tenant memory caps hold** — at no instant does the sum of
//!   resident-byte reservations of one tenant's overlapping requests on one
//!   device exceed the configured cap, and when a *fleet-wide* cap is
//!   configured the same holds for the tenant's reservations summed across
//!   every device of the fleet.
//! * **Overload control is an exact partition** — with randomized
//!   [`OverloadControl`] knobs (bounded queues, admission control, steal),
//!   `accepted + rejected == submitted`, every rejection carries a typed
//!   [`RejectCause`], queue-depth high-water marks respect the bound, and
//!   requests are only stolen when stealing is armed (and never onto their
//!   own home device).
//! * **Accounting closes** — the SLO summary equals a recount from the
//!   outcomes and every miss is attributed to exactly one cause; only
//!   preemptive policies ever preempt.
//! * **Determinism** — the same seed reproduces a byte-identical
//!   `ServeReport` (full `Debug` form of every outcome float, trace sample
//!   and counter; only cache-*warmth* telemetry — the process-wide
//!   plan-cache tallies and each outcome's `cache_hit` flag, which record
//!   which scenarios happened to run (and so warm keys) first across the
//!   whole harness, not scheduler behaviour —
//!   is excluded), and running the seed × policy scenarios through the
//!   work-stealing pool produces reports byte-identical to the serial loop.
//!
//! The seed set is pinned so CI failures replay exactly. All runs share one
//! process-wide [`ArtifactCache`]: LC-OPG solves are the expensive part and
//! re-solving identical plans per run would tell the fuzzer nothing new
//! about the *scheduler*. There is no warm-up pass — when parallel runs race
//! on an uncompiled key, the cache's per-key in-flight deduplication makes
//! exactly one of them solve while the rest block and reuse the artifact.
//! The scenario fan-out runs on [`pool::global`], so `FLASHMEM_THREADS=1`
//! pins the harness to the exact serial code path for bisection.

use std::sync::{Arc, OnceLock};

use flashmem_core::pool::{self, ThreadPool};
use flashmem_core::{ArtifactCache, FlashMemConfig};
use flashmem_gpu_sim::rng::SplitMix64;
use flashmem_gpu_sim::DeviceSpec;
use flashmem_graph::{ModelSpec, ModelZoo};
use flashmem_serve::{
    AffinityPolicy, ArrivalPattern, BatchConfig, DeadlinePreemptivePolicy, DecodeEngine,
    DecodeWorkloadSpec, EdfPolicy, FaultPlan, FifoPolicy, LeastLaxityPolicy, MissCause,
    OverloadControl, PreemptivePriorityPolicy, PriorityPolicy, RecoveryControl, RejectCause,
    SchedulePolicy, ServeEngine, ServeReport, ServeRequest, SloSummary, TraceConfig, TraceKind,
    WorkloadSpec,
};

/// Pinned seeds — CI runs exactly these, so a failure names its repro.
const SEEDS: [u64; 8] = [
    0xF1A5_0001,
    0xF1A5_0002,
    0xF1A5_0003,
    0x0D00_D1E5,
    0x0BAD_CAFE,
    42,
    7_777_777,
    0x5EED_5EED,
];

const MIB: u64 = 1024 * 1024;

/// The process-wide plan cache. No warm-up pass: first-touch compiles —
/// including parallel races on the same key — collapse onto single LC-OPG
/// solves through the cache's in-flight deduplication, which is exactly
/// what the deleted serial warm-up loop existed to guarantee.
fn shared_cache() -> Arc<ArtifactCache> {
    static CACHE: OnceLock<Arc<ArtifactCache>> = OnceLock::new();
    CACHE.get_or_init(|| Arc::new(ArtifactCache::new())).clone()
}

/// Every policy under test, rebuilt fresh per run, with whether it runs the
/// device exclusively (single slot, non-preemptive).
fn policies() -> Vec<(&'static str, bool, Box<dyn SchedulePolicy>)> {
    vec![
        ("fifo", true, Box::new(FifoPolicy)),
        (
            "priority",
            false,
            Box::new(PriorityPolicy::with_max_in_flight(2)),
        ),
        ("affinity", false, Box::new(AffinityPolicy::new())),
        (
            "preemptive",
            false,
            Box::new(PreemptivePriorityPolicy::new()),
        ),
        ("edf", true, Box::new(EdfPolicy::new())),
        (
            "least_laxity",
            false,
            Box::new(LeastLaxityPolicy::with_max_in_flight(2)),
        ),
        (
            "deadline_preemptive",
            false,
            Box::new(DeadlinePreemptivePolicy::new()),
        ),
    ]
}

struct FuzzCase {
    requests: Vec<ServeRequest>,
    fleet: usize,
    tenants: usize,
    /// Per-tenant SLO deadline in ms, indexed by tenant number.
    slos: Vec<Option<f64>>,
    /// Memory cap on `tenant-0`, when the dice say so.
    cap_bytes: Option<u64>,
    /// Fleet-wide cap on `tenant-0` as `(bytes, shards)`, when the dice say
    /// so.
    fleet_cap: Option<(u64, usize)>,
    /// Randomized overload knobs (bounded queues, admission control, steal).
    overload: OverloadControl,
}

/// Draw a random-but-reproducible serving scenario from `seed`.
fn random_case(seed: u64) -> FuzzCase {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let pattern = match rng.gen_range_inclusive(0, 2) {
        0 => ArrivalPattern::Steady {
            interval_ms: 60.0 + rng.gen_f64() * 240.0,
        },
        1 => ArrivalPattern::Poisson {
            mean_interval_ms: 80.0 + rng.gen_f64() * 220.0,
        },
        _ => ArrivalPattern::Bursty {
            burst_size: rng.gen_range_inclusive(2, 4) as usize,
            gap_ms: 300.0 + rng.gen_f64() * 900.0,
        },
    };
    let tenants = rng.gen_range_inclusive(1, 3) as usize;
    let spec = WorkloadSpec {
        pattern,
        requests: rng.gen_range_inclusive(4, 7) as usize,
        tenants,
        priority_levels: rng.gen_range_inclusive(1, 3) as u8,
        seed: rng.next_u64(),
    };
    let models: Vec<ModelSpec> = vec![ModelZoo::gptneo_small(), ModelZoo::vit()];
    let mut requests = spec.generate(&models);
    // Sprinkle request-level deadlines on top of the tenant defaults —
    // including the occasional provably-unmeetable 1 ms budget so admission
    // control has something to prove.
    for request in &mut requests {
        if rng.gen_range_inclusive(0, 3) == 0 {
            request.deadline_ms = Some(300.0 + rng.gen_f64() * 4_000.0);
        }
        if rng.gen_range_inclusive(0, 7) == 0 {
            request.deadline_ms = Some(1.0);
        }
    }
    let slos = (0..tenants)
        .map(|_| (rng.gen_range_inclusive(0, 2) != 0).then(|| 400.0 + rng.gen_f64() * 3_600.0))
        .collect();
    let cap_bytes = (rng.gen_range_inclusive(0, 1) == 0).then_some(1_600 * MIB);
    let fleet_cap = (rng.gen_range_inclusive(0, 2) == 0)
        .then(|| (2_400 * MIB, rng.gen_range_inclusive(1, 2) as usize));
    let mut overload = OverloadControl::disabled();
    if rng.gen_range_inclusive(0, 1) == 0 {
        overload = overload.with_queue_bound(rng.gen_range_inclusive(1, 3) as usize);
    }
    if rng.gen_range_inclusive(0, 1) == 0 {
        overload = overload.with_admission_control();
    }
    if rng.gen_range_inclusive(0, 1) == 0 {
        overload = overload.with_steal();
    }
    FuzzCase {
        requests,
        fleet: rng.gen_range_inclusive(1, 2) as usize,
        tenants,
        slos,
        cap_bytes,
        fleet_cap,
        overload,
    }
}

fn run_case(case: &FuzzCase, policy: Box<dyn SchedulePolicy>) -> ServeReport {
    let fleet: Vec<DeviceSpec> = (0..case.fleet)
        .map(|i| {
            if i % 2 == 0 {
                DeviceSpec::oneplus_12()
            } else {
                DeviceSpec::pixel_8()
            }
        })
        .collect();
    let mut engine = ServeEngine::new(fleet, FlashMemConfig::memory_priority())
        .with_policy(policy)
        .with_cache(shared_cache());
    for (tenant, slo) in case.slos.iter().enumerate() {
        if let Some(deadline) = slo {
            engine = engine.with_tenant_slo(format!("tenant-{tenant}"), *deadline);
        }
    }
    if let Some(cap) = case.cap_bytes {
        engine = engine.with_tenant_cap("tenant-0", cap);
    }
    if let Some((bytes, shards)) = case.fleet_cap {
        engine = engine.with_fleet_tenant_cap("tenant-0", bytes, shards);
    }
    engine = engine.with_overload_control(case.overload);
    engine.run(&case.requests).expect("fuzz run succeeds")
}

const EPS: f64 = 1e-6;

fn check_invariants(report: &ServeReport, case: &FuzzCase, policy: &str, exclusive: bool) {
    let label = |extra: &str| format!("seeded case under `{policy}`: {extra}\n{report}");

    // No lost or duplicated requests.
    assert_eq!(
        report.outcomes.len(),
        case.requests.len(),
        "{}",
        label("count")
    );
    let mut seqs: Vec<usize> = report.outcomes.iter().map(|o| o.seq).collect();
    seqs.sort_unstable();
    assert_eq!(
        seqs,
        (0..case.requests.len()).collect::<Vec<_>>(),
        "{}",
        label("sequence numbers must be a permutation of the submissions")
    );

    // Timeline sanity per outcome.
    let makespan = report.makespan_ms();
    for o in &report.outcomes {
        assert!(
            o.start_ms >= o.arrival_ms - EPS,
            "{}",
            label("start before arrival")
        );
        assert!(
            o.completion_ms >= o.start_ms - EPS,
            "{}",
            label("completes before start")
        );
        assert!(
            (o.queue_wait_ms - (o.start_ms - o.arrival_ms).max(0.0)).abs() < EPS,
            "{}",
            label("queue wait accounting")
        );
        assert!(
            (o.latency_ms - (o.completion_ms - o.arrival_ms).max(0.0)).abs() < EPS,
            "{}",
            label("latency accounting")
        );
        assert!(
            // A rejected request never executes: its completion is pinned to
            // its arrival, which may fall after all real work finished.
            o.rejected.is_some() || o.completion_ms <= makespan + EPS,
            "{}",
            label("completion past makespan")
        );
        assert!(o.suspended_ms >= 0.0 && o.resume_penalty_ms >= 0.0);
        if o.succeeded() {
            assert!(o.device_index < report.devices.len());
        }
    }

    // Overload control is an exact partition: every submitted request is
    // either accepted or rejected-with-a-cause, never silently dropped.
    assert_eq!(
        report.accepted() + report.rejected(),
        case.requests.len(),
        "{}",
        label("accepted + rejected must equal submitted")
    );
    let shed = report.shed_by_cause();
    assert_eq!(
        shed.total(),
        report.rejected(),
        "{}",
        label("shed breakdown recount")
    );
    for o in &report.outcomes {
        if let Some(cause) = o.rejected {
            assert!(o.error.is_none(), "{}", label("rejected with an error"));
            assert_eq!(o.latency_ms, 0.0, "{}", label("rejected with latency"));
            assert_eq!(o.slo_met(), None, "{}", label("rejected in SLO tally"));
            if cause == RejectCause::DeadlineUnmeetable {
                assert!(
                    o.admission_laxity_ms.unwrap_or(0.0) < 0.0,
                    "{}",
                    label("deadline reject without provably negative laxity")
                );
                assert!(
                    case.overload.admission_control,
                    "{}",
                    label("deadline reject with admission control off")
                );
            } else {
                assert!(
                    case.overload.queue_bound.is_some(),
                    "{}",
                    label("queue-full reject without a bound")
                );
            }
        }
        if let Some(home) = o.stolen_from {
            assert!(case.overload.steal, "{}", label("stolen with steal off"));
            assert_ne!(
                home,
                o.device_index,
                "{}",
                label("stolen onto its own home device")
            );
        }
    }
    if !case.overload.steal {
        assert_eq!(
            report.stolen(),
            0,
            "{}",
            label("steal tally with steal off")
        );
    }
    if let Some(bound) = case.overload.queue_bound {
        for device in &report.devices {
            assert!(
                device.queue_depth_high_water <= bound,
                "{}",
                label(&format!(
                    "queue depth {} exceeded bound {bound}",
                    device.queue_depth_high_water
                ))
            );
        }
    }

    // Fleet-wide tenant cap: the tenant's overlapping reservations summed
    // across *every* device stay within the fleet cap.
    if let Some((cap, _)) = case.fleet_cap {
        let windows: Vec<(f64, f64, u64)> = report
            .outcomes
            .iter()
            .filter(|o| o.succeeded() && o.tenant == "tenant-0")
            .map(|o| (o.start_ms, o.completion_ms, o.resident_estimate_bytes))
            .collect();
        for &(start, _, _) in &windows {
            let resident: u64 = windows
                .iter()
                .filter(|(s, c, _)| *s <= start + EPS && start < *c - EPS)
                .map(|(_, _, bytes)| bytes)
                .sum();
            assert!(
                resident <= cap,
                "{}",
                label(&format!("fleet tenant cap exceeded: {resident} > {cap}"))
            );
        }
    }

    // Exclusive policies: device windows are disjoint and completions are
    // monotone in simulated time (admission order = start order).
    if exclusive {
        for device in 0..report.devices.len() {
            let mut windows: Vec<(f64, f64)> = report
                .outcomes
                .iter()
                .filter(|o| o.succeeded() && o.device_index == device)
                .map(|o| (o.start_ms, o.completion_ms))
                .collect();
            windows.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
            for pair in windows.windows(2) {
                assert!(
                    pair[1].0 >= pair[0].1 - EPS,
                    "{}",
                    label("exclusive windows overlap")
                );
                assert!(
                    pair[1].1 >= pair[0].1 - EPS,
                    "{}",
                    label("completions not monotone")
                );
            }
        }
    }

    // Per-tenant cap: at every admission instant, the tenant's overlapping
    // reservations on that device stay within the cap.
    if let Some(cap) = case.cap_bytes {
        for device in 0..report.devices.len() {
            let windows: Vec<(f64, f64, u64)> = report
                .outcomes
                .iter()
                .filter(|o| o.succeeded() && o.tenant == "tenant-0" && o.device_index == device)
                .map(|o| (o.start_ms, o.completion_ms, o.resident_estimate_bytes))
                .collect();
            for &(start, _, _) in &windows {
                let resident: u64 = windows
                    .iter()
                    .filter(|(s, c, _)| *s <= start + EPS && start < *c - EPS)
                    .map(|(_, _, bytes)| bytes)
                    .sum();
                assert!(
                    resident <= cap,
                    "{}",
                    label(&format!("tenant cap exceeded: {resident} > {cap}"))
                );
            }
        }
    }

    // Accounting closes: the SLO summary equals a recount, and every miss
    // has exactly one cause.
    let recount = SloSummary::from_outcomes(&report.outcomes);
    assert_eq!(report.slo, recount, "{}", label("slo summary recount"));
    let causes = [
        recount.missed_queue_wait,
        recount.missed_execution,
        recount.missed_preemption,
        recount.missed_failed,
    ];
    assert_eq!(
        causes.iter().sum::<usize>(),
        recount.missed(),
        "{}",
        label("miss causes")
    );
    for o in &report.outcomes {
        match o.miss_cause() {
            Some(MissCause::Failed) => assert!(!o.succeeded()),
            Some(_) => assert_eq!(o.slo_met(), Some(false)),
            None => assert_ne!(o.slo_met(), Some(false)),
        }
    }
    let preemption_recount: usize = report.outcomes.iter().map(|o| o.preemptions).sum();
    assert_eq!(
        report.preemptions,
        preemption_recount,
        "{}",
        label("preemption recount")
    );
    if !matches!(policy, "preemptive" | "deadline_preemptive") {
        assert_eq!(
            report.preemptions,
            0,
            "{}",
            label("non-preemptive policy preempted")
        );
        for o in &report.outcomes {
            assert_eq!(o.suspended_ms, 0.0);
            assert_eq!(o.resume_penalty_ms, 0.0);
        }
    }
    assert_eq!(report.policy, policy);
    assert!(case.tenants >= 1);
}

/// Every (pinned seed × policy) scenario of the harness, in the fixed
/// submission order the serial loop used.
fn scenarios() -> Vec<(u64, usize)> {
    let policy_count = policies().len();
    SEEDS
        .iter()
        .flat_map(|&seed| (0..policy_count).map(move |policy| (seed, policy)))
        .collect()
}

/// Run one (seed, policy-index) scenario — rebuilt from scratch, so it can
/// run on any pool worker.
fn run_scenario((seed, policy_index): (u64, usize)) -> ServeReport {
    let case = random_case(seed);
    let (_, _, policy) = policies().remove(policy_index);
    run_case(&case, policy)
}

#[test]
fn every_policy_upholds_invariants_on_every_pinned_seed() {
    // The 56 scenarios fan out on the process-wide pool (FLASHMEM_THREADS=1
    // pins the serial path); the invariant checks run on the collected
    // reports in deterministic scenario order so failures replay exactly.
    let scenarios = scenarios();
    let reports = pool::global().parallel_map(scenarios.clone(), run_scenario);
    for (&(seed, policy_index), report) in scenarios.iter().zip(&reports) {
        let case = random_case(seed);
        let (name, exclusive, _) = policies().remove(policy_index);
        check_invariants(report, &case, name, exclusive);
    }
}

/// The determinism-relevant view of a report: everything except
/// cache-warmth telemetry — the process-wide plan-cache counters and each
/// outcome's `cache_hit` flag — which records whether earlier scenarios in
/// the harness's process history had already warmed a key when this run
/// began, not scheduler behaviour.
fn comparable(report: &ServeReport) -> String {
    use std::fmt::Write as _;
    let mut view = String::new();
    for o in &report.outcomes {
        // Exhaustive destructure on purpose — no `..` rest pattern — so a
        // field added to `RequestOutcome` later fails to compile here and
        // forces an explicit include/exclude decision for the determinism
        // oracle instead of being silently dropped from it.
        let flashmem_serve::RequestOutcome {
            seq,
            model,
            tenant,
            priority,
            device,
            device_index,
            arrival_ms,
            start_ms,
            completion_ms,
            queue_wait_ms,
            latency_ms,
            deadline_ms,
            admission_laxity_ms,
            resident_estimate_bytes,
            preemptions,
            suspended_ms,
            resume_penalty_ms,
            cache_hit: _, // process-wide cache warmth, not scheduler behaviour
            peak_memory_mb,
            phases,
            rejected,
            stolen_from,
            failure,
            retries,
            failed_over,
            error,
            report,
            decode,
        } = o;
        let _ = write!(
            view,
            "{seq:?}|{model:?}|{tenant:?}|{priority:?}|{device:?}|{device_index:?}|{arrival_ms:?}|{start_ms:?}|{completion_ms:?}|{queue_wait_ms:?}|{latency_ms:?}|{deadline_ms:?}|{admission_laxity_ms:?}|{resident_estimate_bytes:?}|{preemptions:?}|{suspended_ms:?}|{resume_penalty_ms:?}|{peak_memory_mb:?}|{phases:?}|{rejected:?}|{stolen_from:?}|{failure:?}|{retries:?}|{failed_over:?}|{error:?}|{report:?}|{decode:?};",
        );
    }
    let _ = write!(
        view,
        "#{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
        report.devices,
        report.latency,
        report.per_priority,
        report.slo,
        report.preemptions,
        report.throughput_rps,
        report.ttft,
        report.itl,
        (report.decode_tokens, report.tokens_per_s),
    );
    view
}

#[test]
fn parallel_harness_reports_are_byte_identical_to_serial() {
    // The tentpole's acceptance bar: the whole seed × policy matrix through
    // a 4-wide pool must reproduce the 1-wide (exact serial path) reports
    // byte for byte.
    let scenarios = scenarios();
    let serial = ThreadPool::with_threads(1).parallel_map(scenarios.clone(), run_scenario);
    let parallel = ThreadPool::with_threads(4).parallel_map(scenarios.clone(), run_scenario);
    for (((seed, policy_index), a), b) in scenarios.iter().zip(&serial).zip(&parallel) {
        let name = policies()[*policy_index].0;
        assert_eq!(
            comparable(a),
            comparable(b),
            "seed {seed:#x} under `{name}` diverged between serial and parallel harnesses"
        );
    }
}

#[test]
fn same_seed_reproduces_a_byte_identical_report() {
    // One determinism pair per policy, walking the pinned seed set.
    for (which, _) in policies().iter().enumerate() {
        let seed = SEEDS[which % SEEDS.len()];
        let case = random_case(seed);
        let name = policies()[which].0;
        let first = run_case(&case, policies().remove(which).2);
        let second = run_case(&case, policies().remove(which).2);
        // The Debug form covers every outcome float, every timeline/trace
        // sample and every counter: only byte equality passes.
        assert_eq!(
            comparable(&first),
            comparable(&second),
            "seed {seed:#x} under `{name}` diverged between identical runs"
        );
    }
}

#[test]
fn workload_cases_are_themselves_deterministic() {
    for &seed in &SEEDS {
        let a = random_case(seed);
        let b = random_case(seed);
        assert_eq!(a.requests.len(), b.requests.len());
        for (x, y) in a.requests.iter().zip(&b.requests) {
            assert_eq!(x.arrival_ms, y.arrival_ms);
            assert_eq!(x.tenant, y.tenant);
            assert_eq!(x.priority, y.priority);
            assert_eq!(x.deadline_ms, y.deadline_ms);
            assert_eq!(x.model.abbr, y.model.abbr);
        }
        assert_eq!(a.fleet, b.fleet);
        assert_eq!(a.slos, b.slos);
        assert_eq!(a.cap_bytes, b.cap_bytes);
        assert_eq!(a.fleet_cap, b.fleet_cap);
        assert_eq!(a.overload, b.overload);
    }
}

// === Continuous-batching decode fuzz ====================================
//
// The same seeded-property discipline pointed at the `DecodeEngine`:
// randomized token-count ranges and batching knobs, with the decode-path
// invariants checked on every run — no token lost or duplicated across
// join/leave, batch membership changes only at step boundaries (overlapping
// requests of one model on one device share their step-end instants), the
// KV-cache reservation math closes per request, and reports stay
// byte-identical across pool widths.

/// A randomized-but-reproducible decode scenario.
struct DecodeFuzzCase {
    requests: Vec<ServeRequest>,
    fleet: usize,
    batch: BatchConfig,
}

/// Draw a decode scenario from `seed`: 4–10 generative requests over two
/// autoregressive families (so steps group into per-model sub-batches),
/// prompts of 4–64 tokens, outputs of 2–32 tokens, and randomized
/// continuous-batching knobs.
fn random_decode_case(seed: u64) -> DecodeFuzzCase {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0xDEC0_DE00);
    let pattern = if rng.gen_range_inclusive(0, 1) == 0 {
        ArrivalPattern::Steady {
            interval_ms: 20.0 + rng.gen_f64() * 120.0,
        }
    } else {
        ArrivalPattern::Bursty {
            burst_size: rng.gen_range_inclusive(2, 4) as usize,
            gap_ms: 200.0 + rng.gen_f64() * 600.0,
        }
    };
    let spec = DecodeWorkloadSpec {
        pattern,
        requests: rng.gen_range_inclusive(4, 10) as usize,
        tenants: rng.gen_range_inclusive(1, 3) as usize,
        prompt_tokens: (4, 64),
        output_tokens: (2, 32),
        seed: rng.next_u64(),
    };
    let models = vec![ModelZoo::gptneo_small(), ModelZoo::whisper_medium()];
    let requests = spec.generate(&models);
    // The budget range deliberately straddles the workload's per-request
    // max context (<= 95 tokens): tight draws gate joins hard, loose draws
    // let the batch fill to `max_batch`. No draw makes a single request
    // infeasible, so every request must complete.
    let batch = BatchConfig {
        max_batch: rng.gen_range_inclusive(2, 8) as usize,
        token_budget: rng.gen_range_inclusive(128, 512),
        waiting_served_ratio: 0.8 + rng.gen_f64(),
    };
    DecodeFuzzCase {
        requests,
        fleet: rng.gen_range_inclusive(1, 2) as usize,
        batch,
    }
}

fn run_decode_case(case: &DecodeFuzzCase, pool: &ThreadPool) -> ServeReport {
    let fleet: Vec<DeviceSpec> = (0..case.fleet)
        .map(|i| {
            if i % 2 == 0 {
                DeviceSpec::oneplus_12()
            } else {
                DeviceSpec::pixel_8()
            }
        })
        .collect();
    DecodeEngine::new(fleet, FlashMemConfig::memory_priority())
        .with_cache(shared_cache())
        .with_batching(case.batch)
        .run_on(pool, &case.requests)
        .expect("decode fuzz run succeeds")
}

/// Absolute token-emission instants of a completed decode outcome: the
/// first token at prefill completion (`arrival + ttft`), every later one an
/// ITL gap after its predecessor.
fn token_times(o: &flashmem_serve::RequestOutcome) -> Vec<f64> {
    let d = o.decode.as_ref().expect("completed decode outcome");
    let mut t = o.arrival_ms + d.ttft_ms;
    let mut times = vec![t];
    for gap in &d.itl_ms {
        t += gap;
        times.push(t);
    }
    times
}

fn check_decode_invariants(report: &ServeReport, case: &DecodeFuzzCase, seed: u64) {
    let label = |extra: &str| format!("decode seed {seed:#x}: {extra}");

    // No token lost or duplicated: one outcome per request (seqs a
    // permutation), every request completes (no draw is infeasible), and
    // each emits exactly the token count it asked for.
    assert_eq!(
        report.outcomes.len(),
        case.requests.len(),
        "{}",
        label("count")
    );
    let mut seqs: Vec<usize> = report.outcomes.iter().map(|o| o.seq).collect();
    seqs.sort_unstable();
    assert_eq!(
        seqs,
        (0..case.requests.len()).collect::<Vec<_>>(),
        "{}",
        label("seq permutation")
    );
    let mut total_tokens = 0usize;
    for o in &report.outcomes {
        assert!(
            o.succeeded(),
            "{}",
            label(&format!("request {} failed: {:?}", o.seq, o.error))
        );
        let want = case.requests[o.seq].decode.expect("generative request");
        let d = o.decode.as_ref().expect("completed decode carries tokens");
        assert_eq!(
            d.prompt_tokens,
            want.prompt_tokens,
            "{}",
            label("prompt count")
        );
        assert_eq!(
            d.output_tokens,
            want.output_tokens,
            "{}",
            label("token count")
        );
        assert_eq!(
            d.itl_ms.len(),
            want.output_tokens as usize - 1,
            "{}",
            label("one ITL gap per token after the first")
        );
        assert!(
            d.ttft_ms >= 0.0 && d.itl_ms.iter().all(|&gap| gap > 0.0),
            "{}",
            label("token instants strictly increase")
        );
        assert!(
            d.max_batch >= 1 && d.max_batch <= case.batch.max_batch,
            "{}",
            label("observed batch within the configured cap")
        );
        // KV reservation math closes: peak bytes are exactly the maximum
        // context (prompt + output − 1, the monotone high-water of the
        // per-token grows) times the model's per-token stride.
        let stride = case.requests[o.seq]
            .model
            .decode()
            .expect("autoregressive model")
            .kv_bytes_per_token;
        assert_eq!(
            d.kv_peak_bytes,
            want.max_context_tokens() * stride,
            "{}",
            label("KV peak = max context × stride")
        );
        total_tokens += d.output_tokens as usize;
    }
    assert_eq!(
        report.decode_tokens,
        total_tokens,
        "{}",
        label("report token tally")
    );
    assert!(
        report.ttft.is_some() && report.itl.is_some(),
        "{}",
        label("token summaries")
    );

    // KV token budget holds at every emission instant. A request's budget
    // reservation covers [join, leave] ⊇ [first token, last token], so
    // summing max contexts over outcomes whose token window covers `t`
    // never overcounts.
    for probe in &report.outcomes {
        let t = probe.arrival_ms + probe.decode.as_ref().unwrap().ttft_ms;
        for device in 0..case.fleet {
            let committed: u64 = report
                .outcomes
                .iter()
                .filter(|o| o.device_index == device)
                .filter(|o| {
                    let times = token_times(o);
                    times[0] <= t + EPS && t <= *times.last().unwrap() + EPS
                })
                .map(|o| case.requests[o.seq].decode.unwrap().max_context_tokens())
                .sum();
            assert!(
                committed <= case.batch.token_budget,
                "{}",
                label(&format!(
                    "device {device} holds {committed} context tokens at t={t}, budget {}",
                    case.batch.token_budget
                ))
            );
        }
    }

    // Batch membership changes only at step boundaries: two requests of the
    // same model decoding concurrently on one device share every step of
    // their overlap, so their decode-step instants (every token after the
    // first) must coincide inside the common window.
    for a in &report.outcomes {
        for b in &report.outcomes {
            if a.seq >= b.seq || a.device_index != b.device_index || a.model != b.model {
                continue;
            }
            let (ta, tb) = (token_times(a), token_times(b));
            if ta.len() < 2 || tb.len() < 2 {
                continue;
            }
            let lo = ta[1].max(tb[1]);
            let hi = ta.last().unwrap().min(*tb.last().unwrap());
            let steps = |times: &[f64]| -> Vec<f64> {
                times[1..]
                    .iter()
                    .copied()
                    .filter(|&t| t >= lo - EPS && t <= hi + EPS)
                    .collect()
            };
            let (sa, sb) = (steps(&ta), steps(&tb));
            assert_eq!(
                sa.len(),
                sb.len(),
                "{}",
                label(&format!(
                    "requests {} and {} overlap but step counts differ",
                    a.seq, b.seq
                ))
            );
            for (x, y) in sa.iter().zip(&sb) {
                assert!(
                    (x - y).abs() < 1e-6,
                    "{}",
                    label(&format!(
                        "requests {} and {} drift mid-batch: {x} vs {y}",
                        a.seq, b.seq
                    ))
                );
            }
        }
    }
}

#[test]
fn decode_engine_upholds_token_invariants_on_every_pinned_seed() {
    for &seed in &SEEDS {
        let case = random_decode_case(seed);
        let report = run_decode_case(&case, &ThreadPool::with_threads(1));
        check_decode_invariants(&report, &case, seed);
    }
}

#[test]
fn decode_reports_are_byte_identical_across_pool_widths() {
    for &seed in &SEEDS {
        let case = random_decode_case(seed);
        let serial = run_decode_case(&case, &ThreadPool::with_threads(1));
        let wide = run_decode_case(&case, &ThreadPool::with_threads(4));
        assert_eq!(
            comparable(&serial),
            comparable(&wide),
            "decode seed {seed:#x} diverged between pool widths 1 and 4"
        );
    }
}

// === Chaos & recovery fuzz ===============================================
//
// The same seeded-property discipline pointed at the fault-injection and
// recovery pipeline: randomized fault knobs (loss time, flake/OOM rates,
// retry budget, backoff, failover, quarantine threshold) over randomized
// workloads, with the recovery invariants checked on every run — no request
// lost or double-completed, every outcome ends Completed / Rejected /
// typed-Failed, per-request retries never exceed the budget, quarantined
// devices receive no placements until probed, and protected reports stay
// byte-identical across pool widths.

/// A randomized-but-reproducible chaos scenario.
struct ChaosFuzzCase {
    requests: Vec<ServeRequest>,
    fleet: usize,
    plan: FaultPlan,
    recovery: RecoveryControl,
}

/// Draw a chaos scenario from `seed`: 5–9 requests over 2–4 devices, a
/// fault plan that always includes at least one flaky device (plus a coin
/// flip each for a device loss and OOM spikes), and randomized recovery
/// knobs.
fn random_chaos_case(seed: u64) -> ChaosFuzzCase {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0xC4A0_5000);
    let fleet = rng.gen_range_inclusive(2, 4) as usize;
    let spec = WorkloadSpec {
        pattern: ArrivalPattern::Steady {
            interval_ms: 80.0 + rng.gen_f64() * 200.0,
        },
        requests: rng.gen_range_inclusive(5, 9) as usize,
        tenants: rng.gen_range_inclusive(1, 3) as usize,
        priority_levels: 2,
        seed: rng.next_u64(),
    };
    let models: Vec<ModelSpec> = vec![ModelZoo::gptneo_small(), ModelZoo::vit()];
    let mut requests = spec.generate(&models);
    for request in &mut requests {
        if rng.gen_range_inclusive(0, 2) == 0 {
            request.deadline_ms = Some(2_000.0 + rng.gen_f64() * 4_000.0);
        }
    }
    let mut plan = FaultPlan::seeded(rng.next_u64());
    if rng.gen_range_inclusive(0, 1) == 0 {
        plan = plan.with_device_loss(0, 400.0 + rng.gen_f64() * 3_000.0);
    }
    let flaky = rng.gen_range_inclusive(0, fleet as u64 - 1) as usize;
    plan = plan.with_flaky_device(flaky, 0.05 + rng.gen_f64() * 0.4);
    if rng.gen_range_inclusive(0, 1) == 0 {
        let oom = rng.gen_range_inclusive(0, fleet as u64 - 1) as usize;
        plan = plan.with_oom_spikes(oom, 0.05 + rng.gen_f64() * 0.2);
    }
    let mut recovery = RecoveryControl::disabled()
        .with_retry_budget(rng.gen_range_inclusive(0, 3) as u32)
        .with_backoff_ms(rng.gen_f64() * 60.0);
    if rng.gen_range_inclusive(0, 1) == 0 {
        recovery = recovery.with_failover();
    }
    if rng.gen_range_inclusive(0, 1) == 0 {
        recovery = recovery.with_quarantine(
            rng.gen_range_inclusive(1, 4) as u32,
            100.0 + rng.gen_f64() * 900.0,
        );
    }
    ChaosFuzzCase {
        requests,
        fleet,
        plan,
        recovery,
    }
}

fn run_chaos_case(case: &ChaosFuzzCase, pool: &ThreadPool) -> ServeReport {
    let fleet: Vec<DeviceSpec> = (0..case.fleet)
        .map(|i| {
            if i % 2 == 0 {
                DeviceSpec::oneplus_12()
            } else {
                DeviceSpec::pixel_8()
            }
        })
        .collect();
    ServeEngine::new(fleet, FlashMemConfig::memory_priority())
        .with_cache(shared_cache())
        .with_fault_plan(case.plan.clone())
        .with_recovery_control(case.recovery)
        .run_on(pool, &case.requests)
        .expect("chaos fuzz run succeeds")
}

fn check_chaos_invariants(report: &ServeReport, case: &ChaosFuzzCase, seed: u64) {
    let label = |extra: &str| format!("chaos seed {seed:#x}: {extra}\n{report}");

    // No request lost or double-completed: exactly one outcome per
    // submission, sequence numbers a permutation.
    assert_eq!(
        report.outcomes.len(),
        case.requests.len(),
        "{}",
        label("count")
    );
    let mut seqs: Vec<usize> = report.outcomes.iter().map(|o| o.seq).collect();
    seqs.sort_unstable();
    assert_eq!(
        seqs,
        (0..case.requests.len()).collect::<Vec<_>>(),
        "{}",
        label("seq permutation")
    );

    // Every outcome is exactly one of Completed / Rejected / typed-Failed.
    for o in &report.outcomes {
        let dispositions = usize::from(o.succeeded())
            + usize::from(o.rejected.is_some())
            + usize::from(o.error.is_some());
        assert_eq!(dispositions, 1, "{}", label("disposition partition"));
        assert_eq!(
            o.error.is_some(),
            o.failure.is_some(),
            "{}",
            label("failed outcomes carry a typed FailureCause, others none")
        );
        // Retries never exceed the budget; recovery markers only appear
        // when the corresponding knob could produce them.
        assert!(
            o.retries <= case.recovery.retry_budget,
            "{}",
            label(&format!(
                "request {} retried {} times, budget {}",
                o.seq, o.retries, case.recovery.retry_budget
            ))
        );
        if o.retries > 0 || o.failed_over {
            assert!(
                case.recovery.any_enabled(),
                "{}",
                label("recovery marker with recovery disabled")
            );
        }
    }

    // Tally cross-checks: the planner's retry count equals the per-outcome
    // recount, and failovers imply at least one failed-over outcome.
    assert_eq!(
        report.recovery.retries,
        report.total_retries(),
        "{}",
        label("retry tally recount")
    );
    if report.recovery.failovers > 0 {
        assert!(
            report.outcomes.iter().any(|o| o.failed_over),
            "{}",
            label("failover tally without a failed-over outcome")
        );
    }
    let failed = report.failed_by_cause();
    assert_eq!(
        failed.total(),
        report.outcomes.iter().filter(|o| o.error.is_some()).count(),
        "{}",
        label("failure breakdown recount")
    );
}

#[test]
fn chaos_recovery_upholds_invariants_on_every_pinned_seed() {
    for &seed in &SEEDS {
        let case = random_chaos_case(seed);
        let report = run_chaos_case(&case, &ThreadPool::with_threads(1));
        check_chaos_invariants(&report, &case, seed);
    }
}

#[test]
fn chaos_reports_are_byte_identical_across_pool_widths() {
    for &seed in &SEEDS {
        let case = random_chaos_case(seed);
        let serial = run_chaos_case(&case, &ThreadPool::with_threads(1));
        let wide = run_chaos_case(&case, &ThreadPool::with_threads(4));
        assert_eq!(
            format!("{}|{:?}", comparable(&serial), serial.recovery),
            format!("{}|{:?}", comparable(&wide), wide.recovery),
            "chaos seed {seed:#x} diverged between pool widths 1 and 4"
        );
    }
}

#[test]
fn quarantined_devices_receive_no_placements_until_probed() {
    // A certainty-flaky device under a hair-trigger breaker: the trace must
    // show no Admit on that device between a Quarantine and the next Probe.
    let spec = WorkloadSpec {
        pattern: ArrivalPattern::Steady { interval_ms: 120.0 },
        requests: 9,
        tenants: 2,
        priority_levels: 1,
        seed: 0xBEA7_1234,
    };
    let requests = spec.generate(&[ModelZoo::gptneo_small(), ModelZoo::vit()]);
    let fleet = vec![
        DeviceSpec::oneplus_12(),
        DeviceSpec::pixel_8(),
        DeviceSpec::oneplus_12(),
    ];
    let report = ServeEngine::new(fleet, FlashMemConfig::memory_priority())
        .with_cache(shared_cache())
        .with_fault_plan(FaultPlan::seeded(9).with_flaky_device(1, 1.0))
        .with_recovery_control(
            RecoveryControl::disabled()
                .with_failover()
                .with_quarantine(1, 150.0),
        )
        .with_trace(TraceConfig::enabled())
        .run(&requests)
        .expect("chaos run succeeds");
    check_chaos_invariants(
        &report,
        &ChaosFuzzCase {
            requests: requests.clone(),
            fleet: 3,
            plan: FaultPlan::seeded(9).with_flaky_device(1, 1.0),
            recovery: RecoveryControl::disabled()
                .with_failover()
                .with_quarantine(1, 150.0),
        },
        0xBEA7_1234,
    );
    assert!(report.recovery.quarantines > 0, "breaker never tripped");
    assert!(report.recovery.probes > 0, "no probe was ever dispatched");
    let trace = report.trace.as_ref().expect("trace was enabled");
    let mut saw_quarantine_window = false;
    for process in &trace.processes {
        let mut quarantined = false;
        for event in &process.events {
            match event.kind {
                TraceKind::Quarantine => {
                    quarantined = true;
                    saw_quarantine_window = true;
                }
                TraceKind::Probe => quarantined = false,
                TraceKind::Admit => assert!(
                    !quarantined,
                    "{} admitted `{}` while quarantined",
                    process.name, event.name
                ),
                _ => {}
            }
        }
    }
    assert!(saw_quarantine_window, "trace recorded no quarantine window");
}

#[test]
fn protected_device_loss_completes_every_request_via_failover() {
    // Two same-spec devices: in-flight work on the dying device carries its
    // Suspension to the sibling and resumes instead of restarting.
    let spec = WorkloadSpec {
        pattern: ArrivalPattern::Steady { interval_ms: 150.0 },
        requests: 8,
        tenants: 2,
        priority_levels: 1,
        seed: 0x1055_0001,
    };
    let requests = spec.generate(&[ModelZoo::gptneo_small(), ModelZoo::vit()]);
    let fleet = vec![DeviceSpec::oneplus_12(), DeviceSpec::oneplus_12()];
    let report = ServeEngine::new(fleet, FlashMemConfig::memory_priority())
        .with_cache(shared_cache())
        .with_fault_plan(FaultPlan::seeded(3).with_device_loss(0, 900.0))
        .with_recovery_control(RecoveryControl::disabled().with_failover())
        .run(&requests)
        .expect("protected run succeeds");
    assert_eq!(report.outcomes.len(), requests.len());
    for o in &report.outcomes {
        assert!(
            o.succeeded(),
            "request {} was lost to the device loss: {:?}",
            o.seq,
            o.error
        );
    }
    assert!(
        report.recovery.failovers > 0,
        "device loss at 900 ms recovered without any failover\n{report}"
    );
    assert!(
        report.outcomes.iter().any(|o| o.failed_over),
        "no outcome records its failover"
    );
    // The dead device is tallied as a (permanent) quarantine.
    assert!(report.recovery.quarantines >= 1);
}

#[test]
fn unprotected_device_loss_yields_typed_failures_not_errors() {
    // Same fault, recovery disabled: the run still returns Ok — stranded
    // requests end as per-request typed failures, not a propagated error.
    let spec = WorkloadSpec {
        pattern: ArrivalPattern::Steady { interval_ms: 150.0 },
        requests: 8,
        tenants: 2,
        priority_levels: 1,
        seed: 0x1055_0001,
    };
    let requests = spec.generate(&[ModelZoo::gptneo_small(), ModelZoo::vit()]);
    let fleet = vec![DeviceSpec::oneplus_12(), DeviceSpec::oneplus_12()];
    let report = ServeEngine::new(fleet, FlashMemConfig::memory_priority())
        .with_cache(shared_cache())
        .with_fault_plan(FaultPlan::seeded(3).with_device_loss(0, 900.0))
        .run(&requests)
        .expect("unprotected chaos run still returns a report");
    assert_eq!(report.outcomes.len(), requests.len());
    let lost: Vec<_> = report
        .outcomes
        .iter()
        .filter(|o| o.error.is_some())
        .collect();
    assert!(!lost.is_empty(), "a 900 ms loss strands some requests");
    for o in &lost {
        assert_eq!(
            o.failure,
            Some(flashmem_serve::FailureCause::DeviceLost),
            "request {} failed with the wrong cause: {:?}",
            o.seq,
            o.failure
        );
        assert!(!o.failed_over && o.retries == 0);
    }
    assert!(!report.recovery.any(), "recovery tallies with recovery off");
}

#[test]
fn decode_requests_re_prefill_after_device_loss() {
    // Generative requests whose KV cache dies re-prefill from their token
    // position on a survivor and still deliver every requested token.
    let spec = DecodeWorkloadSpec {
        pattern: ArrivalPattern::Steady { interval_ms: 60.0 },
        requests: 6,
        tenants: 2,
        prompt_tokens: (8, 24),
        output_tokens: (4, 12),
        seed: 0xDECA_F001,
    };
    let requests = spec.generate(&[ModelZoo::gptneo_small()]);
    let fleet = vec![DeviceSpec::oneplus_12(), DeviceSpec::oneplus_12()];
    let report = DecodeEngine::new(fleet, FlashMemConfig::memory_priority())
        .with_cache(shared_cache())
        .with_fault_plan(FaultPlan::seeded(5).with_device_loss(0, 400.0))
        .with_recovery_control(RecoveryControl::disabled().with_failover())
        .run_on(&ThreadPool::with_threads(1), &requests)
        .expect("protected decode run succeeds");
    assert_eq!(report.outcomes.len(), requests.len());
    for o in &report.outcomes {
        assert!(
            o.succeeded(),
            "decode request {} was lost: {:?}",
            o.seq,
            o.error
        );
        let want = requests[o.seq].decode.expect("generative request");
        let d = o.decode.as_ref().expect("completed decode carries tokens");
        assert_eq!(
            d.output_tokens, want.output_tokens,
            "request {} lost tokens across the failover",
            o.seq
        );
    }
    assert!(
        report.recovery.failovers > 0,
        "loss at 400 ms recovered without failover\n{report}"
    );
    let wide = DecodeEngine::new(
        vec![DeviceSpec::oneplus_12(), DeviceSpec::oneplus_12()],
        FlashMemConfig::memory_priority(),
    )
    .with_cache(shared_cache())
    .with_fault_plan(FaultPlan::seeded(5).with_device_loss(0, 400.0))
    .with_recovery_control(RecoveryControl::disabled().with_failover())
    .run_on(&ThreadPool::with_threads(4), &requests)
    .expect("protected decode run succeeds");
    assert_eq!(
        format!("{}|{:?}", comparable(&report), report.recovery),
        format!("{}|{:?}", comparable(&wide), wide.recovery),
        "decode chaos diverged between pool widths 1 and 4"
    );
}
