//! Deadline-aware scheduling oracles:
//!
//! 1. **EDF rescue** — a workload where static priority provably misses a
//!    deadline that EDF meets: a long high-priority inference and a short
//!    low-priority one with a tight budget arrive together on one device.
//!    Priority order serves the long one first and the tight deadline dies
//!    in the queue; EDF serves the earlier deadline first and both SLOs
//!    hold. EDF attainment must *strictly* beat priority attainment.
//! 2. **Least-laxity rescue** — the same workload under least-laxity-first,
//!    which additionally weighs predicted remaining service time.
//! 3. **Deadline-triggered preemption** — a deadline-less blocker is
//!    suspended only when an arrival's laxity would go negative waiting it
//!    out, mirroring PR 3's priority-preemption SLO-rescue oracle.
//! 4. **Accounting** — admission laxity is reported for deadline-carrying
//!    requests and every miss carries a cause.

use flashmem_core::{FlashMem, FlashMemConfig, InferenceEngine};
use flashmem_gpu_sim::DeviceSpec;
use flashmem_graph::{ModelSpec, ModelZoo};
use flashmem_serve::server::predicted_service_ms;
use flashmem_serve::{
    DeadlinePreemptivePolicy, EdfPolicy, LeastLaxityPolicy, MissCause, PriorityPolicy,
    SchedulePolicy, ServeEngine, ServeRequest,
};

fn solo_latency_ms(model: &ModelSpec, device: &DeviceSpec, config: &FlashMemConfig) -> f64 {
    FlashMem::new(device.clone())
        .with_config(config.clone())
        .run(model)
        .expect("solo run")
        .integrated_latency_ms
}

/// The rescue workload: `long` is high priority with a loose deadline,
/// `short` is low priority with a budget that only fits if it runs first.
fn rescue_requests(long_ms: f64, short_ms: f64) -> Vec<ServeRequest> {
    let tight = short_ms + 0.25 * long_ms;
    let loose = long_ms + short_ms + 0.3 * long_ms;
    // Priority admits the long request first, so the short one completes no
    // earlier than long + short — provably past its tight budget.
    assert!(
        long_ms + short_ms > tight,
        "tight deadline must be unreachable behind the long request"
    );
    vec![
        ServeRequest::new(ModelZoo::gptneo_small(), "background")
            .with_priority(5)
            .with_deadline_ms(loose),
        ServeRequest::new(ModelZoo::vit(), "camera")
            .with_priority(0)
            .with_deadline_ms(tight),
    ]
}

fn run(policy: Box<dyn SchedulePolicy>, requests: &[ServeRequest]) -> flashmem_serve::ServeReport {
    ServeEngine::new(
        vec![DeviceSpec::oneplus_12()],
        FlashMemConfig::memory_priority(),
    )
    .with_policy(policy)
    .run(requests)
    .expect("run succeeds")
}

#[test]
fn edf_rescues_the_deadline_priority_provably_misses() {
    let device = DeviceSpec::oneplus_12();
    let config = FlashMemConfig::memory_priority();
    let long_ms = solo_latency_ms(&ModelZoo::gptneo_small(), &device, &config);
    let short_ms = solo_latency_ms(&ModelZoo::vit(), &device, &config);
    let requests = rescue_requests(long_ms, short_ms);

    let priority = run(Box::new(PriorityPolicy::new()), &requests);
    let edf = run(Box::new(EdfPolicy::new()), &requests);

    // Priority: the high-priority long request wins admission, the tight
    // deadline misses in the queue.
    assert_eq!(priority.slo.tracked, 2);
    assert_eq!(priority.slo.met, 1, "{priority}");
    let missed = priority.outcomes.iter().find(|o| o.tenant == "camera");
    assert_eq!(missed.unwrap().slo_met(), Some(false));
    assert_eq!(missed.unwrap().miss_cause(), Some(MissCause::QueueWait));

    // EDF: earliest deadline first, both met.
    assert_eq!(edf.slo.tracked, 2);
    assert_eq!(edf.slo.met, 2, "{edf}");
    assert!(
        edf.slo.attainment() > priority.slo.attainment(),
        "EDF {} must strictly beat priority {}",
        edf.slo.attainment(),
        priority.slo.attainment()
    );
    // The rescue reorders admission, it does not preempt anything.
    assert_eq!(edf.preemptions, 0);
}

#[test]
fn least_laxity_rescues_the_same_workload_with_estimates() {
    let device = DeviceSpec::oneplus_12();
    let config = FlashMemConfig::memory_priority();
    let long_ms = solo_latency_ms(&ModelZoo::gptneo_small(), &device, &config);
    let short_ms = solo_latency_ms(&ModelZoo::vit(), &device, &config);
    let requests = rescue_requests(long_ms, short_ms);

    let priority = run(Box::new(PriorityPolicy::new()), &requests);
    let llf = run(Box::new(LeastLaxityPolicy::new()), &requests);
    assert_eq!(llf.slo.met, 2, "{llf}");
    assert!(llf.slo.attainment() > priority.slo.attainment());

    // Laxity accounting rides along: every deadline-carrying request
    // reports its admission laxity, and under a laxity-driven policy the
    // estimate is non-trivial, so laxity < time-to-deadline.
    for outcome in &llf.outcomes {
        let laxity = outcome.admission_laxity_ms.expect("deadline carried");
        let budget = outcome.deadline_ms.expect("deadline carried");
        assert!(
            laxity < budget - outcome.queue_wait_ms + 1e-9,
            "laxity {laxity} must discount predicted service from budget {budget}"
        );
    }
}

#[test]
fn predicted_service_matches_the_uncontended_run() {
    let device = DeviceSpec::oneplus_12();
    let config = FlashMemConfig::memory_priority();
    for model in [ModelZoo::vit(), ModelZoo::gptneo_small()] {
        let engine = FlashMem::new(device.clone()).with_config(config.clone());
        let artifact = InferenceEngine::compile(&engine, &model, &device).expect("compiles");
        let predicted = predicted_service_ms(&artifact, &model, &device, &config);
        let solo = solo_latency_ms(&model, &device, &config);
        assert!(
            (predicted - solo).abs() < 1e-6 * solo.max(1.0),
            "{}: predicted {predicted} vs solo {solo}",
            model.abbr
        );
    }
}

#[test]
fn deadline_preemption_suspends_only_negative_bound_arrivals() {
    let device = DeviceSpec::oneplus_12();
    let config = FlashMemConfig::memory_priority();
    let long_ms = solo_latency_ms(&ModelZoo::gptneo_small(), &device, &config);
    let short_ms = solo_latency_ms(&ModelZoo::vit(), &device, &config);

    // A deadline-less blocker monopolizes the device; an urgent request
    // arrives with a budget that fits its own service but not the wait.
    let arrival = 30.0;
    let deadline = short_ms + 0.5 * long_ms;
    assert!(
        deadline < long_ms - arrival + short_ms,
        "deadline must be unreachable without preemption"
    );
    let requests = vec![
        ServeRequest::new(ModelZoo::gptneo_small(), "background"),
        ServeRequest::new(ModelZoo::vit(), "camera")
            .with_arrival_ms(arrival)
            .with_deadline_ms(deadline),
    ];

    // Without preemption the urgent request waits out the blocker: miss.
    let non_preemptive = run(Box::new(LeastLaxityPolicy::new()), &requests);
    assert_eq!(non_preemptive.slo.tracked, 1);
    assert_eq!(non_preemptive.slo.met, 0, "{non_preemptive}");
    assert_eq!(non_preemptive.slo.missed_queue_wait, 1);

    // The deadline-triggered policy suspends the (infinitely slack,
    // deadline-less) blocker because the arrival's laxity cannot survive
    // waiting out its remaining service.
    let preemptive = run(Box::new(DeadlinePreemptivePolicy::new()), &requests);
    assert_eq!(preemptive.slo.met, 1, "{preemptive}");
    assert!(preemptive.preemptions > 0, "{preemptive}");
    let blocker = &preemptive.outcomes[0];
    assert!(blocker.preemptions > 0);
    assert!(blocker.suspended_ms > 0.0);
    assert!(blocker.resume_penalty_ms > 0.0);

    // With a comfortable budget instead, laxity never goes negative-bound
    // and the blocker is left alone — urgency, not priority, is the trigger.
    let relaxed = vec![
        requests[0].clone(),
        ServeRequest::new(ModelZoo::vit(), "camera")
            .with_arrival_ms(arrival)
            .with_deadline_ms(2.0 * (long_ms + short_ms)),
    ];
    let unbothered = run(Box::new(DeadlinePreemptivePolicy::new()), &relaxed);
    assert_eq!(unbothered.preemptions, 0, "{unbothered}");
    assert_eq!(unbothered.slo.met, 1);
}
