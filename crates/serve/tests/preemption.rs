//! Preemption invariants:
//!
//! 1. **Suspend/resume determinism oracle** — suspending an inference at any
//!    command boundary and resuming it yields an [`ExecutionReport`] that is
//!    **byte-identical** to the uninterrupted run (every float field,
//!    timeline event and memory-trace sample).
//! 2. **No lost commands** — a stream preempted (with eviction) at *every*
//!    command boundary still executes every command exactly once, with the
//!    same timeline.
//! 3. **No starvation** — a low-priority request preempted by a stream of
//!    high-priority arrivals eventually completes.
//! 4. **SLO mechanics** — preemption is what lets a tight-deadline request
//!    meet its SLO behind a long low-priority inference, and the preempted
//!    request pays the configured re-residency cost.

use flashmem_core::{ExecutionReport, FlashMem, FlashMemConfig, InferenceEngine};
use flashmem_gpu_sim::engine::{GpuSimulator, QueueClocks, SimConfig, StreamStepper};
use flashmem_gpu_sim::memory::MemoryTracker;
use flashmem_gpu_sim::{DeviceSpec, PreemptionCost};
use flashmem_graph::{ModelSpec, ModelZoo};
use flashmem_serve::server::lower_artifact;
use flashmem_serve::{PreemptivePriorityPolicy, PriorityPolicy, ServeEngine, ServeRequest};

/// Compile `model` with FlashMem and lower it to the command stream the
/// serving event loop steps.
fn lowered_stream(
    model: &ModelSpec,
    device: &DeviceSpec,
    config: &FlashMemConfig,
) -> flashmem_gpu_sim::engine::CommandStream {
    let engine = FlashMem::new(device.clone()).with_config(config.clone());
    let artifact = InferenceEngine::compile(&engine, model, device).expect("compiles");
    lower_artifact(&artifact, model, device, config)
}

/// Step a fresh stepper to completion and report it like the serving layer
/// does for exclusive runs.
fn uninterrupted_report(
    stream: &flashmem_gpu_sim::engine::CommandStream,
    device: &DeviceSpec,
) -> ExecutionReport {
    let sim = GpuSimulator::new(device.clone(), SimConfig::default());
    let mut tracker = MemoryTracker::for_device(device);
    let mut stepper = StreamStepper::new(stream.clone()).expect("valid stream");
    let mut clocks = QueueClocks::new();
    while !stepper.is_done() {
        stepper
            .step(&sim, &mut clocks, &mut tracker, 0.0)
            .expect("steps");
    }
    let outcome = stepper.finish(&sim, &mut tracker);
    ExecutionReport::from_outcome("FlashMem", "model", &outcome, 0.5)
}

#[test]
fn suspend_resume_report_is_byte_identical_to_uninterrupted_run() {
    let device = DeviceSpec::oneplus_12();
    let config = FlashMemConfig::memory_priority();
    let stream = lowered_stream(&ModelZoo::vit(), &device, &config);
    let expected = uninterrupted_report(&stream, &device);
    assert!(
        stream.len() > 4,
        "stream too trivial to exercise suspension"
    );

    // Suspend once at every boundary (including before the first and after
    // the last command) and prove the resumed run is byte-identical.
    for suspend_at in 0..=stream.len() {
        let sim = GpuSimulator::new(device.clone(), SimConfig::default());
        let mut tracker = MemoryTracker::for_device(&device);
        let mut stepper = StreamStepper::new(stream.clone()).expect("valid stream");
        let mut clocks = QueueClocks::new();
        for _ in 0..suspend_at {
            stepper
                .step(&sim, &mut clocks, &mut tracker, 0.0)
                .expect("steps");
        }
        let suspension = stepper.suspend(&clocks, clocks.horizon_ms());
        let (mut stepper, mut clocks) = suspension.resume();
        while !stepper.is_done() {
            stepper
                .step(&sim, &mut clocks, &mut tracker, 0.0)
                .expect("steps");
        }
        let outcome = stepper.finish(&sim, &mut tracker);
        let resumed = ExecutionReport::from_outcome("FlashMem", "model", &outcome, 0.5);
        // ExecutionReport is PartialEq over every float field, the whole
        // timeline and the whole memory trace: only bit equality passes.
        assert_eq!(
            resumed, expected,
            "diverged when suspending at command {suspend_at}"
        );
    }
}

#[test]
fn no_commands_lost_under_repeated_evicting_preemption() {
    let device = DeviceSpec::oneplus_12();
    let config = FlashMemConfig::memory_priority();
    let stream = lowered_stream(&ModelZoo::vit(), &device, &config);
    let expected = uninterrupted_report(&stream, &device);

    let sim = GpuSimulator::new(device.clone(), SimConfig::default());
    let mut tracker = MemoryTracker::for_device(&device);
    let mut stepper = StreamStepper::new(stream.clone()).expect("valid stream");
    let mut clocks = QueueClocks::new();
    let mut executed = 0usize;
    // Preempt with eviction before every single command. Zero resume cost and
    // zero-time suspension points keep the arithmetic comparable to the
    // uninterrupted run; what this test stresses is the handle bookkeeping —
    // every evicted allocation must come back addressable, every Free must
    // find its target, and no command may run twice or never.
    while !stepper.is_done() {
        let suspension = stepper
            .suspend_evicting(&clocks, &mut tracker, 0.0, 0.0)
            .expect("suspends");
        assert!(suspension.can_resume(&tracker));
        let (resumed, penalty) = suspension
            .resume_into(&sim, &mut tracker, 0.0, 0.0, &PreemptionCost::free())
            .expect("resumes");
        assert_eq!(penalty, 0.0);
        stepper = resumed;
        stepper
            .step(&sim, &mut clocks, &mut tracker, 0.0)
            .expect("steps");
        executed += 1;
    }
    assert_eq!(executed, stream.len(), "every command ran exactly once");
    assert_eq!(stepper.remaining(), 0);
    let outcome = stepper.finish(&sim, &mut tracker);
    assert_eq!(outcome.total_time_ms, expected.integrated_latency_ms);
    let resumed_report = ExecutionReport::from_outcome("FlashMem", "model", &outcome, 0.5);
    assert_eq!(resumed_report.load_busy_ms, expected.load_busy_ms);
    assert_eq!(resumed_report.kernel_busy_ms, expected.kernel_busy_ms);
    assert_eq!(resumed_report.transform_busy_ms, expected.transform_busy_ms);
}

#[test]
fn preempted_request_is_not_starved() {
    // One long low-priority inference, then a stream of nine high-priority
    // arrivals spaced tighter than their own service time: the low-priority
    // request is preempted and must still complete once the pressure stops.
    let mut requests = vec![ServeRequest::new(ModelZoo::gptneo_small(), "background")];
    for i in 0..9 {
        requests.push(
            ServeRequest::new(ModelZoo::vit(), "camera")
                .with_priority(5)
                .with_arrival_ms(40.0 + 120.0 * f64::from(i)),
        );
    }
    let report = ServeEngine::new(
        vec![DeviceSpec::oneplus_12()],
        FlashMemConfig::memory_priority(),
    )
    .with_policy(Box::new(PreemptivePriorityPolicy::new()))
    .run(&requests)
    .expect("run succeeds");

    assert_eq!(report.completed(), requests.len(), "{report}");
    let background = &report.outcomes[0];
    assert!(background.preemptions >= 1, "{report}");
    assert!(background.suspended_ms > 0.0);
    // It finished, but after the high-priority work it yielded to.
    let last_camera_completion = report
        .outcomes
        .iter()
        .filter(|o| o.tenant == "camera")
        .map(|o| o.completion_ms)
        .fold(0.0_f64, f64::max);
    assert!(background.completion_ms > last_camera_completion);
}

#[test]
fn preemption_rescues_the_high_priority_slo() {
    // A long low-priority inference monopolizes the device; a deadline-tight
    // high-priority request arrives shortly after. Without preemption it
    // waits for the whole blocker and misses; with preemption it meets.
    let device = DeviceSpec::oneplus_12();
    let config = FlashMemConfig::memory_priority();
    let blocker_solo = FlashMem::new(device.clone())
        .with_config(config.clone())
        .run(&ModelZoo::gptneo_small())
        .expect("solo run");
    let urgent_solo = FlashMem::new(device.clone())
        .with_config(config.clone())
        .run(&ModelZoo::vit())
        .expect("solo run");
    // Deadline: enough for the model itself (plus margin) but far less than
    // waiting out the blocker.
    let arrival = 30.0;
    let deadline = urgent_solo.integrated_latency_ms + 0.5 * blocker_solo.integrated_latency_ms;
    assert!(
        deadline < blocker_solo.integrated_latency_ms - arrival + urgent_solo.integrated_latency_ms,
        "deadline must be unreachable without preemption"
    );
    let requests = vec![
        ServeRequest::new(ModelZoo::gptneo_small(), "background"),
        ServeRequest::new(ModelZoo::vit(), "camera")
            .with_priority(5)
            .with_arrival_ms(arrival)
            .with_deadline_ms(deadline),
    ];

    let run = |policy: Box<dyn flashmem_serve::SchedulePolicy>| {
        ServeEngine::new(vec![device.clone()], config.clone())
            .with_policy(policy)
            .run(&requests)
            .expect("run succeeds")
    };
    let non_preemptive = run(Box::new(PriorityPolicy::new()));
    let preemptive = run(Box::new(PreemptivePriorityPolicy::new()));

    assert_eq!(non_preemptive.slo.tracked, 1);
    assert_eq!(non_preemptive.slo.met, 0, "{non_preemptive}");
    assert_eq!(preemptive.slo.tracked, 1);
    assert_eq!(preemptive.slo.met, 1, "{preemptive}");
    assert!(preemptive.preemptions > 0);
    // The preempted blocker pays: it finishes later than it would have
    // uninterrupted, and carries the re-residency penalty.
    let blocker = &preemptive.outcomes[0];
    assert!(blocker.resume_penalty_ms > 0.0);
    assert!(blocker.latency_ms > blocker_solo.integrated_latency_ms);
}

#[test]
fn reload_cost_slows_the_preempted_request_vs_free_resume() {
    let device = DeviceSpec::oneplus_12();
    let config = FlashMemConfig::memory_priority();
    let requests = vec![
        ServeRequest::new(ModelZoo::gptneo_small(), "background"),
        ServeRequest::new(ModelZoo::vit(), "camera")
            .with_priority(5)
            .with_arrival_ms(30.0),
    ];
    let run = |cost: PreemptionCost| {
        ServeEngine::new(vec![device.clone()], config.clone())
            .with_policy(Box::new(PreemptivePriorityPolicy::new().with_cost(cost)))
            .run(&requests)
            .expect("run succeeds")
    };
    let free = run(PreemptionCost::free());
    let reload = run(PreemptionCost::reload());
    assert!(free.preemptions > 0);
    assert!(reload.preemptions > 0);
    let free_blocker = &free.outcomes[0];
    let reload_blocker = &reload.outcomes[0];
    assert_eq!(free_blocker.resume_penalty_ms, 0.0);
    assert!(reload_blocker.resume_penalty_ms > 0.0);
    assert!(
        reload_blocker.latency_ms > free_blocker.latency_ms,
        "reload {} vs free {}",
        reload_blocker.latency_ms,
        free_blocker.latency_ms
    );
    // The high-priority request is unaffected by what the *other* stream
    // pays on resume.
    assert_eq!(free.outcomes[1].latency_ms, reload.outcomes[1].latency_ms);
}
