//! Adversarial overload scenarios for the fleet survival machinery:
//! admission control, bounded per-device queues and the re-placement
//! (steal) phase.
//!
//! Each test pins one survival invariant from the overload design:
//!
//! 1. **Exact partition** — every submitted request appears in the report
//!    exactly once, as accepted or rejected; nothing is ever silently
//!    dropped, under any scenario or knob combination.
//! 2. **Provably-correct rejection** — the solo-rerun oracle: every
//!    `DeadlineUnmeetable` reject, re-run alone on an idle copy of each
//!    fleet device, still misses its deadline. Admission control never
//!    sheds a request the fleet could have served.
//! 3. **Bounded queues hold their bound** — both the engine's own
//!    high-water counter and an independent reconstruction of queue depth
//!    from the outcome windows stay at or under the configured bound.
//! 4. **Steal is conservative** — a stolen request completes exactly once,
//!    starts no earlier than it arrived, and runs on a device other than
//!    its backed-up home.
//! 5. **Shedding pays for itself** — under a flash crowd, the SLO
//!    attainment of the *admitted* requests with bounded queues and
//!    admission control strictly exceeds the unbounded baseline's.

use flashmem_core::FlashMemConfig;
use flashmem_gpu_sim::DeviceSpec;
use flashmem_graph::{ModelSpec, ModelZoo};
use flashmem_serve::{
    FifoPolicy, OverloadControl, OverloadScenario, PendingEntry, PolicyContext, RejectCause,
    SchedulePolicy, ServeEngine, ServeRequest,
};

const MIB: u64 = 1024 * 1024;

/// A fleet of `size` devices cycling the evaluated presets.
fn fleet(size: usize) -> Vec<DeviceSpec> {
    let presets = [
        DeviceSpec::oneplus_12(),
        DeviceSpec::galaxy_tab_s9(),
        DeviceSpec::radeon_780m_laptop(),
        DeviceSpec::pixel_8(),
    ];
    (0..size)
        .map(|i| presets[i % presets.len()].clone())
        .collect()
}

fn models() -> Vec<ModelSpec> {
    vec![ModelZoo::gptneo_small(), ModelZoo::vit()]
}

fn engine(devices: usize) -> ServeEngine {
    ServeEngine::new(fleet(devices), FlashMemConfig::memory_priority())
        .with_policy(Box::new(FifoPolicy))
}

/// A policy that funnels every request onto device 0 — the worst-case home
/// shard the steal phase exists to drain.
struct Device0Policy;

impl SchedulePolicy for Device0Policy {
    fn name(&self) -> &'static str {
        "device-0"
    }

    fn place(&self, _request: &ServeRequest, _seq: usize, _fleet_len: usize) -> usize {
        0
    }

    fn pick(&self, candidates: &[PendingEntry], _ctx: &PolicyContext) -> usize {
        // FIFO among the arrived candidates: earliest arrival, seq as the
        // tiebreak, same as the stock FIFO policy.
        candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.arrival_ms
                    .partial_cmp(&b.arrival_ms)
                    .expect("arrivals are finite")
                    .then(a.seq.cmp(&b.seq))
            })
            .map(|(i, _)| i)
            .expect("pick called with candidates")
    }
}

/// Invariant 1: under every adversarial scenario, with every defense armed,
/// `accepted + rejected` partitions the submitted requests exactly — seqs
/// come back as a permutation, every rejection carries a cause, and the
/// shed breakdown re-counts the rejected tally.
#[test]
fn every_scenario_partitions_submissions_into_accepted_plus_rejected() {
    let models = models();
    let mut any_rejected = false;
    for scenario in OverloadScenario::all() {
        let mut engine = engine(3).with_overload_control(
            OverloadControl::disabled()
                .with_queue_bound(2)
                .with_admission_control()
                .with_steal(),
        );
        if scenario == OverloadScenario::HotTenant {
            engine = engine.with_fleet_tenant_cap(OverloadScenario::HOT_TENANT, 2_400 * MIB, 2);
        }
        let requests = scenario.generate(&models, 3, 0x0DD_0001);
        let report = engine.run(&requests).expect("overload scenario runs");

        assert_eq!(
            report.outcomes.len(),
            requests.len(),
            "{}: one outcome per submitted request",
            scenario.name()
        );
        let mut seqs: Vec<usize> = report.outcomes.iter().map(|o| o.seq).collect();
        seqs.sort_unstable();
        assert_eq!(
            seqs,
            (0..requests.len()).collect::<Vec<_>>(),
            "{}: outcome seqs are a permutation of the submissions",
            scenario.name()
        );
        assert_eq!(
            report.accepted() + report.rejected(),
            requests.len(),
            "{}: accepted + rejected partitions the workload",
            scenario.name()
        );
        let shed = report.shed_by_cause();
        assert_eq!(
            shed.total(),
            report.rejected(),
            "{}: every rejection carries exactly one cause",
            scenario.name()
        );
        any_rejected |= report.rejected() > 0;

        let makespan = report.makespan_ms();
        for o in &report.outcomes {
            if let Some(cause) = o.rejected {
                // A reject is the scheduler declining work, not work
                // failing: zero latency, no error, no SLO verdict.
                assert!(o.error.is_none(), "{}: reject carries no error", o.seq);
                assert_eq!(o.latency_ms, 0.0);
                assert_eq!(o.start_ms, o.arrival_ms);
                assert_eq!(o.completion_ms, o.arrival_ms);
                assert_eq!(o.slo_met(), None);
                if cause == RejectCause::DeadlineUnmeetable {
                    assert!(
                        o.admission_laxity_ms.unwrap_or(0.0) < 0.0,
                        "{}: admission rejects record the negative laxity",
                        o.seq
                    );
                }
            } else {
                // Accepted work lives inside its device's timeline;
                // rejected completions sit at the arrival instant and may
                // legitimately fall past the makespan.
                assert!(
                    o.completion_ms <= makespan + 1e-6,
                    "{}: accepted completion within the makespan",
                    o.seq
                );
            }
        }
        for d in &report.devices {
            assert!(
                d.queue_depth_high_water <= 2,
                "{}: {} high-water {} exceeds the bound",
                scenario.name(),
                d.device,
                d.queue_depth_high_water
            );
        }
    }
    assert!(
        any_rejected,
        "the adversarial scenarios should pressure at least one rejection"
    );
}

/// Invariant 2: the solo-rerun oracle. Every deadline-unmeetable rejection,
/// replayed alone (no contention, no queueing) on a fresh copy of each
/// fleet device, still misses its deadline — so admission control only ever
/// sheds requests the fleet provably could not have served.
#[test]
fn deadline_rejections_survive_the_solo_rerun_oracle() {
    let models = models();
    let requests = OverloadScenario::FlashCrowd.generate(&models, 2, 0x0DD_0002);
    let report = engine(2)
        .with_overload_control(OverloadControl::disabled().with_admission_control())
        .run(&requests)
        .expect("flash crowd runs");

    let rejected: Vec<_> = report
        .outcomes
        .iter()
        .filter(|o| o.rejected == Some(RejectCause::DeadlineUnmeetable))
        .collect();
    assert!(
        !rejected.is_empty(),
        "the flash-crowd scenario plants provably unmeetable deadlines"
    );
    assert_eq!(
        report.shed_by_cause().queue_full,
        0,
        "no queue bound is set, so admission control is the only shedder"
    );

    let fleet = fleet(2);
    for o in &rejected {
        let request = requests[o.seq].clone().with_arrival_ms(0.0);
        for (d, spec) in fleet.iter().enumerate() {
            let solo = ServeEngine::new(vec![spec.clone()], FlashMemConfig::memory_priority())
                .with_policy(Box::new(FifoPolicy))
                .run(std::slice::from_ref(&request))
                .expect("solo rerun runs");
            assert_eq!(solo.outcomes.len(), 1);
            assert_eq!(
                solo.outcomes[0].slo_met(),
                Some(false),
                "seq {} was rejected as unmeetable but met its deadline solo on device {d}",
                o.seq
            );
        }
    }
}

/// Invariant 3: the queue bound holds — by the engine's own high-water
/// counter *and* by an independent reconstruction from the outcome
/// windows. A request occupies its device's queue over `[arrival, start)`,
/// so at any accepted request's arrival instant the number of same-device
/// outcomes whose window spans that instant is the queue depth the engine
/// saw (the strict `start > t` excludes requests admitted at that very
/// boundary, which the engine admits only after arrival processing).
#[test]
fn queue_depth_never_exceeds_the_bound() {
    let models = models();
    let bound = 1;
    let requests = OverloadScenario::FlashCrowd.generate(&models, 2, 0x0DD_0003);
    let report = engine(2)
        .with_overload_control(OverloadControl::disabled().with_queue_bound(bound))
        .run(&requests)
        .expect("bounded flash crowd runs");

    assert!(
        report.shed_by_cause().queue_full > 0,
        "a flash crowd against a bound of {bound} must shed"
    );
    let mut exercised = false;
    for d in &report.devices {
        assert!(
            d.queue_depth_high_water <= bound,
            "{}: high-water {} exceeds the bound {bound}",
            d.device,
            d.queue_depth_high_water
        );
        exercised |= d.queue_depth_high_water == bound;
    }
    assert!(exercised, "the crowd should fill at least one queue");

    let accepted: Vec<_> = report
        .outcomes
        .iter()
        .filter(|o| o.rejected.is_none())
        .collect();
    for r in &accepted {
        let depth = accepted
            .iter()
            .filter(|o| {
                o.device_index == r.device_index
                    && o.arrival_ms <= r.arrival_ms
                    && o.start_ms > r.arrival_ms
            })
            .count();
        assert!(
            depth <= bound,
            "reconstructed queue depth {depth} on device {} at t={} exceeds the bound {bound}",
            r.device_index,
            r.arrival_ms
        );
    }
}

/// Invariant 4: a stolen request completes exactly once, starts no earlier
/// than it arrived, and runs somewhere other than its backed-up home. With
/// every request funnelled onto device 0, the steal phase is the only
/// reason devices 1 and 2 see work at all.
#[test]
fn stolen_requests_complete_exactly_once_with_start_after_arrival() {
    let models = models();
    let requests = OverloadScenario::FleetRamp.generate(&models, 3, 0x0DD_0004);
    let report = ServeEngine::new(fleet(3), FlashMemConfig::memory_priority())
        .with_policy(Box::new(Device0Policy))
        .with_overload_control(OverloadControl::disabled().with_steal())
        .run(&requests)
        .expect("steal scenario runs");

    assert_eq!(report.outcomes.len(), requests.len());
    assert!(
        report.stolen() > 0,
        "a single-device pile-up must trigger the steal phase"
    );
    assert_eq!(report.rejected(), 0, "steal alone never sheds");
    let mut seqs: Vec<usize> = report.outcomes.iter().map(|o| o.seq).collect();
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(
        seqs.len(),
        requests.len(),
        "every request completes exactly once, stolen or not"
    );
    for o in &report.outcomes {
        if let Some(home) = o.stolen_from {
            assert_eq!(home, 0, "device 0 is the only placement home");
            assert_ne!(
                o.device_index, home,
                "seq {}: a steal moves work to a different device",
                o.seq
            );
            assert!(
                o.device_index < report.devices.len(),
                "seq {}: stolen to a real fleet device",
                o.seq
            );
            assert!(
                o.start_ms >= o.arrival_ms - 1e-9,
                "seq {}: stolen work cannot start before it arrives",
                o.seq
            );
            assert!(o.succeeded(), "seq {}: stolen work completes", o.seq);
        }
    }
    let moved: usize = report.devices[1..].iter().map(|d| d.requests).sum();
    assert_eq!(
        moved,
        report.stolen(),
        "requests on devices 1.. are exactly the stolen ones"
    );
}

/// Invariant 5 (the headline acceptance criterion): under a flash crowd,
/// bounded queues plus admission control strictly improve the SLO
/// attainment of the *admitted* requests over the unbounded baseline —
/// shedding the hopeless tail protects everyone the fleet actually serves.
#[test]
fn flash_crowd_bounded_attainment_strictly_beats_the_unbounded_baseline() {
    let models = models();
    let requests = OverloadScenario::FlashCrowd.generate(&models, 2, 0x0DD_0005);

    let baseline = engine(2).run(&requests).expect("unbounded baseline runs");
    let protected = engine(2)
        .with_overload_control(
            OverloadControl::disabled()
                .with_queue_bound(1)
                .with_admission_control(),
        )
        .run(&requests)
        .expect("protected run succeeds");

    assert_eq!(baseline.rejected(), 0, "the baseline accepts everything");
    assert!(protected.rejected() > 0, "the protected run sheds");
    assert_eq!(
        protected.accepted() + protected.rejected(),
        requests.len(),
        "zero requests silently lost under shedding"
    );
    assert!(
        baseline.slo.attainment() < 1.0,
        "the crowd must overwhelm the unbounded baseline for shedding to matter"
    );
    assert!(
        protected.slo.attainment() > baseline.slo.attainment(),
        "admitted-request attainment: protected {:.3} must strictly beat baseline {:.3}",
        protected.slo.attainment(),
        baseline.slo.attainment()
    );
}

/// `OverloadControl::disabled()` (the default) is the legacy engine, bit
/// for bit: arming the struct without any knob must not perturb a single
/// outcome.
#[test]
fn disabled_overload_control_is_byte_identical_to_the_legacy_engine() {
    let models = models();
    let requests = OverloadScenario::DiurnalRamp.generate(&models, 2, 0x0DD_0006);
    let legacy = engine(2).run(&requests).expect("legacy run succeeds");
    let armed = engine(2)
        .with_overload_control(OverloadControl::disabled())
        .run(&requests)
        .expect("disabled-overload run succeeds");
    assert_eq!(format!("{legacy:?}"), format!("{armed:?}"));
}

/// Regression (empty-percentile bug): a run that sheds 100% of its traffic
/// has no latency distribution, and the report must say so explicitly —
/// `latency: None` — instead of the old `LatencySummary` whose p50/p95/p99
/// all read 0.0 ms, which dashboards rendered as an impossibly perfect
/// fleet. The token-level summaries stay absent for the same reason.
#[test]
fn a_fully_shed_run_reports_no_latency_summary_at_all() {
    let engine =
        engine(2).with_overload_control(OverloadControl::disabled().with_admission_control());
    // Sub-millisecond latency budgets no device in the fleet can meet, so
    // admission control provably sheds every single request.
    let requests: Vec<ServeRequest> = (0..6)
        .map(|i| {
            ServeRequest::new(ModelZoo::gptneo_small(), format!("tenant-{}", i % 2))
                .with_arrival_ms(i as f64 * 10.0)
                .with_deadline_ms(0.01)
        })
        .collect();
    let report = engine.run(&requests).expect("full-shed run succeeds");

    assert_eq!(report.rejected(), requests.len(), "everything is shed");
    assert_eq!(report.completed(), 0);
    assert!(
        report.latency.is_none(),
        "zero completions must surface as an absent summary, not 0.0-ms percentiles: {:?}",
        report.latency
    );
    assert!(report.ttft.is_none(), "no decode traffic, no TTFT summary");
    assert!(report.itl.is_none(), "no decode traffic, no ITL summary");
    assert_eq!(report.decode_tokens, 0);
    assert_eq!(report.tokens_per_s, 0.0);
    assert!(
        report.per_priority.is_empty(),
        "no priority level completed anything"
    );
}
