//! Oracles for the parallel fleet fan-out in `ServeEngine::run_on`.
//!
//! The serve event loop fans independent device timelines out on the
//! work-stealing pool; these tests pin the two properties that make that
//! safe to ship:
//!
//! 1. **Byte identity under oversubscription** — a fleet much wider than the
//!    pool (64 devices on 4 workers) produces a `ServeReport` byte-identical
//!    to the serial (`--threads 1`) loop, for exclusive, concurrent,
//!    preemptive and deadline-aware policies alike.
//! 2. **Panic containment** — a policy that panics inside a device worker
//!    surfaces as `SimError::WorkerPanic`, not a hang or a poisoned pool.
//! 3. **Schedule-independent `cache_hit` telemetry** — the flag reports the
//!    prologue's warmth snapshot, never which device won an intra-run
//!    compile race (the flake that motivated the snapshot: identical
//!    devices sharing one model raced, and the winner/loser assignment of
//!    miss/hit flipped between serial and parallel runs).

use flashmem_core::pool::ThreadPool;
use flashmem_core::FlashMemConfig;
use flashmem_gpu_sim::{DeviceSpec, SimError};
use flashmem_serve::{
    ArrivalPattern, EdfPolicy, FifoPolicy, OverloadControl, PendingEntry, PolicyContext,
    PreemptivePriorityPolicy, PriorityPolicy, SchedulePolicy, ServeEngine, ServeRequest,
    WorkloadSpec,
};

/// A fleet of `size` devices cycling the evaluated presets, like the bench's
/// serving fleet.
fn fleet(size: usize) -> Vec<DeviceSpec> {
    let presets = [
        DeviceSpec::oneplus_12(),
        DeviceSpec::galaxy_tab_s9(),
        DeviceSpec::radeon_780m_laptop(),
        DeviceSpec::pixel_8(),
    ];
    (0..size)
        .map(|i| presets[i % presets.len()].clone())
        .collect()
}

fn workload(requests: usize, seed: u64) -> Vec<ServeRequest> {
    WorkloadSpec {
        pattern: ArrivalPattern::Bursty {
            burst_size: 8,
            gap_ms: 900.0,
        },
        requests,
        tenants: 4,
        priority_levels: 3,
        seed,
    }
    .generate(&[
        flashmem_graph::ModelZoo::gptneo_small(),
        flashmem_graph::ModelZoo::vit(),
    ])
}

fn engine(devices: usize, policy: Box<dyn SchedulePolicy>) -> ServeEngine {
    ServeEngine::new(fleet(devices), FlashMemConfig::memory_priority())
        .with_policy(policy)
        .with_tenant_slo("tenant-0", 900.0)
        .with_tenant_slo("tenant-1", 2_500.0)
}

/// 64 devices on a 4-thread pool: every worker serves many timelines, steal
/// order is nondeterministic, and the merged report must not care.
#[test]
fn oversubscribed_fleet_matches_serial_byte_for_byte() {
    let requests = workload(128, 0xF1EE_7001);
    let serial = engine(64, Box::new(FifoPolicy))
        .run_on(&ThreadPool::with_threads(1), &requests)
        .expect("serial fleet run succeeds");
    let parallel = engine(64, Box::new(FifoPolicy))
        .run_on(&ThreadPool::with_threads(4), &requests)
        .expect("parallel fleet run succeeds");
    // Round-robin placement over 64 devices with 128 requests: every device
    // actually served work, so the fan-out was exercised end to end.
    assert_eq!(parallel.devices.len(), 64);
    assert!(parallel.devices.iter().all(|d| d.requests == 2));
    assert_eq!(parallel.completed(), 128);
    // Byte identity of the full report, cache counters included (in-flight
    // compile dedup makes the hit/miss totals schedule-independent).
    assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
}

/// The same identity across the policy spectrum the quick sweep covers:
/// concurrent slots, preemption and deadline-aware admission all run their
/// whole decision loop inside a worker.
#[test]
fn every_policy_kind_is_byte_identical_across_pool_widths() {
    let requests = workload(24, 0xF1EE_7002);
    type PolicyMaker = fn() -> Box<dyn SchedulePolicy>;
    let policies: Vec<(&str, PolicyMaker)> = vec![
        ("priority", || {
            Box::new(PriorityPolicy::with_max_in_flight(2))
        }),
        ("preemptive", || Box::new(PreemptivePriorityPolicy::new())),
        ("edf", || Box::new(EdfPolicy::with_max_in_flight(2))),
    ];
    for (name, make) in policies {
        let serial = engine(6, make())
            .run_on(&ThreadPool::with_threads(1), &requests)
            .expect("serial fleet run succeeds");
        let parallel = engine(6, make())
            .run_on(&ThreadPool::with_threads(3), &requests)
            .expect("parallel fleet run succeeds");
        assert_eq!(
            format!("{serial:?}"),
            format!("{parallel:?}"),
            "policy `{name}` diverged across pool widths"
        );
    }
}

/// Four identical devices racing to compile the same two models: on a cold
/// cache every outcome must report `cache_hit: false` no matter which device
/// compiled first, and a second run through the same (now warm) engine must
/// report `cache_hit: true` everywhere. This is the determinism regression
/// behind the prologue warmth snapshot — with the racy `compile()` flag, the
/// cold run's hit/miss split depended on worker scheduling.
#[test]
fn cache_hit_reports_warmth_at_run_start_not_a_compile_race() {
    let requests = workload(16, 0xF1EE_7004);
    let engine = ServeEngine::new(
        vec![DeviceSpec::oneplus_12(); 4],
        FlashMemConfig::memory_priority(),
    );
    let pool = ThreadPool::with_threads(4);
    let cold = engine
        .run_on(&pool, &requests)
        .expect("cold fleet run succeeds");
    assert!(
        cold.outcomes.iter().all(|o| !o.cache_hit),
        "a cold cache has no warm plans, whichever device compiles first"
    );
    let warm = engine
        .run_on(&pool, &requests)
        .expect("warm fleet run succeeds");
    assert!(
        warm.outcomes.iter().all(|o| o.cache_hit),
        "every plan was compiled (and so warm) before the second run began"
    );
}

/// A policy that funnels every request onto device 0, leaving the rest of
/// the fleet idle — the pile-up the steal phase exists to drain.
struct HotspotPolicy;

impl SchedulePolicy for HotspotPolicy {
    fn name(&self) -> &'static str {
        "hotspot"
    }

    fn place(&self, _request: &ServeRequest, _seq: usize, _fleet_len: usize) -> usize {
        0
    }

    fn pick(&self, candidates: &[PendingEntry], _ctx: &PolicyContext) -> usize {
        candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.arrival_ms
                    .partial_cmp(&b.arrival_ms)
                    .expect("arrivals are finite")
                    .then(a.seq.cmp(&b.seq))
            })
            .map(|(i, _)| i)
            .expect("pick called with candidates")
    }
}

/// The steal phase moves queued work off a backed-up device — and because
/// the plan is committed in the sequential prologue, the resulting report
/// (which requests moved, where, and every downstream timestamp) is
/// byte-identical between the serial loop and a 4-thread pool.
#[test]
fn steal_phase_is_byte_identical_across_pool_widths() {
    let requests = workload(32, 0xF1EE_7005);
    let steal_engine = || {
        ServeEngine::new(fleet(4), FlashMemConfig::memory_priority())
            .with_policy(Box::new(HotspotPolicy))
            .with_overload_control(OverloadControl::disabled().with_steal())
    };
    let serial = steal_engine()
        .run_on(&ThreadPool::with_threads(1), &requests)
        .expect("serial steal run succeeds");
    let parallel = steal_engine()
        .run_on(&ThreadPool::with_threads(4), &requests)
        .expect("parallel steal run succeeds");
    // Every request was placed on device 0, so any work elsewhere was
    // stolen there by the prologue's re-placement plan.
    assert!(
        parallel.stolen() > 0,
        "a single-device pile-up must trigger the steal phase"
    );
    assert!(
        parallel.devices[1..].iter().any(|d| d.requests > 0),
        "stolen work lands on the idle devices"
    );
    assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
}

/// A policy that places fine but panics the first time a device tries to
/// admit work — i.e. the panic fires *inside* `run_device` on a pool worker.
struct PanickingPolicy;

impl SchedulePolicy for PanickingPolicy {
    fn name(&self) -> &'static str {
        "panicky"
    }

    fn place(&self, _request: &ServeRequest, seq: usize, fleet_len: usize) -> usize {
        seq % fleet_len.max(1)
    }

    fn pick(&self, _candidates: &[PendingEntry], _ctx: &PolicyContext) -> usize {
        panic!("policy exploded while picking");
    }
}

#[test]
fn panicking_policy_surfaces_as_error_not_hang() {
    let requests = workload(8, 0xF1EE_7003);
    let result =
        engine(4, Box::new(PanickingPolicy)).run_on(&ThreadPool::with_threads(4), &requests);
    match result {
        Err(SimError::WorkerPanic { message }) => {
            assert!(message.contains("policy exploded"), "{message}");
        }
        other => panic!("expected WorkerPanic, got {other:?}"),
    }
}

#[test]
fn injected_faults_take_the_outcome_path_while_real_panics_still_propagate() {
    // Regression pin for the fault/panic split: an *injected* device loss
    // must never ride the `WorkerPanic` error path — it becomes per-device
    // outcomes — while a genuine panic inside a chaos-round worker still
    // propagates as `WorkerPanic` by submission index.
    let requests = workload(8, 0xF1EE_7004);
    let injected = engine(4, Box::new(FifoPolicy))
        .with_fault_plan(flashmem_serve::FaultPlan::seeded(1).with_device_loss(0, 100.0))
        .run_on(&ThreadPool::with_threads(4), &requests)
        .expect("injected device loss is a per-request disposition, not an engine error");
    assert_eq!(injected.outcomes.len(), requests.len());
    assert!(
        injected.outcomes.iter().any(|o| o.error.is_some()),
        "loss at 100 ms strands some requests"
    );

    let panicked = engine(4, Box::new(PanickingPolicy))
        .with_fault_plan(flashmem_serve::FaultPlan::seeded(1).with_flaky_device(1, 0.2))
        .run_on(&ThreadPool::with_threads(4), &requests);
    match panicked {
        Err(SimError::WorkerPanic { message }) => {
            assert!(message.contains("policy exploded"), "{message}");
        }
        other => panic!("expected WorkerPanic from the chaos path, got {other:?}"),
    }
}
