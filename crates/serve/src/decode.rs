//! Continuous batching for generative decode.
//!
//! Where [`ServeEngine`](crate::ServeEngine) replays each request as one
//! lowered command stream, the [`DecodeEngine`] models autoregressive
//! generation as a *step loop*: every request runs one full-graph **prefill**
//! pass (the prompt, emitting the first token), then joins a per-device
//! decode batch in which every in-flight request emits one token per
//! **decode step** while its KV cache grows in the device's
//! [`MemoryTracker`]. At sequence length 1 a decode step is dominated by
//! weight traffic, which a batch shares: the step's weights are loaded once
//! and serve every sequence in it (see
//! [`DecodeStepPlan::batched`](flashmem_gpu_sim::DecodeStepPlan::batched)),
//! so batched decode throughput rises far faster than step latency — the
//! continuous-batching win on an IO-bound hierarchy.
//!
//! ## The step loop
//!
//! Each device repeats, on its own timeline:
//!
//! 1. **Join** — at the step boundary, arrived waiting requests join the
//!    batch when the batch is empty or when
//!    `arrived ≥ waiting_served_ratio × active` ([`BatchConfig`]), so a
//!    steady trickle of prefills cannot starve in-flight decodes: the
//!    scheduler only pays a prefill stall once enough work has queued up to
//!    amortize it. Joins respect `max_batch` and the `token_budget` — a
//!    request reserves its *maximum* context (`prompt + output − 1` tokens)
//!    up front, so a joined request can never blow the budget mid-decode.
//!    Each joiner's prefill replays sequentially (a prefill owns the device,
//!    as in production continuous-batching servers).
//! 2. **Step** — the active batch is grouped per model (deterministically,
//!    in abbreviation order) and each group replays its batched step stream;
//!    every member's KV cache grows by one token and emits one token at the
//!    step's end.
//! 3. **Leave** — requests that have emitted their last token leave at the
//!    boundary and release their KV residency in one sweep.
//!
//! ## Determinism
//!
//! Placement is decided in the sequential prologue (round-robin over
//! arrival order); after that each device's step loop is a pure function of
//! its assigned request list, stepped single-threaded inside one pool job.
//! Outcomes merge sorted by submission `seq` and trace buffers merge in
//! fleet order — the same commit-point discipline as
//! [`ServeEngine::run_on`](crate::ServeEngine::run_on) — so the report is
//! byte-identical at every pool width.
//!
//! ## Cost memoization
//!
//! Replaying a command stream per token would cost millions of simulator
//! events for long generations. Instead each device replays every distinct
//! (model, batch-size) step stream **once** against its tracker (charging
//! and releasing the step's transients, which establishes the transient
//! peak) and memoizes the [`StepCost`]; subsequent steps advance sessions
//! through [`DecodeSession::advance_step`], which grows KV and timestamps
//! the token without re-stepping the stream. Prefill costs are memoized per
//! model the same way.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use flashmem_core::cache::ArtifactCache;
use flashmem_core::pool::{self, ThreadPool};
use flashmem_core::telemetry::{
    FleetTrace, PhaseBreakdown, TraceConfig, TraceKind, TraceLane, TraceRecorder,
};
use flashmem_core::{FlashMem, FlashMemConfig};
use flashmem_gpu_sim::decode::replay_stream;
use flashmem_gpu_sim::engine::{CommandStream, GpuSimulator, SimConfig};
use flashmem_gpu_sim::error::SimResult;
use flashmem_gpu_sim::memory::MemoryTracker;
use flashmem_gpu_sim::{DecodeSession, DecodeStepPlan, DeviceSpec, SimError, StepCost};

use crate::metrics::{
    DecodeOutcome, DeviceReport, LatencySummary, PriorityLatency, RecoveryTallies, RequestOutcome,
    ServeReport, SloSummary, TokenMetrics,
};
use crate::policy::RecoveryControl;
use crate::request::{FailureCause, ServeRequest};
use crate::server::lower_artifact;
use flashmem_gpu_sim::{FaultKind, FaultPlan};

const MIB: f64 = 1024.0 * 1024.0;

/// Continuous-batching knobs. The defaults are deliberately conservative:
/// a batch of 8 and a 2048-token KV budget fit every autoregressive model in
/// the zoo on every device spec without starving one-shot traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchConfig {
    /// Largest number of requests decoding together on one device
    /// (clamped to at least 1; 1 means one-shot serving — each request
    /// prefills and decodes alone).
    pub max_batch: usize,
    /// Fleet-wide KV-cache budget per device, in *context tokens*. A
    /// request reserves its maximum context (`prompt + output − 1`) at
    /// join, so the resident KV of a device's batch never exceeds the
    /// budget.
    pub token_budget: u64,
    /// Join threshold: waiting prefills are admitted at a step boundary
    /// only when the batch is empty or `arrived ≥ ratio × active`. Higher
    /// values protect in-flight decode latency (ITL) at the cost of
    /// time-to-first-token for waiting requests.
    pub waiting_served_ratio: f64,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 8,
            token_budget: 2048,
            waiting_served_ratio: 1.2,
        }
    }
}

impl BatchConfig {
    /// One-shot serving: every request prefills and decodes alone, in
    /// arrival order. The baseline the continuous-batching sweep compares
    /// against.
    pub fn one_shot() -> Self {
        BatchConfig {
            max_batch: 1,
            ..BatchConfig::default()
        }
    }
}

/// Compiled per-model state one device keeps across its whole run.
struct ModelPlans {
    /// Lowered full-graph stream (the prefill pass).
    prefill_stream: CommandStream,
    /// The single-token step plan the batch replays.
    step_plan: DecodeStepPlan,
    /// KV bytes appended per context token.
    kv_bytes_per_token: u64,
}

/// One in-flight generative request on a device.
struct ActiveDecode {
    seq: usize,
    abbr: String,
    tenant: String,
    priority: u8,
    arrival_ms: f64,
    deadline_ms: Option<f64>,
    /// Prefill start (admission) time.
    start_ms: f64,
    cache_hit: bool,
    session: DecodeSession,
    /// Largest per-model sub-batch this request shared a step with.
    max_batch_seen: usize,
    /// Transfer-queue busy intervals attributed to this request (absolute
    /// time), for phase attribution.
    transfer_intervals: Vec<(f64, f64)>,
    /// Compute-queue busy intervals attributed to this request.
    compute_intervals: Vec<(f64, f64)>,
    /// Step failure, if one of this request's steps could not complete.
    error: Option<SimError>,
    /// Tokens emitted by *earlier* attempts (a re-prefilled request resumes
    /// from this position; 0 on a first attempt).
    resumed_tokens: u32,
    /// Retry redispatches this request consumed before this attempt.
    retries: u32,
    /// Device-loss failover hops this request consumed before this attempt.
    hops: u32,
    /// Whether an earlier attempt ran (and died) on a different device.
    failed_over: bool,
}

impl ActiveDecode {
    /// Build the outcome row at `completion_ms`, consuming the entry. The
    /// session's KV must already be released.
    fn into_outcome(
        self,
        device: &str,
        device_index: usize,
        completion_ms: f64,
        peak_memory_mb: f64,
    ) -> RequestOutcome {
        let queue_wait_ms = (self.start_ms - self.arrival_ms).max(0.0);
        let latency_ms = (completion_ms - self.arrival_ms).max(0.0);
        let phases = PhaseBreakdown::attribute(
            latency_ms,
            queue_wait_ms,
            0.0,
            0.0,
            &self.transfer_intervals,
            &self.compute_intervals,
        );
        let times = self.session.token_times_ms();
        let decode = if self.error.is_none() {
            // A re-prefilled attempt's session holds `original prompt +
            // resumed` context and emits only the remaining tokens; the
            // outcome reports the submission's cumulative view.
            Some(DecodeOutcome {
                prompt_tokens: self.session.prompt_tokens() - self.resumed_tokens,
                output_tokens: self.resumed_tokens + self.session.emitted_tokens(),
                ttft_ms: times.first().map_or(0.0, |t| t - self.arrival_ms),
                itl_ms: times.windows(2).map(|w| w[1] - w[0]).collect(),
                kv_peak_bytes: self.session.max_context_tokens()
                    * self.session.kv().bytes_per_token(),
                max_batch: self.max_batch_seen,
            })
        } else {
            None
        };
        RequestOutcome {
            seq: self.seq,
            model: self.abbr,
            tenant: self.tenant,
            priority: self.priority,
            device: device.to_string(),
            device_index,
            arrival_ms: self.arrival_ms,
            start_ms: self.start_ms,
            completion_ms,
            queue_wait_ms,
            latency_ms,
            deadline_ms: self.deadline_ms,
            admission_laxity_ms: None,
            resident_estimate_bytes: self.session.max_context_tokens()
                * self.session.kv().bytes_per_token(),
            preemptions: 0,
            suspended_ms: 0.0,
            resume_penalty_ms: 0.0,
            cache_hit: self.cache_hit,
            peak_memory_mb,
            phases,
            rejected: None,
            stolen_from: None,
            failure: self.error.as_ref().map(FailureCause::from_error),
            retries: self.retries,
            failed_over: self.failed_over,
            error: self.error,
            report: None,
            decode,
        }
    }
}

/// One device timeline's unit of parallel work, assembled by the sequential
/// placement prologue.
struct DecodeJob<'a> {
    index: usize,
    device: &'a DeviceSpec,
    engine: FlashMem,
    sim: GpuSimulator,
    /// `(seq, request)` pairs placed here, sorted by `(arrival, seq)`.
    assigned: Vec<(usize, &'a ServeRequest)>,
    /// Plan-cache keys warm when the run began (prologue snapshot, so
    /// `cache_hit` is identical at every pool width).
    warm: HashSet<u64>,
}

/// Attempt state a re-dispatched decode request carries between rounds.
#[derive(Debug, Clone)]
struct DecodeCarry {
    /// The submission's true arrival (the per-round request clone's
    /// `arrival_ms` is the re-dispatch ready floor, not the arrival).
    original_arrival_ms: f64,
    /// Tokens emitted by earlier attempts: the re-prefill resume position.
    resumed_tokens: u32,
    /// Same-fault retry redispatches consumed.
    retries: u32,
    /// Device-loss failover hops consumed.
    hops: u32,
    /// Whether any earlier attempt ran on a different device.
    failed_over: bool,
}

impl DecodeCarry {
    fn fresh(request: &ServeRequest) -> Self {
        DecodeCarry {
            original_arrival_ms: request.arrival_ms,
            resumed_tokens: 0,
            retries: 0,
            hops: 0,
            failed_over: false,
        }
    }
}

/// Per-round chaos state handed to `run_device` alongside its job.
struct DecodeChaosJob {
    carry: HashMap<usize, DecodeCarry>,
}

impl DecodeChaosJob {
    /// Stamp a freshly admitted entry with its carried attempt state.
    fn apply(&self, seq: usize, entry: &mut ActiveDecode) {
        if let Some(carry) = self.carry.get(&seq) {
            entry.arrival_ms = carry.original_arrival_ms;
            entry.resumed_tokens = carry.resumed_tokens;
            entry.retries = carry.retries;
            entry.hops = carry.hops;
            entry.failed_over = carry.failed_over;
        }
    }
}

/// A request attempt an injected fault killed, surfaced to the sequential
/// re-dispatch planner. Carries the fully built typed-failed outcome so the
/// planner can commit it unchanged when no recovery budget remains.
struct DecodeOrphan {
    outcome: RequestOutcome,
    /// Cumulative tokens emitted across all attempts (the resume position).
    emitted: u32,
    retries: u32,
    hops: u32,
    kind: FaultKind,
}

/// Everything one device's round produces.
struct DecodeRun {
    outcomes: Vec<RequestOutcome>,
    report: DeviceReport,
    trace: TraceRecorder,
    orphans: Vec<DecodeOrphan>,
    /// The device was lost (injected device-loss) during this round.
    lost: bool,
}

/// Route a finished (or fault-killed) entry: injected faults become orphans
/// for the planner; everything else commits its outcome row here.
#[allow(clippy::too_many_arguments)]
fn push_entry(
    entry: ActiveDecode,
    outcomes: &mut Vec<RequestOutcome>,
    orphans: &mut Vec<DecodeOrphan>,
    chaos: bool,
    device: &DeviceSpec,
    device_index: usize,
    completion_ms: f64,
    peak_memory_mb: f64,
) {
    let fault = match &entry.error {
        Some(SimError::Fault { kind, .. }) => Some(*kind),
        _ => None,
    };
    let emitted = entry.resumed_tokens + entry.session.emitted_tokens();
    let retries = entry.retries;
    let hops = entry.hops;
    let outcome = entry.into_outcome(&device.name, device_index, completion_ms, peak_memory_mb);
    match fault {
        Some(kind) if chaos => orphans.push(DecodeOrphan {
            outcome,
            emitted,
            retries,
            hops,
            kind,
        }),
        _ => outcomes.push(outcome),
    }
}

/// Render a caught panic payload for [`SimError::WorkerPanic`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The continuous-batching engine for generative (decode) requests.
///
/// Every request must carry decode token counts
/// ([`ServeRequest::with_decode_tokens`]) and reference a model with a
/// [`DecodeSpec`](flashmem_graph::models::DecodeSpec); mixing in one-shot requests
/// is an [`SimError::InvalidParameter`] — serve those through
/// [`ServeEngine`](crate::ServeEngine).
pub struct DecodeEngine {
    fleet: Vec<DeviceSpec>,
    config: FlashMemConfig,
    batch: BatchConfig,
    cache: Arc<ArtifactCache>,
    trace: TraceConfig,
    fault_plan: FaultPlan,
    recovery: RecoveryControl,
}

impl DecodeEngine {
    /// A continuous-batching engine over `fleet` with default
    /// [`BatchConfig`] knobs.
    pub fn new(fleet: Vec<DeviceSpec>, config: FlashMemConfig) -> Self {
        DecodeEngine {
            fleet,
            config,
            batch: BatchConfig::default(),
            cache: Arc::new(ArtifactCache::new()),
            trace: TraceConfig::disabled(),
            fault_plan: FaultPlan::default(),
            recovery: RecoveryControl::disabled(),
        }
    }

    /// Arm a deterministic [`FaultPlan`] (builder style). Empty by default;
    /// with an empty plan and recovery disabled the engine takes the exact
    /// legacy single-round path, byte for byte.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Configure failure recovery (builder style). The decode path supports
    /// retry budgets, simulated-time backoff and device-loss failover; a
    /// redispatched request **re-prefills from its token position** (tokens
    /// already streamed to the client are not re-generated: the retry's
    /// prompt absorbs them, preserving the `prompt + output − 1` context
    /// invariant). Quarantine/probe knobs are ignored here — the decode
    /// placement has no policy hook to confine, so the circuit breaker lives
    /// only in [`ServeEngine`](crate::ServeEngine). A retried request's
    /// [`DecodeOutcome`] reports the *final* attempt's token telemetry.
    pub fn with_recovery_control(mut self, recovery: RecoveryControl) -> Self {
        self.recovery = recovery;
        self
    }

    /// Replace the batching knobs (builder style). Values are clamped to
    /// sane minima: `max_batch ≥ 1`, `token_budget ≥ 1`,
    /// `waiting_served_ratio ≥ 0`.
    pub fn with_batching(mut self, batch: BatchConfig) -> Self {
        self.batch = BatchConfig {
            max_batch: batch.max_batch.max(1),
            token_budget: batch.token_budget.max(1),
            waiting_served_ratio: batch.waiting_served_ratio.max(0.0),
        };
        self
    }

    /// Share an existing plan cache instead of a private one.
    pub fn with_cache(mut self, cache: Arc<ArtifactCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Configure event tracing (builder style). Off by default; when
    /// enabled the report's trace carries [`TraceKind::Prefill`] spans and
    /// [`TraceKind::BatchJoin`]/[`TraceKind::BatchLeave`] instants on each
    /// request's lane, plus [`TraceKind::DecodeStep`] spans on the compute
    /// lane.
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// The fleet being served.
    pub fn fleet(&self) -> &[DeviceSpec] {
        &self.fleet
    }

    /// The shared plan cache.
    pub fn cache(&self) -> &ArtifactCache {
        &self.cache
    }

    /// The active batching knobs.
    pub fn batch_config(&self) -> BatchConfig {
        self.batch
    }

    /// Serve `requests` on the process-wide pool. See [`run_on`](Self::run_on).
    ///
    /// # Errors
    ///
    /// As [`run_on`](Self::run_on).
    pub fn run(&self, requests: &[ServeRequest]) -> SimResult<ServeReport> {
        self.run_on(pool::global(), requests)
    }

    /// Serve `requests` (any order) and report per-request outcomes with
    /// token-level decode results, plus the usual fleet utilization, latency
    /// and SLO metrics. Device timelines fan out on `pool`; the report is
    /// byte-identical at every pool width.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for an empty fleet, a request
    /// without decode token counts, a model without a decode spec, or a
    /// request whose maximum context exceeds its model's context window.
    /// Worker panics surface as [`SimError::WorkerPanic`]; per-request
    /// failures (out-of-memory) are recorded in the outcomes instead.
    pub fn run_on(&self, pool: &ThreadPool, requests: &[ServeRequest]) -> SimResult<ServeReport> {
        let fleet_len = self.fleet.len();
        if fleet_len == 0 {
            return Err(SimError::InvalidParameter {
                message: "cannot serve on an empty fleet: DecodeEngine needs at least one device"
                    .to_string(),
            });
        }

        // ---- validation + placement: the sequential prologue ----
        for request in requests {
            let Some(params) = request.decode else {
                return Err(SimError::InvalidParameter {
                    message: format!(
                        "request for {} has no decode token counts; DecodeEngine only serves \
                         generative requests (use ServeRequest::with_decode_tokens)",
                        request.model.abbr
                    ),
                });
            };
            let Some(spec) = request.model.decode() else {
                return Err(SimError::InvalidParameter {
                    message: format!(
                        "model {} has no decode spec; only autoregressive models can be served \
                         through the decode path",
                        request.model.abbr
                    ),
                });
            };
            if params.max_context_tokens() > spec.max_context {
                return Err(SimError::InvalidParameter {
                    message: format!(
                        "request for {} needs {} context tokens but the model's window is {}",
                        request.model.abbr,
                        params.max_context_tokens(),
                        spec.max_context
                    ),
                });
            }
        }

        // Round-robin placement over (arrival, seq) order: the decode path
        // has no policy hook yet, and round-robin keeps per-device batches
        // balanced, which is what batching throughput wants.
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by(|&a, &b| {
            requests[a]
                .arrival_ms
                .partial_cmp(&requests[b].arrival_ms)
                .expect("arrival times are finite")
                .then(a.cmp(&b))
        });
        let mut per_device: Vec<Vec<(usize, &ServeRequest)>> = vec![Vec::new(); fleet_len];
        for (i, &seq) in order.iter().enumerate() {
            per_device[i % fleet_len].push((seq, &requests[seq]));
        }

        if !self.fault_plan.is_empty() || self.recovery.any_enabled() {
            return self.run_chaos(pool, requests, per_device);
        }

        let jobs: Vec<DecodeJob<'_>> = self
            .fleet
            .iter()
            .enumerate()
            .map(|(index, device)| {
                let engine = FlashMem::new(device.clone()).with_config(self.config.clone());
                let assigned = std::mem::take(&mut per_device[index]);
                let warm: HashSet<u64> = assigned
                    .iter()
                    .map(|(_, request)| ArtifactCache::key_for(&engine, &request.model, device))
                    .filter(|&key| self.cache.is_warm(key))
                    .collect();
                DecodeJob {
                    index,
                    device,
                    engine,
                    sim: GpuSimulator::new(device.clone(), SimConfig::default()),
                    assigned,
                    warm,
                }
            })
            .collect();

        // ---- parallel device stepping ----
        let device_results = pool.try_parallel_map(jobs, |job| {
            catch_unwind(AssertUnwindSafe(|| self.run_device(job, None))).unwrap_or_else(
                |payload| {
                    Err(SimError::WorkerPanic {
                        message: panic_message(payload),
                    })
                },
            )
        })?;

        // ---- ordered merge: the commit point ----
        let mut outcomes: Vec<RequestOutcome> = Vec::new();
        let mut devices = Vec::with_capacity(fleet_len);
        let mut recorders = Vec::with_capacity(fleet_len);
        for run in device_results {
            let DecodeRun {
                outcomes: mut device_outcomes,
                report,
                trace,
                ..
            } = run;
            outcomes.append(&mut device_outcomes);
            devices.push(report);
            recorders.push(trace);
        }
        outcomes.sort_by_key(|o| o.seq);
        Ok(self.assemble_report(outcomes, devices, recorders, RecoveryTallies::default()))
    }

    /// The multi-round chaos driver: round 0 is the normal placement; every
    /// later round re-dispatches the previous round's fault orphans (retry
    /// with backoff on the same device, or failover onto a surviving one,
    /// re-prefilling from the orphan's token position). All re-dispatch
    /// decisions are taken here, sequentially, between rounds — the same
    /// commit-point discipline as placement — so the report stays
    /// byte-identical at every pool width.
    fn run_chaos(
        &self,
        pool: &ThreadPool,
        requests: &[ServeRequest],
        per_device: Vec<Vec<(usize, &ServeRequest)>>,
    ) -> SimResult<ServeReport> {
        let fleet_len = self.fleet.len();
        let mut outcomes: Vec<RequestOutcome> = Vec::new();
        let mut devices: Vec<Option<DeviceReport>> = vec![None; fleet_len];
        let mut masters: Vec<TraceRecorder> = (0..fleet_len)
            .map(|_| TraceRecorder::new(self.trace))
            .collect();
        let mut tallies = RecoveryTallies::default();
        let mut alive: Vec<bool> = vec![true; fleet_len];
        let mut cum_makespan: Vec<f64> = vec![0.0; fleet_len];

        // Owned per-round work units (re-dispatched attempts carry adjusted
        // decode params and an arrival floor).
        let mut work: Vec<Vec<(usize, ServeRequest, DecodeCarry)>> = per_device
            .into_iter()
            .map(|assigned| {
                assigned
                    .into_iter()
                    .map(|(seq, request)| (seq, request.clone(), DecodeCarry::fresh(request)))
                    .collect()
            })
            .collect();
        let mut first_round = true;

        while first_round || work.iter().any(|w| !w.is_empty()) {
            // Round 0 runs every device (so the fleet report covers idle
            // devices exactly like the legacy path); later rounds only the
            // devices with re-dispatched work.
            let included: Vec<usize> = (0..fleet_len)
                .filter(|&d| first_round || !work[d].is_empty())
                .collect();
            let round_work = std::mem::replace(&mut work, vec![Vec::new(); fleet_len]);
            let jobs: Vec<(DecodeJob<'_>, DecodeChaosJob)> = included
                .iter()
                .map(|&index| {
                    let device = &self.fleet[index];
                    let engine = FlashMem::new(device.clone()).with_config(self.config.clone());
                    let assigned: Vec<(usize, &ServeRequest)> = round_work[index]
                        .iter()
                        .map(|(seq, request, _)| (*seq, request))
                        .collect();
                    let warm: HashSet<u64> = assigned
                        .iter()
                        .map(|(_, request)| ArtifactCache::key_for(&engine, &request.model, device))
                        .filter(|&key| self.cache.is_warm(key))
                        .collect();
                    let carry: HashMap<usize, DecodeCarry> = round_work[index]
                        .iter()
                        .map(|(seq, _, carry)| (*seq, carry.clone()))
                        .collect();
                    (
                        DecodeJob {
                            index,
                            device,
                            engine,
                            sim: GpuSimulator::new(device.clone(), SimConfig::default()),
                            assigned,
                            warm,
                        },
                        DecodeChaosJob { carry },
                    )
                })
                .collect();

            let device_results = pool.try_parallel_map(jobs, |(job, chaos)| {
                catch_unwind(AssertUnwindSafe(|| self.run_device(job, Some(&chaos))))
                    .unwrap_or_else(|payload| {
                        Err(SimError::WorkerPanic {
                            message: panic_message(payload),
                        })
                    })
            })?;

            // ---- ordered merge + sequential re-dispatch planning ----
            let mut orphans: Vec<DecodeOrphan> = Vec::new();
            for (&index, run) in included.iter().zip(device_results) {
                let DecodeRun {
                    outcomes: mut device_outcomes,
                    report,
                    trace,
                    orphans: mut device_orphans,
                    lost,
                } = run;
                outcomes.append(&mut device_outcomes);
                cum_makespan[index] = cum_makespan[index].max(report.makespan_ms);
                match &mut devices[index] {
                    Some(existing) => existing.absorb_round(report),
                    slot => *slot = Some(report),
                }
                masters[index].absorb(trace);
                if lost {
                    // A lost device is permanently out of rotation; when
                    // recovery is armed, count it as a quarantine decision
                    // like the serve engine does.
                    if alive[index] && self.recovery.any_enabled() {
                        tallies.quarantines += 1;
                    }
                    alive[index] = false;
                }
                orphans.append(&mut device_orphans);
            }
            orphans.sort_by_key(|o| o.outcome.seq);

            for orphan in orphans {
                let seq = orphan.outcome.seq;
                let from = orphan.outcome.device_index;
                let failed_at = orphan.outcome.completion_ms;
                let can_retry = orphan.kind != FaultKind::DeviceLoss
                    && orphan.retries < self.recovery.retry_budget;
                let healthiest =
                    (0..fleet_len)
                        .filter(|&d| alive[d] && d != from)
                        .min_by(|&a, &b| {
                            cum_makespan[a]
                                .partial_cmp(&cum_makespan[b])
                                .expect("makespans are finite")
                                .then(a.cmp(&b))
                        });
                let (dest, carry) = if can_retry {
                    // Same-device retry (unless the device died under it).
                    let dest = if alive[from] { Some(from) } else { healthiest };
                    (
                        dest,
                        DecodeCarry {
                            original_arrival_ms: orphan.outcome.arrival_ms,
                            resumed_tokens: orphan.emitted,
                            retries: orphan.retries + 1,
                            hops: orphan.hops,
                            failed_over: orphan.outcome.failed_over
                                || dest.is_some_and(|d| d != from),
                        },
                    )
                } else if self.recovery.failover && orphan.hops < fleet_len as u32 {
                    (
                        healthiest,
                        DecodeCarry {
                            original_arrival_ms: orphan.outcome.arrival_ms,
                            resumed_tokens: orphan.emitted,
                            retries: orphan.retries,
                            hops: orphan.hops + 1,
                            failed_over: true,
                        },
                    )
                } else {
                    (None, DecodeCarry::fresh(&requests[seq]))
                };
                let Some(dest) = dest else {
                    // No budget left or no surviving device: the typed-failed
                    // outcome the device already built is final.
                    outcomes.push(orphan.outcome);
                    continue;
                };
                let attempts = carry.retries + carry.hops;
                let ready = (failed_at + self.recovery.backoff_ms * f64::from(attempts))
                    .max(cum_makespan[dest]);
                let mut request = requests[seq].clone();
                let params = request.decode.expect("validated in the prologue");
                request.decode = Some(crate::request::DecodeParams {
                    prompt_tokens: params.prompt_tokens + carry.resumed_tokens,
                    output_tokens: params.output_tokens - carry.resumed_tokens,
                });
                request.arrival_ms = ready;
                if masters[dest].enabled() {
                    let (kind, verb) = if can_retry {
                        (TraceKind::Retry, "retry")
                    } else {
                        (TraceKind::Failover, "failover")
                    };
                    masters[dest].instant(
                        kind,
                        TraceLane::Request(seq),
                        &format!(
                            "{verb} {} attempt {} from device #{from}",
                            request.model.abbr,
                            attempts + 1
                        ),
                        ready,
                    );
                }
                if can_retry {
                    tallies.retries += 1;
                } else {
                    tallies.failovers += 1;
                }
                work[dest].push((seq, request, carry));
            }
            first_round = false;
        }

        outcomes.sort_by_key(|o| o.seq);
        let devices: Vec<DeviceReport> = devices
            .into_iter()
            .enumerate()
            .map(|(index, report)| {
                report.unwrap_or_else(|| DeviceReport::empty(&self.fleet[index].name))
            })
            .collect();
        let report = self.assemble_report(outcomes, devices, masters, tallies);
        report.assert_disposition();
        Ok(report)
    }

    /// Assemble the final [`ServeReport`] from merged outcomes, per-device
    /// reports and trace recorders — shared by the legacy and chaos paths.
    fn assemble_report(
        &self,
        outcomes: Vec<RequestOutcome>,
        devices: Vec<DeviceReport>,
        recorders: Vec<TraceRecorder>,
        recovery: RecoveryTallies,
    ) -> ServeReport {
        let trace = if self.trace.enabled {
            Some(FleetTrace {
                processes: self
                    .fleet
                    .iter()
                    .zip(recorders)
                    .enumerate()
                    .map(|(index, (device, recorder))| {
                        recorder.into_process_trace(&format!("{} #{index}", device.name))
                    })
                    .collect(),
            })
        } else {
            None
        };

        let latencies: Vec<f64> = outcomes
            .iter()
            .filter(|o| o.succeeded())
            .map(|o| o.latency_ms)
            .collect();
        let makespan = devices
            .iter()
            .map(|d| d.makespan_ms)
            .fold(0.0_f64, f64::max);
        let throughput_rps = if makespan > 0.0 {
            latencies.len() as f64 * 1000.0 / makespan
        } else {
            0.0
        };
        let tokens = TokenMetrics::from_outcomes(&outcomes, makespan);
        let latency = LatencySummary::from_latencies(&latencies);
        let per_priority = PriorityLatency::from_outcomes(&outcomes);
        let slo = SloSummary::from_outcomes(&outcomes);
        ServeReport {
            policy: if self.batch.max_batch == 1 {
                "decode-one-shot".to_string()
            } else {
                format!("decode-continuous(b={})", self.batch.max_batch)
            },
            outcomes,
            devices,
            latency,
            per_priority,
            slo,
            preemptions: 0,
            throughput_rps,
            ttft: tokens.ttft,
            itl: tokens.itl,
            decode_tokens: tokens.decode_tokens,
            tokens_per_s: tokens.tokens_per_s,
            cache: self.cache.stats(),
            recovery,
            trace,
        }
    }

    /// Run one device's step loop to completion. Single-threaded per device;
    /// a pure function of the assigned request list (plus the per-round
    /// chaos state), so the result is identical at every pool width.
    #[allow(clippy::too_many_lines)]
    fn run_device(
        &self,
        job: DecodeJob<'_>,
        chaos: Option<&DecodeChaosJob>,
    ) -> SimResult<DecodeRun> {
        let DecodeJob {
            index: device_index,
            device,
            engine,
            sim,
            assigned,
            warm,
        } = job;
        let mut trace = TraceRecorder::new(self.trace);
        let mut tracker = MemoryTracker::for_device(device);
        let mut waiting = assigned;
        waiting.sort_by(|a, b| {
            a.1.arrival_ms
                .partial_cmp(&b.1.arrival_ms)
                .expect("arrival times are finite")
                .then(a.0.cmp(&b.0))
        });
        let total = waiting.len();

        let mut plans: HashMap<String, ModelPlans> = HashMap::new();
        let mut prefill_costs: HashMap<String, StepCost> = HashMap::new();
        let mut step_costs: HashMap<(String, usize), StepCost> = HashMap::new();

        let mut active: Vec<ActiveDecode> = Vec::new();
        let mut outcomes: Vec<RequestOutcome> = Vec::new();
        let mut orphans: Vec<DecodeOrphan> = Vec::new();
        let lost_at = if chaos.is_some() {
            self.fault_plan.device_loss_ms(device_index)
        } else {
            None
        };
        let mut lost = false;
        let mut widx = 0usize;
        let mut now = 0.0_f64;
        let mut transfer_busy = 0.0_f64;
        let mut compute_busy = 0.0_f64;
        let mut high_water = 0usize;

        while widx < waiting.len() || !active.is_empty() {
            // An idle device jumps to the next arrival.
            if active.is_empty() {
                if let Some(&(_, next)) = waiting.get(widx) {
                    now = now.max(next.arrival_ms);
                }
            }

            // ---- injected device loss: drain at this step boundary ----
            // Work whose commands started before the loss instant drains
            // normally (a dispatched kernel cannot be aborted); everything
            // still resident or queued here dies with the device's memory.
            if let Some(lost_at_ms) = lost_at {
                if now + 1e-9 >= lost_at_ms {
                    lost = true;
                    if trace.enabled() {
                        trace.instant(
                            TraceKind::Fault,
                            TraceLane::Host,
                            &format!("fault device-loss {}", device.name),
                            now,
                        );
                    }
                    for mut entry in active.drain(..) {
                        entry.error = Some(SimError::Fault {
                            kind: FaultKind::DeviceLoss,
                            at_ms: now,
                        });
                        let _ = entry.session.release(&mut tracker, now);
                        let peak = tracker.peak_bytes() as f64 / MIB;
                        push_entry(
                            entry,
                            &mut outcomes,
                            &mut orphans,
                            true,
                            device,
                            device_index,
                            now,
                            peak,
                        );
                    }
                    while widx < waiting.len() {
                        let (seq, request) = waiting[widx];
                        widx += 1;
                        let at = now.max(request.arrival_ms);
                        let mut entry = self.admit_entry(seq, request, &warm, &engine, device, at);
                        if let Some(cj) = chaos {
                            cj.apply(seq, &mut entry);
                        }
                        entry.error = Some(SimError::Fault {
                            kind: FaultKind::DeviceLoss,
                            at_ms: at,
                        });
                        let peak = tracker.peak_bytes() as f64 / MIB;
                        push_entry(
                            entry,
                            &mut outcomes,
                            &mut orphans,
                            true,
                            device,
                            device_index,
                            at,
                            peak,
                        );
                    }
                    break;
                }
            }
            let arrived = waiting[widx..]
                .iter()
                .take_while(|(_, r)| r.arrival_ms <= now + 1e-9)
                .count();
            high_water = high_water.max(arrived);

            // ---- join phase: the waiting → served heuristic ----
            let join = arrived > 0
                && (active.is_empty()
                    || arrived as f64 >= self.batch.waiting_served_ratio * active.len() as f64);
            if join {
                while widx < waiting.len() && active.len() < self.batch.max_batch {
                    let (seq, request) = waiting[widx];
                    if request.arrival_ms > now + 1e-9 {
                        break;
                    }
                    let params = request.decode.expect("validated in the prologue");
                    let committed: u64 =
                        active.iter().map(|a| a.session.max_context_tokens()).sum();
                    if committed + params.max_context_tokens() > self.batch.token_budget {
                        if !active.is_empty() {
                            // Head-of-line request waits for leavers to free
                            // budget.
                            break;
                        }
                        // Nothing to wait for: this request alone exceeds
                        // the budget and can never be served.
                        widx += 1;
                        outcomes.push(budget_failure_outcome(
                            seq,
                            request,
                            device,
                            device_index,
                            self.batch.token_budget,
                        ));
                        continue;
                    }
                    widx += 1;
                    let abbr = request.model.abbr.clone();
                    if let Err(error) = self.ensure_plans(&mut plans, &engine, request, device) {
                        let mut entry = self.admit_entry(seq, request, &warm, &engine, device, now);
                        if let Some(cj) = chaos {
                            cj.apply(seq, &mut entry);
                        }
                        entry.error = Some(error);
                        outcomes.push(entry.into_outcome(
                            &device.name,
                            device_index,
                            now,
                            tracker.peak_bytes() as f64 / MIB,
                        ));
                        continue;
                    }
                    let model_plans = plans.get(&abbr).expect("just ensured");
                    // Memoized prefill: the first request of a model replays
                    // the full stream through the tracker (establishing the
                    // transient peak); later ones reuse the cost.
                    let cost = match prefill_costs.get(&abbr) {
                        Some(&cost) => cost,
                        None => {
                            match replay_stream(
                                &model_plans.prefill_stream,
                                &sim,
                                &mut tracker,
                                now,
                            ) {
                                Ok(cost) => {
                                    prefill_costs.insert(abbr.clone(), cost);
                                    cost
                                }
                                Err(error) => {
                                    let mut entry =
                                        self.admit_entry(seq, request, &warm, &engine, device, now);
                                    if let Some(cj) = chaos {
                                        cj.apply(seq, &mut entry);
                                    }
                                    entry.error = Some(error);
                                    outcomes.push(entry.into_outcome(
                                        &device.name,
                                        device_index,
                                        now,
                                        tracker.peak_bytes() as f64 / MIB,
                                    ));
                                    continue;
                                }
                            }
                        }
                    };
                    let start = now;
                    let end = start + cost.makespan_ms;
                    transfer_busy += cost.transfer_busy_ms;
                    compute_busy += cost.compute_busy_ms;
                    let mut entry = self.admit_entry(seq, request, &warm, &engine, device, start);
                    entry.session = DecodeSession::new(
                        params.prompt_tokens,
                        params.output_tokens,
                        model_plans.kv_bytes_per_token,
                    );
                    if let Some(cj) = chaos {
                        cj.apply(seq, &mut entry);
                        // The prefill pass itself may take an injected fault,
                        // keyed by the resume position so a retry redraws.
                        let attempt = entry.retries + entry.hops;
                        if let Some(kind) = self.fault_plan.command_fault(
                            device_index,
                            seq,
                            entry.resumed_tokens as usize,
                            attempt,
                        ) {
                            entry.error = Some(SimError::Fault { kind, at_ms: end });
                            if trace.enabled() {
                                trace.instant(
                                    TraceKind::Fault,
                                    TraceLane::Request(seq),
                                    &format!("fault {kind} {abbr} prefill"),
                                    end,
                                );
                            }
                            now = end;
                            active.push(entry);
                            continue;
                        }
                    }
                    let label = format!("kv seq{seq} {abbr}");
                    if let Err(error) = entry.session.finish_prefill(&mut tracker, &label, end) {
                        entry.error = Some(error);
                        let _ = entry.session.release(&mut tracker, end);
                        outcomes.push(entry.into_outcome(
                            &device.name,
                            device_index,
                            end,
                            tracker.peak_bytes() as f64 / MIB,
                        ));
                        now = end;
                        continue;
                    }
                    entry
                        .transfer_intervals
                        .push((start, start + cost.transfer_busy_ms));
                    entry
                        .compute_intervals
                        .push((end - cost.compute_busy_ms, end));
                    if trace.enabled() {
                        trace.span_bytes(
                            TraceKind::Prefill,
                            TraceLane::Request(seq),
                            &format!("prefill {abbr} ({} tok)", params.prompt_tokens),
                            start,
                            end,
                            u64::from(params.prompt_tokens) * model_plans.kv_bytes_per_token,
                        );
                        trace.instant(
                            TraceKind::BatchJoin,
                            TraceLane::Request(seq),
                            &format!("join {abbr}"),
                            end,
                        );
                    }
                    now = end;
                    active.push(entry);
                }
            }

            // ---- leave phase: retire sessions done at this boundary ----
            // Covers output_tokens == 1 requests, done at prefill.
            retire_finished(
                &mut active,
                &mut outcomes,
                &mut orphans,
                chaos.is_some(),
                &mut tracker,
                &mut trace,
                device,
                device_index,
                now,
            )?;
            if active.is_empty() {
                continue;
            }

            // ---- step phase: one batched decode step ----
            // Per-model sub-batches, in abbreviation order for determinism;
            // sub-batches replay back to back on the device's queues.
            let mut groups: BTreeMap<String, Vec<usize>> = BTreeMap::new();
            for (i, entry) in active.iter().enumerate() {
                groups.entry(entry.abbr.clone()).or_default().push(i);
            }
            for (abbr, members) in groups {
                let batch_size = members.len();
                let key = (abbr.clone(), batch_size);
                let cost = match step_costs.get(&key) {
                    Some(&cost) => cost,
                    None => {
                        let plan = &plans.get(&abbr).expect("active implies compiled").step_plan;
                        match plan.replay(&sim, &mut tracker, batch_size, now) {
                            Ok(cost) => {
                                step_costs.insert(key, cost);
                                cost
                            }
                            Err(error) => {
                                // The whole sub-batch shares the failed step.
                                for &i in &members {
                                    active[i].error = Some(error.clone());
                                }
                                continue;
                            }
                        }
                    }
                };
                let end = now + cost.makespan_ms;
                transfer_busy += cost.transfer_busy_ms;
                compute_busy += cost.compute_busy_ms;
                if trace.enabled() {
                    trace.span_bytes(
                        TraceKind::DecodeStep,
                        TraceLane::ComputeQueue,
                        &format!("step {abbr} ×{batch_size}"),
                        now,
                        end,
                        batch_size as u64
                            * plans
                                .get(&abbr)
                                .expect("active implies compiled")
                                .kv_bytes_per_token,
                    );
                }
                let share = 1.0 / batch_size as f64;
                for &i in &members {
                    let entry = &mut active[i];
                    if chaos.is_some() {
                        // The step's kernel may take an injected fault for
                        // this sequence, keyed by its global token position
                        // so firing is schedule- and batch-independent.
                        let attempt = entry.retries + entry.hops;
                        let position =
                            (entry.resumed_tokens + entry.session.emitted_tokens()) as usize;
                        if let Some(kind) = self.fault_plan.command_fault(
                            device_index,
                            entry.seq,
                            position,
                            attempt,
                        ) {
                            entry.error = Some(SimError::Fault { kind, at_ms: end });
                            if trace.enabled() {
                                trace.instant(
                                    TraceKind::Fault,
                                    TraceLane::Request(entry.seq),
                                    &format!("fault {kind} {}", entry.abbr),
                                    end,
                                );
                            }
                            continue;
                        }
                    }
                    let label = format!("kv seq{} {abbr}", entry.seq);
                    if let Err(error) = entry.session.advance_step(&mut tracker, &label, end) {
                        entry.error = Some(error);
                        continue;
                    }
                    entry.max_batch_seen = entry.max_batch_seen.max(batch_size);
                    entry
                        .transfer_intervals
                        .push((now, now + cost.transfer_busy_ms * share));
                    entry
                        .compute_intervals
                        .push((end - cost.compute_busy_ms * share, end));
                }
                now = end;
            }

            retire_finished(
                &mut active,
                &mut outcomes,
                &mut orphans,
                chaos.is_some(),
                &mut tracker,
                &mut trace,
                device,
                device_index,
                now,
            )?;
        }

        let completed = outcomes.iter().filter(|o| o.succeeded()).count();
        let makespan = now;
        let report = DeviceReport {
            device: device.name.clone(),
            requests: total,
            completed,
            makespan_ms: makespan,
            transfer_busy_ms: transfer_busy,
            compute_busy_ms: compute_busy,
            transfer_busy_fraction: if makespan > 0.0 {
                transfer_busy / makespan
            } else {
                0.0
            },
            compute_busy_fraction: if makespan > 0.0 {
                compute_busy / makespan
            } else {
                0.0
            },
            peak_memory_mb: tracker.peak_bytes() as f64 / MIB,
            queue_depth_high_water: high_water,
            memory_trace: tracker.trace().clone(),
        };
        Ok(DecodeRun {
            outcomes,
            report,
            trace,
            orphans,
            lost,
        })
    }

    /// Compile (through the shared cache) and lower the prefill and step
    /// streams of `request`'s model, if this device has not seen it yet.
    fn ensure_plans(
        &self,
        plans: &mut HashMap<String, ModelPlans>,
        engine: &FlashMem,
        request: &ServeRequest,
        device: &DeviceSpec,
    ) -> SimResult<()> {
        let abbr = &request.model.abbr;
        if plans.contains_key(abbr) {
            return Ok(());
        }
        let spec = request.model.decode().expect("validated in the prologue");
        let (full, _) = self.cache.compile(engine, &request.model, device)?;
        let prefill_stream = lower_artifact(&full, &request.model, device, &self.config);
        let (step, _) = self.cache.compile(engine, &spec.step, device)?;
        let step_stream = lower_artifact(&step, &spec.step, device, &self.config);
        plans.insert(
            abbr.clone(),
            ModelPlans {
                prefill_stream,
                step_plan: DecodeStepPlan::new(step_stream)?,
                kv_bytes_per_token: spec.kv_bytes_per_token,
            },
        );
        Ok(())
    }

    /// A fresh [`ActiveDecode`] entry for an admitted request (the session
    /// is replaced by the caller once the model's KV stride is known).
    fn admit_entry(
        &self,
        seq: usize,
        request: &ServeRequest,
        warm: &HashSet<u64>,
        engine: &FlashMem,
        device: &DeviceSpec,
        start_ms: f64,
    ) -> ActiveDecode {
        let params = request.decode.expect("validated in the prologue");
        ActiveDecode {
            seq,
            abbr: request.model.abbr.clone(),
            tenant: request.tenant.clone(),
            priority: request.priority,
            arrival_ms: request.arrival_ms,
            deadline_ms: request.deadline_ms,
            start_ms,
            cache_hit: warm.contains(&ArtifactCache::key_for(engine, &request.model, device)),
            session: DecodeSession::new(params.prompt_tokens, params.output_tokens, 0),
            max_batch_seen: 1,
            transfer_intervals: Vec::new(),
            compute_intervals: Vec::new(),
            error: None,
            resumed_tokens: 0,
            retries: 0,
            hops: 0,
            failed_over: false,
        }
    }
}

/// Remove finished (or failed) sessions from the batch at boundary `now`,
/// releasing their KV residency and emitting their outcome rows. With
/// `chaos` set, fault-killed entries go to `orphans` for the re-dispatch
/// planner instead of committing a final outcome.
#[allow(clippy::too_many_arguments)]
fn retire_finished(
    active: &mut Vec<ActiveDecode>,
    outcomes: &mut Vec<RequestOutcome>,
    orphans: &mut Vec<DecodeOrphan>,
    chaos: bool,
    tracker: &mut MemoryTracker,
    trace: &mut TraceRecorder,
    device: &DeviceSpec,
    device_index: usize,
    now: f64,
) -> SimResult<()> {
    let mut i = 0;
    while i < active.len() {
        if active[i].session.is_done() || active[i].error.is_some() {
            let mut entry = active.remove(i);
            entry.session.release(tracker, now)?;
            if trace.enabled() {
                trace.instant(
                    TraceKind::BatchLeave,
                    TraceLane::Request(entry.seq),
                    &format!(
                        "leave {} ({} tok)",
                        entry.abbr,
                        entry.session.emitted_tokens()
                    ),
                    now,
                );
            }
            let peak = tracker.peak_bytes() as f64 / MIB;
            push_entry(
                entry,
                outcomes,
                orphans,
                chaos,
                device,
                device_index,
                now,
                peak,
            );
        } else {
            i += 1;
        }
    }
    Ok(())
}

/// The outcome row of a request whose maximum context alone exceeds the
/// engine's token budget: it can never join any batch, so it fails at its
/// arrival instant.
fn budget_failure_outcome(
    seq: usize,
    request: &ServeRequest,
    device: &DeviceSpec,
    device_index: usize,
    token_budget: u64,
) -> RequestOutcome {
    let params = request.decode.expect("validated in the prologue");
    RequestOutcome {
        seq,
        model: request.model.abbr.clone(),
        tenant: request.tenant.clone(),
        priority: request.priority,
        device: device.name.clone(),
        device_index,
        arrival_ms: request.arrival_ms,
        start_ms: request.arrival_ms,
        completion_ms: request.arrival_ms,
        queue_wait_ms: 0.0,
        latency_ms: 0.0,
        deadline_ms: request.deadline_ms,
        admission_laxity_ms: None,
        resident_estimate_bytes: 0,
        preemptions: 0,
        suspended_ms: 0.0,
        resume_penalty_ms: 0.0,
        cache_hit: false,
        peak_memory_mb: 0.0,
        phases: PhaseBreakdown::attribute(0.0, 0.0, 0.0, 0.0, &[], &[]),
        rejected: None,
        stolen_from: None,
        failure: Some(FailureCause::Execution),
        retries: 0,
        failed_over: false,
        error: Some(SimError::InvalidParameter {
            message: format!(
                "request needs {} context tokens but the engine's token budget is {}",
                params.max_context_tokens(),
                token_budget
            ),
        }),
        report: None,
        decode: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashmem_graph::ModelZoo;

    fn engine(batch: BatchConfig) -> DecodeEngine {
        DecodeEngine::new(
            vec![DeviceSpec::oneplus_12()],
            FlashMemConfig::memory_priority(),
        )
        .with_batching(batch)
    }

    fn burst(n: usize, prompt: u32, output: u32) -> Vec<ServeRequest> {
        (0..n)
            .map(|i| {
                ServeRequest::new(ModelZoo::gptneo_small(), format!("tenant-{}", i % 2))
                    .with_decode_tokens(prompt, output)
            })
            .collect()
    }

    #[test]
    fn continuous_batching_beats_one_shot_on_the_same_workload() {
        let requests = burst(6, 16, 8);
        let pool = ThreadPool::with_threads(1);
        let one_shot = engine(BatchConfig::one_shot())
            .run_on(&pool, &requests)
            .unwrap();
        let continuous = engine(BatchConfig::default())
            .run_on(&pool, &requests)
            .unwrap();
        assert_eq!(one_shot.completed(), 6);
        assert_eq!(continuous.completed(), 6);
        // Same tokens either way; batching amortizes the per-step weight
        // traffic, so the continuous run finishes sooner and its token
        // throughput is strictly higher.
        assert_eq!(one_shot.decode_tokens, 6 * 8);
        assert_eq!(continuous.decode_tokens, 6 * 8);
        assert!(continuous.makespan_ms() < one_shot.makespan_ms());
        assert!(
            continuous.tokens_per_s > one_shot.tokens_per_s,
            "continuous {} tok/s vs one-shot {} tok/s",
            continuous.tokens_per_s,
            one_shot.tokens_per_s
        );
        // The batch actually formed.
        assert!(continuous
            .outcomes
            .iter()
            .any(|o| o.decode.as_ref().unwrap().max_batch > 1));
        assert!(one_shot
            .outcomes
            .iter()
            .all(|o| o.decode.as_ref().unwrap().max_batch == 1));
    }

    #[test]
    fn token_accounting_is_exact() {
        let requests = burst(4, 12, 5);
        let report = engine(BatchConfig::default()).run(&requests).unwrap();
        assert!(report.ttft.is_some());
        assert!(report.itl.is_some());
        for outcome in &report.outcomes {
            let decode = outcome
                .decode
                .as_ref()
                .expect("all requests are generative");
            assert_eq!(decode.output_tokens, 5);
            assert_eq!(decode.itl_ms.len(), 4);
            assert!(decode.ttft_ms > 0.0);
            assert!(decode.itl_ms.iter().all(|&gap| gap > 0.0));
            // Peak KV = (prompt + output - 1) tokens at the model's stride.
            let spec = ModelZoo::gptneo_small();
            let stride = spec.decode().unwrap().kv_bytes_per_token;
            assert_eq!(decode.kv_peak_bytes, (12 + 5 - 1) * stride);
        }
    }

    #[test]
    fn reports_are_byte_identical_across_pool_widths() {
        let mut requests = burst(8, 16, 6);
        for (i, r) in requests.iter_mut().enumerate() {
            r.arrival_ms = 5.0 * i as f64;
        }
        let serial = engine(BatchConfig::default())
            .run_on(&ThreadPool::with_threads(1), &requests)
            .unwrap();
        let parallel = engine(BatchConfig::default())
            .run_on(&ThreadPool::with_threads(4), &requests)
            .unwrap();
        assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
    }

    #[test]
    fn one_shot_requests_are_rejected_with_a_clear_error() {
        let requests = vec![ServeRequest::new(ModelZoo::gptneo_small(), "a")];
        let err = engine(BatchConfig::default()).run(&requests).unwrap_err();
        assert!(err.to_string().contains("no decode token counts"), "{err}");
        let requests = vec![ServeRequest::new(ModelZoo::vit(), "a").with_decode_tokens(8, 4)];
        let err = engine(BatchConfig::default()).run(&requests).unwrap_err();
        assert!(err.to_string().contains("no decode spec"), "{err}");
    }

    #[test]
    fn oversized_context_fails_fast() {
        let requests =
            vec![ServeRequest::new(ModelZoo::gptneo_small(), "a").with_decode_tokens(4000, 100)];
        let err = engine(BatchConfig::default()).run(&requests).unwrap_err();
        assert!(err.to_string().contains("context tokens"), "{err}");
    }

    #[test]
    fn token_budget_gates_joins_and_oversized_requests_fail() {
        // Budget fits one 16+4-1=19-token request but not two at once.
        let tight = BatchConfig {
            max_batch: 8,
            token_budget: 30,
            waiting_served_ratio: 0.0,
        };
        let report = engine(tight).run(&burst(3, 16, 4)).unwrap();
        assert_eq!(report.completed(), 3);
        // Nobody ever shared a step: the budget serialized them.
        assert!(report
            .outcomes
            .iter()
            .all(|o| o.decode.as_ref().unwrap().max_batch == 1));
        // A request whose own context exceeds the budget fails outright.
        let report = engine(BatchConfig {
            token_budget: 10,
            ..tight
        })
        .run(&burst(1, 16, 4))
        .unwrap();
        assert_eq!(report.completed(), 0);
        assert_eq!(report.failed(), 1);
        assert!(report.outcomes[0]
            .error
            .as_ref()
            .unwrap()
            .to_string()
            .contains("token budget"));
    }

    #[test]
    fn trace_records_the_decode_lifecycle() {
        let report = engine(BatchConfig::default())
            .with_trace(TraceConfig::enabled())
            .run(&burst(3, 8, 4))
            .unwrap();
        let trace = report.trace.as_ref().expect("tracing was enabled");
        let kinds: Vec<TraceKind> = trace.processes[0].events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&TraceKind::Prefill));
        assert!(kinds.contains(&TraceKind::DecodeStep));
        assert!(kinds.contains(&TraceKind::BatchJoin));
        assert!(kinds.contains(&TraceKind::BatchLeave));
        // Tracing never perturbs the simulation.
        let untraced = engine(BatchConfig::default()).run(&burst(3, 8, 4)).unwrap();
        assert_eq!(report.decode_tokens, untraced.decode_tokens);
        assert_eq!(report.makespan_ms(), untraced.makespan_ms());
    }
}
