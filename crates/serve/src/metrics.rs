//! Serving metrics: per-request outcomes, per-device utilization, latency
//! percentiles.

use flashmem_core::cache::CacheStats;
use flashmem_core::ExecutionReport;
use flashmem_gpu_sim::trace::MemoryTrace;
use flashmem_gpu_sim::SimError;

/// What happened to one request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOutcome {
    /// Submission sequence number.
    pub seq: usize,
    /// Model abbreviation.
    pub model: String,
    /// Tenant the request belongs to.
    pub tenant: String,
    /// Request priority.
    pub priority: u8,
    /// Name of the device that served (or rejected) the request.
    pub device: String,
    /// Index of that device in the fleet.
    pub device_index: usize,
    /// Arrival time (global simulated milliseconds).
    pub arrival_ms: f64,
    /// Time the request was admitted and became eligible to issue commands.
    pub start_ms: f64,
    /// Completion (or failure) time.
    pub completion_ms: f64,
    /// Time spent waiting for admission: `start - arrival`.
    pub queue_wait_ms: f64,
    /// End-to-end latency: `completion - arrival`.
    pub latency_ms: f64,
    /// True when the compilation artifact came from the plan cache.
    pub cache_hit: bool,
    /// Peak device memory footprint (MB) observed while the request was
    /// resident. Under concurrent policies this is the *device* footprint
    /// during the request's window, which is the quantity capacity planning
    /// cares about.
    pub peak_memory_mb: f64,
    /// The failure, if the request did not complete (out-of-memory, tenant
    /// cap smaller than the model's working set, ...).
    pub error: Option<SimError>,
    /// The full execution report, available under exclusive (single-slot)
    /// policies where a request owns the whole device while it runs.
    pub report: Option<ExecutionReport>,
}

impl RequestOutcome {
    /// True when the request completed.
    pub fn succeeded(&self) -> bool {
        self.error.is_none()
    }
}

/// Utilization summary of one device of the fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceReport {
    /// Device name.
    pub device: String,
    /// Requests placed on this device.
    pub requests: usize,
    /// Requests that completed successfully.
    pub completed: usize,
    /// Wall-clock end of the device's timeline in milliseconds.
    pub makespan_ms: f64,
    /// Busy time of the transfer (DMA) queue in milliseconds.
    pub transfer_busy_ms: f64,
    /// Busy time of the compute queue in milliseconds.
    pub compute_busy_ms: f64,
    /// Transfer-queue busy time over the makespan.
    pub transfer_busy_fraction: f64,
    /// Compute-queue busy time over the makespan.
    pub compute_busy_fraction: f64,
    /// Peak memory footprint of the device over the whole run, in MB.
    pub peak_memory_mb: f64,
    /// The device's memory trace over the whole serving run (the multi-model
    /// Figure 6 curve generalised to many tenants).
    pub memory_trace: MemoryTrace,
}

/// Nearest-rank percentile of an ascending-sorted slice. `q` in `[0, 1]`.
/// Returns 0.0 for an empty slice.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Latency distribution summary over the completed requests.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Median end-to-end latency in milliseconds.
    pub p50_ms: f64,
    /// 95th percentile latency.
    pub p95_ms: f64,
    /// 99th percentile latency.
    pub p99_ms: f64,
    /// Mean latency.
    pub mean_ms: f64,
    /// Worst observed latency.
    pub max_ms: f64,
}

impl LatencySummary {
    /// Summarise a set of latencies (order irrelevant).
    pub fn from_latencies(latencies: &[f64]) -> Self {
        if latencies.is_empty() {
            return LatencySummary::default();
        }
        let mut sorted = latencies.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        LatencySummary {
            p50_ms: percentile(&sorted, 0.50),
            p95_ms: percentile(&sorted, 0.95),
            p99_ms: percentile(&sorted, 0.99),
            mean_ms: sorted.iter().sum::<f64>() / sorted.len() as f64,
            max_ms: *sorted.last().expect("non-empty"),
        }
    }
}

/// The full result of one serving run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Name of the scheduling policy that ran.
    pub policy: String,
    /// Per-request outcomes in submission order.
    pub outcomes: Vec<RequestOutcome>,
    /// Per-device utilization, in fleet order.
    pub devices: Vec<DeviceReport>,
    /// Latency percentiles over completed requests.
    pub latency: LatencySummary,
    /// Completed requests per second of simulated makespan.
    pub throughput_rps: f64,
    /// Plan-cache counters at the end of the run.
    pub cache: CacheStats,
}

impl ServeReport {
    /// Number of requests that completed.
    pub fn completed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.succeeded()).count()
    }

    /// Number of requests that failed.
    pub fn failed(&self) -> usize {
        self.outcomes.len() - self.completed()
    }

    /// Wall-clock end of the whole run (max across devices).
    pub fn makespan_ms(&self) -> f64 {
        self.devices
            .iter()
            .map(|d| d.makespan_ms)
            .fold(0.0_f64, f64::max)
    }
}

impl std::fmt::Display for ServeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} policy: {}/{} requests completed in {:.0} ms ({:.2} req/s)",
            self.policy,
            self.completed(),
            self.outcomes.len(),
            self.makespan_ms(),
            self.throughput_rps
        )?;
        writeln!(
            f,
            "latency p50/p95/p99: {:.0}/{:.0}/{:.0} ms (mean {:.0}, max {:.0})",
            self.latency.p50_ms,
            self.latency.p95_ms,
            self.latency.p99_ms,
            self.latency.mean_ms,
            self.latency.max_ms
        )?;
        for d in &self.devices {
            writeln!(
                f,
                "  {}: {} reqs, makespan {:.0} ms, load queue {:.0}% busy, compute {:.0}% busy, peak {:.0} MB",
                d.device,
                d.requests,
                d.makespan_ms,
                100.0 * d.transfer_busy_fraction,
                100.0 * d.compute_busy_fraction,
                d.peak_memory_mb
            )?;
        }
        write!(f, "plan cache: {}", self.cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.95), 95.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn summary_orders_quantiles() {
        let lat = [120.0, 10.0, 45.0, 300.0, 60.0];
        let s = LatencySummary::from_latencies(&lat);
        assert!(s.p50_ms <= s.p95_ms);
        assert!(s.p95_ms <= s.p99_ms);
        assert_eq!(s.max_ms, 300.0);
        assert!((s.mean_ms - 107.0).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_zero() {
        assert_eq!(
            LatencySummary::from_latencies(&[]),
            LatencySummary::default()
        );
    }
}
